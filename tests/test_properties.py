"""Property-based tests (hypothesis) for the core invariants of the model.

These exercise the substrate and the game layer on randomly generated
populations and parameters, checking the paper's structural results:

* Assumption 1 on every shipped demand family;
* Axioms 1-2 of the rate allocation at the equilibrium (feasibility and work
  conservation), and Lemma 1 / Theorem 2 monotonicity in the capacity;
* the second-stage partition game's accounting identities;
* the migration equilibrium's market shares summing to one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cp_game import competitive_equilibrium
from repro.core.migration import IspConfig, solve_market_split
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY
from repro.network.demand import (
    ExponentialSensitivityDemand,
    LinearDemand,
    SigmoidDemand,
    validate_demand_function,
)
from repro.network.equilibrium import solve_rate_equilibrium
from repro.network.provider import ContentProvider, Population

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
provider_st = st.builds(
    ContentProvider,
    name=st.uuids().map(str),
    alpha=st.floats(min_value=0.01, max_value=1.0),
    theta_hat=st.floats(min_value=0.05, max_value=10.0),
    beta=st.floats(min_value=0.0, max_value=10.0),
    revenue_rate=st.floats(min_value=0.0, max_value=1.0),
    utility_rate=st.floats(min_value=0.0, max_value=5.0),
)

population_st = st.lists(provider_st, min_size=1, max_size=12).map(Population)

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# Demand functions: Assumption 1
# --------------------------------------------------------------------------- #
class TestDemandProperties:
    @given(theta_hat=st.floats(min_value=0.05, max_value=50.0),
           beta=st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_exponential_demand_satisfies_assumption1(self, theta_hat, beta):
        validate_demand_function(ExponentialSensitivityDemand(theta_hat, beta))

    @given(theta_hat=st.floats(min_value=0.05, max_value=50.0),
           floor=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_linear_demand_satisfies_assumption1(self, theta_hat, floor):
        validate_demand_function(LinearDemand(theta_hat, floor))

    @given(theta_hat=st.floats(min_value=0.05, max_value=50.0),
           midpoint=st.floats(min_value=0.05, max_value=0.95),
           steepness=st.floats(min_value=0.5, max_value=30.0))
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_demand_satisfies_assumption1(self, theta_hat, midpoint,
                                                  steepness):
        validate_demand_function(SigmoidDemand(theta_hat, midpoint, steepness))

    @given(beta_low=st.floats(min_value=0.0, max_value=5.0),
           beta_gap=st.floats(min_value=0.1, max_value=10.0),
           omega=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_higher_sensitivity_means_weakly_lower_demand(self, beta_low,
                                                          beta_gap, omega):
        low = ExponentialSensitivityDemand(1.0, beta_low)
        high = ExponentialSensitivityDemand(1.0, beta_low + beta_gap)
        assert high(omega) <= low(omega) + 1e-12


# --------------------------------------------------------------------------- #
# Rate equilibrium: Axioms and monotonicity
# --------------------------------------------------------------------------- #
class TestEquilibriumProperties:
    @given(population=population_st,
           nu_fraction=st.floats(min_value=0.01, max_value=3.0))
    @SLOW
    def test_axioms_at_equilibrium(self, population, nu_fraction):
        load = population.unconstrained_per_capita_load
        nu = nu_fraction * load
        equilibrium = solve_rate_equilibrium(population, nu)
        # Axiom 1 (feasibility)
        assert np.all(equilibrium.thetas <= population.theta_hats * (1 + 1e-9))
        assert np.all(equilibrium.thetas >= -1e-12)
        # Axiom 2 (work conservation)
        assert equilibrium.aggregate_rate == pytest.approx(min(nu, load), rel=1e-5)
        # Demands lie in [0, 1] and are consistent with the throughputs.
        assert np.all((equilibrium.demands >= 0.0) & (equilibrium.demands <= 1.0))

    @given(population=population_st,
           fractions=st.tuples(st.floats(min_value=0.05, max_value=3.0),
                               st.floats(min_value=0.05, max_value=3.0)))
    @SLOW
    def test_lemma1_monotone_in_capacity(self, population, fractions):
        load = population.unconstrained_per_capita_load
        low, high = sorted(fractions)
        eq_low = solve_rate_equilibrium(population, low * load)
        eq_high = solve_rate_equilibrium(population, high * load)
        assert np.all(eq_high.thetas >= eq_low.thetas - 1e-8)
        # Theorem 2: consumer surplus is non-decreasing in capacity.
        assert eq_high.consumer_surplus() >= eq_low.consumer_surplus() - 1e-8

    @given(population=population_st,
           nu_fraction=st.floats(min_value=0.05, max_value=2.0),
           scale=st.floats(min_value=0.1, max_value=100.0))
    @SLOW
    def test_axiom4_scale_independence(self, population, nu_fraction, scale):
        from repro.network.link import BottleneckLink
        from repro.network.system import NetworkSystem

        load = population.unconstrained_per_capita_load
        nu = nu_fraction * load
        base = NetworkSystem(population, 100.0, BottleneckLink(100.0 * nu))
        scaled = base.scaled(scale)
        np.testing.assert_allclose(scaled.equilibrium().thetas,
                                   base.equilibrium().thetas, rtol=1e-7,
                                   atol=1e-10)


# --------------------------------------------------------------------------- #
# Second-stage game: accounting identities
# --------------------------------------------------------------------------- #
class TestPartitionProperties:
    @given(population=population_st,
           kappa=st.floats(min_value=0.0, max_value=1.0),
           price=st.floats(min_value=0.0, max_value=1.2),
           nu_fraction=st.floats(min_value=0.05, max_value=2.0))
    @SLOW
    def test_partition_accounting(self, population, kappa, price, nu_fraction):
        nu = nu_fraction * population.unconstrained_per_capita_load
        outcome = competitive_equilibrium(population, nu, ISPStrategy(kappa, price))
        ordinary = set(outcome.ordinary_indices)
        premium = set(outcome.premium_indices)
        # Partition covers everyone exactly once.
        assert ordinary.isdisjoint(premium)
        assert ordinary | premium == set(range(len(population)))
        # Premium members can afford the price.
        for index in premium:
            assert population[index].revenue_rate > price
        # Class capacities are respected and the surplus formulas hold.
        assert outcome.premium_carried_rate <= kappa * nu + 1e-7
        assert outcome.ordinary_carried_rate <= (1.0 - kappa) * nu + 1e-7
        assert outcome.isp_surplus == pytest.approx(
            price * outcome.premium_carried_rate, rel=1e-9, abs=1e-12)
        assert outcome.consumer_surplus >= -1e-12


# --------------------------------------------------------------------------- #
# Migration equilibrium
# --------------------------------------------------------------------------- #
class TestMigrationProperties:
    @given(population=st.lists(provider_st, min_size=4, max_size=10).map(Population),
           gamma=st.floats(min_value=0.2, max_value=0.8),
           kappa=st.floats(min_value=0.0, max_value=1.0),
           price=st.floats(min_value=0.0, max_value=1.0),
           nu_fraction=st.floats(min_value=0.1, max_value=1.5))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_market_shares_sum_to_one(self, population, gamma, kappa, price,
                                      nu_fraction):
        nu = nu_fraction * population.unconstrained_per_capita_load
        isps = [IspConfig("strategic", ISPStrategy(kappa, price), gamma),
                IspConfig("public", PUBLIC_OPTION_STRATEGY, 1.0 - gamma)]
        split = solve_market_split(population, nu, isps, max_iterations=25)
        assert sum(split.shares.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(-1e-9 <= share <= 1.0 + 1e-9 for share in split.shares.values())
        assert split.consumer_surplus >= -1e-9
