"""Shared fixtures for the test suite.

Most tests use small populations (3-100 CPs) so the whole suite stays fast;
the heavyweight paper-scale population (1000 CPs) is exercised only by the
benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.network.provider import ContentProvider, Population
from repro.workloads.archetypes import archetype_population
from repro.workloads.populations import PopulationSpec, random_population


@pytest.fixture
def google_netflix_skype() -> Population:
    """The paper's three archetype CPs (Figure 3 workload)."""
    return archetype_population()


@pytest.fixture
def two_provider_population() -> Population:
    """A tiny hand-built population with easily checkable numbers."""
    return Population([
        ContentProvider(name="elastic", alpha=1.0, theta_hat=1.0, beta=0.0,
                        revenue_rate=0.8, utility_rate=1.0),
        ContentProvider(name="streaming", alpha=0.5, theta_hat=4.0, beta=2.0,
                        revenue_rate=0.4, utility_rate=3.0),
    ])


@pytest.fixture
def small_random_population() -> Population:
    """A 40-CP random population drawn with the paper's distributions."""
    return random_population(PopulationSpec(count=40), seed=7)


@pytest.fixture
def medium_random_population() -> Population:
    """A 120-CP random population (used by game-layer tests)."""
    return random_population(PopulationSpec(count=120), seed=11)
