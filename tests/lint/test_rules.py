"""Fixture-corpus tests: every rule fires on its violating fixture (and
only with its own code) and stays silent on the conforming twin, plus
inline-source edge cases pinning each rule's exact boundaries."""

from pathlib import Path, PurePath

import pytest

from repro.lint.analyzer import lint_paths, lint_source
from repro.lint.rules import RULES, get_rule, rule_codes

FIXTURES = Path(__file__).parent / "fixtures"

#: (code, violating fixture, conforming fixture)
CORPUS = [
    ("RL001", FIXTURES / "rl001" / "bad_cache_key.py",
     FIXTURES / "rl001" / "good_cache_key.py"),
    ("RL002", FIXTURES / "rl002" / "bad_column_store.py",
     FIXTURES / "rl002" / "good_column_store.py"),
    ("RL003", FIXTURES / "rl003" / "simulation" / "bad_nondeterminism.py",
     FIXTURES / "rl003" / "simulation" / "good_nondeterminism.py"),
    ("RL003", FIXTURES / "rl003" / "service" / "bad_service_clock.py",
     FIXTURES / "rl003" / "service" / "good_service_clock.py"),
    ("RL004", FIXTURES / "rl004" / "bad" / "numba_backend.py",
     FIXTURES / "rl004" / "good" / "numba_backend.py"),
    ("RL005", FIXTURES / "rl005" / "core" / "bad_float_equality.py",
     FIXTURES / "rl005" / "core" / "good_float_equality.py"),
    ("RL006", FIXTURES / "rl006" / "core" / "bad_tolerance.py",
     FIXTURES / "rl006" / "core" / "good_tolerance.py"),
]

CASE_IDS = [f"{code}-{bad.parent.name}" for code, bad, _ in CORPUS]


def test_registry_is_complete():
    assert rule_codes() == ("RL001", "RL002", "RL003", "RL004", "RL005",
                            "RL006")
    for code in rule_codes():
        rule = get_rule(code)
        assert rule.code == code
        assert rule.summary


@pytest.mark.parametrize("code,bad,good", CORPUS, ids=CASE_IDS)
def test_rule_fires_on_violating_fixture(code, bad, good):
    findings = lint_paths([str(bad)])
    assert findings, f"{code} did not fire on {bad.name}"
    assert {f.code for f in findings} == {code}
    assert all(f.path == str(bad) for f in findings)
    assert all(f.line >= 1 and f.column >= 0 for f in findings)


@pytest.mark.parametrize("code,bad,good", CORPUS, ids=CASE_IDS)
def test_rule_silent_on_conforming_fixture(code, bad, good):
    assert lint_paths([str(good)]) == []


def test_whole_corpus_covers_every_rule():
    findings = lint_paths([str(FIXTURES)])
    assert {f.code for f in findings} == set(rule_codes())


def test_findings_sorted_by_location():
    findings = lint_paths([str(FIXTURES)])
    keys = [(f.path, f.line, f.column, f.code) for f in findings]
    assert keys == sorted(keys)


# --------------------------------------------------------------------- #
# Inline edge cases
# --------------------------------------------------------------------- #
def lint_text(source, path="src/repro/module.py"):
    return lint_source(source, PurePath(path))


class TestRL001:
    def test_get_and_put_also_checked(self):
        source = (
            "_C = LRUCache(maxsize=4)\n"
            "def f(k):\n"
            "    _C.get(('a', k))\n"
            "    _C.put(('a', k), 1)\n"
        )
        findings = lint_text(source)
        assert [f.code for f in findings] == ["RL001", "RL001"]

    def test_unregistered_cache_name_ignored(self):
        # No module-level LRUCache binding: the rule stays out of the way.
        source = (
            "def f(cache, k):\n"
            "    return cache.get_or_compute(('a', k), list)\n"
        )
        assert lint_text(source) == []


class TestRL002:
    def test_setflags_positional_true(self):
        assert [f.code for f in lint_text(
            "def f(a):\n    a.setflags(True)\n")] == ["RL002"]

    def test_augmented_store_through_alias(self):
        source = (
            "def f(population):\n"
            "    col = population.betas\n"
            "    col[2] += 1.0\n"
        )
        assert [f.code for f in lint_text(source)] == ["RL002"]

    def test_self_attribute_write_allowed(self):
        source = (
            "class P:\n"
            "    def __init__(self, a):\n"
            "        self.alphas = a\n"
        )
        assert lint_text(source) == []


class TestRL003:
    PATH = "src/repro/simulation/module.py"

    def test_from_time_import_time(self):
        findings = lint_source("from time import time\n", PurePath(self.PATH))
        assert [f.code for f in findings] == ["RL003"]

    def test_random_module_attribute(self):
        findings = lint_source("import random\nx = random.random()\n",
                               PurePath(self.PATH))
        assert [f.code for f in findings] == ["RL003"]

    def test_seeded_default_rng_allowed(self):
        source = ("import numpy as np\n"
                  "def f(seed):\n"
                  "    return np.random.default_rng(seed).random(3)\n")
        assert lint_source(source, PurePath(self.PATH)) == []

    def test_out_of_scope_path_not_checked(self):
        # Same source, but outside runner/simulation/service: inapplicable.
        source = "import time\ndef f():\n    return time.time()\n"
        assert lint_source(source, PurePath("src/repro/core/module.py")) == []
        in_scope = lint_source(source, PurePath(self.PATH))
        assert [f.code for f in in_scope] == ["RL003"]

    def test_service_package_in_scope(self):
        # The serving layer inherits the full nondeterminism ban: payload
        # bytes must be canonical and wall clocks must stay out of them.
        source = ("import json, time\n"
                  "def respond(series):\n"
                  "    return json.dumps({'series': series,\n"
                  "                       'at': time.time()})\n")
        in_scope = lint_source(
            source, PurePath("src/repro/service/server.py"))
        assert [f.code for f in in_scope] == ["RL003", "RL003"]

    def test_service_loop_clock_and_suppression(self):
        # The event loop's monotonic clock is fine as-is; a justified
        # line-level suppression silences a deliberate log-only wall clock.
        source = ("import asyncio, time\n"
                  "def schedule(cb, window):\n"
                  "    loop = asyncio.get_running_loop()\n"
                  "    loop.call_later(window, cb)\n"
                  "    return time.time()  # repro-lint: disable=RL003\n")
        assert lint_source(
            source, PurePath("src/repro/service/scheduler.py")) == []


class TestRL004:
    PATH = "src/repro/backends/numba_backend.py"

    def test_njit_decorated_kernel_checked(self):
        source = ("@njit(cache=True)\n"
                  "def carried(x):\n"
                  "    return x * _GLOBAL\n")
        findings = lint_source(source, PurePath(self.PATH))
        # Two findings: the decorator's own `njit` name (kernels are
        # registered functionally in the real backend) plus `_GLOBAL`.
        assert {f.code for f in findings} == {"RL004"}
        assert any("_GLOBAL" in f.message for f in findings)

    def test_other_filenames_out_of_scope(self):
        source = ("def _kernel_f(x):\n"
                  "    return x * _GLOBAL\n")
        assert lint_source(source, PurePath("src/repro/backends/ref.py")) == []


class TestRL005:
    PATH = "src/repro/core/module.py"

    def test_negative_literal_and_not_equals(self):
        findings = lint_source("def f(x):\n    return x != -1.5\n",
                               PurePath(self.PATH))
        assert [f.code for f in findings] == ["RL005"]

    def test_int_and_zero_literals_exempt(self):
        source = ("def f(x):\n"
                  "    return x == 0.0 or x == 1 or x != 0.0\n")
        assert lint_source(source, PurePath(self.PATH)) == []


class TestRL006:
    PATH = "src/repro/network/module.py"

    def test_inline_small_literal_fires(self):
        findings = lint_source("def f(x):\n    return x < 5e-3\n",
                               PurePath(self.PATH))
        assert [f.code for f in findings] == ["RL006"]

    def test_large_literal_and_module_constant_exempt(self):
        source = ("_TOL = 1e-9\n"
                  "def f(x):\n"
                  "    return x < 0.5 or x < _TOL\n")
        assert lint_source(source, PurePath(self.PATH)) == []


def test_rule_scoping_metadata():
    assert RULES["RL001"].path_components == ()
    assert RULES["RL003"].path_components == ("runner", "simulation",
                                              "service")
    assert RULES["RL004"].filenames == ("numba_backend.py",)
    assert RULES["RL005"].path_components == ("core", "network")
    assert RULES["RL006"].path_components == ("core", "network")
