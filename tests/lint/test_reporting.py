"""Reporter tests: text rendering, JSON round-trip, rule listing."""

import json
from pathlib import Path

import pytest

from repro.lint.analyzer import lint_paths
from repro.lint.reporting import (
    REPORT_SCHEMA_VERSION,
    parse_json_report,
    render_json,
    render_rule_list,
    render_text,
)
from repro.lint.rules import Finding, rule_codes

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture()
def corpus_findings():
    findings = lint_paths([str(FIXTURES)])
    assert findings
    return findings


def test_finding_render_format():
    finding = Finding(path="src/x.py", line=3, column=4, code="RL005",
                      message="exact equality")
    assert finding.render() == "src/x.py:3:4: RL005 exact equality"


def test_finding_dict_round_trip():
    finding = Finding(path="src/x.py", line=3, column=4, code="RL005",
                      message="exact equality")
    assert Finding.from_dict(finding.to_dict()) == finding


def test_render_text_lines_and_count(corpus_findings):
    text = render_text(corpus_findings)
    lines = text.splitlines()
    assert lines[-1] == f"{len(corpus_findings)} findings"
    assert lines[:-1] == [f.render() for f in corpus_findings]


def test_render_text_singular_noun():
    finding = Finding(path="x.py", line=1, column=0, code="RL001", message="m")
    assert render_text([finding]).splitlines()[-1] == "1 finding"
    assert render_text([]).splitlines() == ["0 findings"]


def test_json_round_trip(corpus_findings):
    document = render_json(corpus_findings)
    assert parse_json_report(document) == corpus_findings


def test_json_document_shape(corpus_findings):
    payload = json.loads(render_json(corpus_findings))
    assert payload["schema"] == REPORT_SCHEMA_VERSION
    assert payload["count"] == len(corpus_findings)
    assert len(payload["findings"]) == len(corpus_findings)
    # Canonical bytes: sorted keys at every level.
    assert list(payload) == sorted(payload)
    assert all(list(entry) == sorted(entry) for entry in payload["findings"])


def test_unsupported_schema_rejected():
    document = json.dumps({"schema": 99, "count": 0, "findings": []})
    with pytest.raises(ValueError, match="unsupported lint report schema"):
        parse_json_report(document)


def test_rule_list_mentions_every_rule_and_scope():
    listing = render_rule_list()
    for code in rule_codes():
        assert code in listing
    assert "numba_backend.py" in listing   # RL004 filename scope
    assert "runner" in listing and "simulation" in listing  # RL003 scope
