"""Analyzer-layer tests: suppressions, --select/--ignore resolution,
path discovery and error handling."""

from pathlib import Path, PurePath

import pytest

from repro.lint.analyzer import (
    LintError,
    lint_paths,
    lint_source,
    resolve_codes,
    suppressed_codes,
)
from repro.lint.rules import rule_codes

FIXTURES = Path(__file__).parent / "fixtures"
BAD_RL005 = FIXTURES / "rl005" / "core" / "bad_float_equality.py"

CORE_PATH = PurePath("src/repro/core/module.py")
VIOLATING = "def converged(residual):\n    return abs(residual) < 1e-9\n"


class TestSuppressions:
    def test_parse_single_and_comma_list(self):
        source = ("x = 1  # repro-lint: disable=RL001\n"
                  "y = 2\n"
                  "z = 3  # repro-lint: disable=RL002, rl005\n")
        assert suppressed_codes(source) == {1: {"RL001"},
                                            3: {"RL002", "RL005"}}

    def test_matching_code_silences_line(self):
        suppressed = VIOLATING.replace(
            "< 1e-9", "< 1e-9  # repro-lint: disable=RL006")
        assert lint_source(VIOLATING, CORE_PATH) != []
        assert lint_source(suppressed, CORE_PATH) == []

    def test_other_code_does_not_silence(self):
        suppressed = VIOLATING.replace(
            "< 1e-9", "< 1e-9  # repro-lint: disable=RL005")
        assert [f.code for f in lint_source(suppressed, CORE_PATH)] == ["RL006"]

    def test_other_line_does_not_silence(self):
        source = "# repro-lint: disable=RL006\n" + VIOLATING
        assert [f.code for f in lint_source(source, CORE_PATH)] == ["RL006"]


class TestResolveCodes:
    def test_defaults_to_all_rules(self):
        assert resolve_codes() == frozenset(rule_codes())

    def test_select_restricts(self):
        assert resolve_codes(select=["RL001", "RL004"]) == {"RL001", "RL004"}

    def test_ignore_removes(self):
        active = resolve_codes(ignore=["RL003"])
        assert "RL003" not in active
        assert len(active) == len(rule_codes()) - 1

    def test_select_and_ignore_compose(self):
        assert resolve_codes(select=["RL001", "RL002"],
                             ignore=["RL002"]) == {"RL001"}

    def test_unknown_code_raises(self):
        with pytest.raises(LintError, match="unknown rule code"):
            resolve_codes(select=["RL999"])
        with pytest.raises(LintError, match="unknown rule code"):
            resolve_codes(ignore=["bogus"])


class TestLintPaths:
    def test_select_filters_findings(self):
        assert lint_paths([str(BAD_RL005)], select=["RL001"]) == []
        findings = lint_paths([str(BAD_RL005)], select=["RL005"])
        assert [f.code for f in findings] == ["RL005"]

    def test_ignore_filters_findings(self):
        assert lint_paths([str(BAD_RL005)], ignore=["RL005"]) == []

    def test_directory_recursion(self):
        findings = lint_paths([str(FIXTURES / "rl005")])
        assert {f.code for f in findings} == {"RL005"}
        assert {Path(f.path).name for f in findings} == {
            "bad_float_equality.py"}

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file or directory"):
            lint_paths(["does/not/exist.py"])

    def test_syntax_error_raises(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(LintError, match="cannot parse"):
            lint_paths([str(broken)])

    def test_duplicate_paths_duplicate_findings(self):
        # lint_paths is a plain concatenation over its arguments; the CLI
        # passes each path once, so no dedup layer exists (pinned here).
        single = lint_paths([str(BAD_RL005)])
        double = lint_paths([str(BAD_RL005), str(BAD_RL005)])
        assert len(double) == 2 * len(single)


def test_source_tree_is_lint_clean():
    """The enforced gate: `python -m repro.lint src/` must stay at zero."""
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert src.is_dir()
    findings = lint_paths([str(src)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"src/repro has lint findings:\n{rendered}"
