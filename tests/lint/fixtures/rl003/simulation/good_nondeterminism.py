"""RL003 conforming fixture: monotonic clock, seeded RNG, canonical JSON."""

import json
import time

import numpy as np


def stamp(payload):
    started = time.perf_counter()
    return started, json.dumps(payload, sort_keys=True)


def sample(count, seed):
    rng = np.random.default_rng(seed)
    return rng.random(count)


def emit():
    for name in sorted({"a", "b"}):
        yield name
