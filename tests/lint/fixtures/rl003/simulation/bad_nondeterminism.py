"""RL003 violating fixture: wall clock, global RNG, unsorted JSON, sets."""

import json
import time

import numpy as np


def stamp(payload):
    started = time.time()
    return started, json.dumps(payload)


def sample(count):
    return np.random.rand(count)


def emit():
    for name in {"a", "b"}:
        yield name
