"""RL003 conforming fixture, service scope: scheduling on the event loop's
monotonic clock, canonical JSON bodies, and a justified suppression for the
one legitimate wall-clock use (an operator-facing log line that never
reaches a payload)."""

import asyncio
import json
import time


def build_response(series):
    return json.dumps({"series": series}, sort_keys=True)


def schedule_flush(scheduler, window_seconds):
    loop = asyncio.get_running_loop()
    return loop.call_later(window_seconds, scheduler.flush)


def log_startup(logger):
    # Log-only wall clock: never serialized into a response or artifact.
    logger.info("started at %s", time.time())  # repro-lint: disable=RL003
