"""RL003 violating fixture, service scope: wall-clock timestamps leaking
into a served payload, plus an unsorted response body."""

import json
import time


def build_response(series):
    payload = {"series": series, "served_at": time.time()}
    return json.dumps(payload)


def request_id():
    return time.time_ns()
