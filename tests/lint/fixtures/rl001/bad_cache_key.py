"""RL001 violating fixture: registered-cache key omits cache_key()."""

from repro.cache import LRUCache

_PROFILE_CACHE = LRUCache(maxsize=64, name="fixture_profiles")


def lookup(population, backend_name, build):
    key = ("profiles", backend_name, len(population))
    return _PROFILE_CACHE.get_or_compute(key, build)
