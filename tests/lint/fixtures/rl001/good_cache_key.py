"""RL001 conforming fixture: keys thread ``config.cache_key()``.

Covers the three accepted shapes: a direct ``.cache_key()`` reference in
the key expression, a local name assigned from one, and a same-module
helper whose body contains one.
"""

from repro.cache import LRUCache

_PROFILE_CACHE = LRUCache(maxsize=64, name="fixture_profiles")


def _key(population, config):
    return ("profiles", population.fingerprint(), config.cache_key())


def lookup_direct(population, config, build):
    return _PROFILE_CACHE.get_or_compute(
        ("profiles", population.fingerprint(), config.cache_key()), build)


def lookup_local(population, config, build):
    key = ("profiles", population.fingerprint(), config.cache_key())
    return _PROFILE_CACHE.get_or_compute(key, build)


def lookup_helper(population, config, build):
    return _PROFILE_CACHE.get_or_compute(_key(population, config), build)
