"""RL005 violating fixture: exact equality against a non-zero float."""


def is_boundary(kappa):
    return kappa == 0.5
