"""RL005 conforming fixture: tolerance comparison; exact-zero sentinel."""

_BOUNDARY_TOLERANCE = 1e-9


def is_boundary(kappa):
    return abs(kappa - 0.5) <= _BOUNDARY_TOLERANCE


def is_free(price):
    # Exact 0.0 is an exempt sentinel (degenerate-case short circuit).
    return price == 0.0
