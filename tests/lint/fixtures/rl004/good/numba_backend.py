"""RL004 conforming fixture: kernel touches only args, locals and builtins."""

import math


def _kernel_carried(values, cap):
    total = 0.0
    for i in range(len(values)):
        total += min(float(values[i]), cap)
    return math.fsum([total])


def helper_outside_kernel(values, scale):
    # Not a kernel (no _kernel_ prefix, no njit): free to use globals.
    return [scale * value for value in values]
