"""RL004 violating fixture: kernel with **kwargs closing over a global."""

_SCALE = 2.0


def _kernel_scaled(values, cap, **options):
    total = 0.0
    for i in range(len(values)):
        total += min(values[i], cap) * _SCALE
    return total
