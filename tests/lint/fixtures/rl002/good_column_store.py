"""RL002 conforming fixture: copy before mutating; owner writes allowed."""

import numpy as np


class Holder:
    def __init__(self, alphas):
        self.alphas = np.asarray(alphas, dtype=float)


def scale_copy(population, factor):
    scaled = np.array(population.alphas)
    scaled[0] = scaled[0] * factor
    return scaled


def read_only(population):
    return float(population.theta_hats[0])
