"""RL002 violating fixture: stores into Population column views."""


def clobber_direct(population):
    population.alphas[0] = 2.0


def clobber_alias(population):
    view = population.theta_hats
    view[1] = 3.0


def rebind_column(equilibrium, values):
    equilibrium.thetas = values


def unfreeze(array):
    array.setflags(write=True)
