"""RL006 conforming fixture: named constant or signature default."""

_RESIDUAL_TOLERANCE = 1e-9


def converged(residual, tolerance=1e-9):
    if tolerance is None:
        tolerance = _RESIDUAL_TOLERANCE
    return abs(residual) < tolerance
