"""RL006 violating fixture: inline tolerance literal in a function body."""


def converged(residual):
    return abs(residual) < 1e-9
