"""Regression tests for the genuine RL001-RL006 violations fixed when
the lint gate was introduced.

Two kinds of pin:

* the hoisted tolerance constants (RL006 fixes) keep their original
  inline values — any drift would silently change solver behaviour and
  break the golden artifacts;
* the behavioural fixes (RL001 cache-key threading, RL005 tolerance
  comparisons) actually behave as intended at runtime.
"""

import pytest

from repro.backends.config import SolverConfig
from repro.errors import ModelValidationError


class TestHoistedToleranceConstants:
    """RL006 fixes: every hoisted constant keeps its pre-fix value."""

    def test_equilibrium_constants(self):
        from repro.network import equilibrium as eq
        assert eq._UNCONGESTED_SLACK == 1e-15
        assert eq._CONGESTION_SLACK == 1e-12
        assert eq._RESIDUAL_TOLERANCE == 1e-13
        assert eq._CAP_WIDTH_TOLERANCE == 1e-14

    def test_allocation_constants(self):
        from repro.network import allocation
        assert allocation._BISECTION_TOLERANCE == 1e-12
        assert allocation._DEMAND_RANGE_SLACK == 1e-12
        assert allocation._UNCONGESTED_SLACK == 1e-15
        assert allocation._WEIGHT_FLOOR == 1e-300
        assert allocation._DAMPING_FLOOR == 1e-4

    def test_migration_constants(self):
        from repro.core import migration
        assert migration.DEFAULT_MIGRATION_TOLERANCE == 1e-4
        assert migration._DUOPOLY_SHARE_WIDTH == 1e-5
        assert migration._SURPLUS_SCALE_FLOOR == 1e-12
        assert migration._SHARE_SUM_TOLERANCE == 1e-9

    def test_cp_game_constants(self):
        from repro.core import cp_game
        assert cp_game._UTILITY_TOLERANCE == 1e-9
        assert cp_game._SATURATION_TOLERANCE == 1e-6
        assert cp_game._UTILITY_SCALE_FLOOR == 1e-12

    def test_oligopoly_constants(self):
        from repro.core import oligopoly
        assert oligopoly.OLIGOPOLY_MIGRATION_TOLERANCE == 1e-3
        assert oligopoly._SHARE_SUM_TOLERANCE == 1e-9
        assert oligopoly._SURPLUS_SCALE_FLOOR == 1e-12

    def test_system_and_provider_and_demand_constants(self):
        from repro.network import demand, provider, system
        assert system._SATURATION_TOLERANCE == 1e-9
        assert provider._THETA_HAT_MATCH_TOLERANCE == 1e-9
        assert demand._ENDPOINT_TOLERANCE == 1e-12
        assert demand._ZERO_LIMIT_SCALE == 1e-12


class TestCacheKeyThreading:
    """RL001 fix: the maxmin profile cache keys include the solver config,
    so entries computed under different backends/tolerances never alias."""

    def test_cache_key_distinguishes_tolerance_variants(self):
        base = SolverConfig()
        assert (SolverConfig(bisection_tolerance=1e-10).cache_key()
                != base.cache_key())
        assert (SolverConfig(migration_tolerance=5e-4).cache_key()
                != base.cache_key())

    def test_profile_cache_isolates_configs(self):
        from repro.network import equilibrium as eq
        from repro.network.provider import ContentProvider, Population

        population = Population([
            ContentProvider(name="a", alpha=0.6, theta_hat=1.0, beta=1.0),
            ContentProvider(name="b", alpha=0.4, theta_hat=2.0, beta=0.5),
        ])
        eq.clear_equilibrium_caches()
        eq.cached_class_cap(population, [0], 0.2, config=SolverConfig())
        first = eq._PROFILE_CACHE.stats()["size"]
        assert first > 0
        # Same population and class, different tolerance config: must be a
        # fresh profile entry (a colliding key would alias the old one).
        eq.cached_class_cap(population, [0], 0.2,
                            config=SolverConfig(bisection_tolerance=1e-10))
        second = eq._PROFILE_CACHE.stats()["size"]
        assert second > first


class TestToleranceComparisons:
    """RL005 fixes: exact float equality replaced with tolerance checks."""

    def test_piecewise_endpoint_within_tolerance_accepted(self):
        from repro.network.demand import PiecewiseLinearDemand
        demand = PiecewiseLinearDemand(
            1.0, [(0.0, 0.0), (1.0 - 5e-13, 1.0)])
        assert demand.theta_hat == 1.0

    def test_piecewise_endpoint_beyond_tolerance_rejected(self):
        from repro.network.demand import PiecewiseLinearDemand
        with pytest.raises(ModelValidationError, match="end at"):
            PiecewiseLinearDemand(1.0, [(0.0, 0.0), (1.0 - 1e-6, 1.0)])

    def test_provider_theta_hat_match_is_relative(self):
        from repro.network.demand import ExponentialSensitivityDemand
        from repro.network.provider import ContentProvider
        near = ExponentialSensitivityDemand(1.0 + 1e-12, beta=1.0)
        provider = ContentProvider(name="a", alpha=0.5, theta_hat=1.0,
                                   demand=near)
        assert provider.demand is near
        far = ExponentialSensitivityDemand(1.0 + 1e-3, beta=1.0)
        with pytest.raises(ModelValidationError, match="must match"):
            ContentProvider(name="a", alpha=0.5, theta_hat=1.0, demand=far)
