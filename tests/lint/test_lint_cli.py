"""CLI tests: exit codes, output formats, and the repro-netneutrality
``lint`` subcommand dispatch."""

from pathlib import Path

import pytest

import repro.cli as repro_cli
from repro.lint.cli import build_parser, main
from repro.lint.reporting import parse_json_report
from repro.lint.rules import rule_codes

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "rl006" / "core" / "bad_tolerance.py")
GOOD = str(FIXTURES / "rl006" / "core" / "good_tolerance.py")


def test_clean_path_exits_zero(capsys):
    assert main([GOOD]) == 0
    assert capsys.readouterr().out.strip() == "0 findings"


def test_findings_exit_one_with_rendered_text(capsys):
    assert main([BAD]) == 1
    out = capsys.readouterr().out
    assert "RL006" in out
    assert BAD in out
    assert out.strip().endswith("1 finding")


def test_usage_error_exits_two(capsys):
    assert main(["does/not/exist.py"]) == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err.startswith("error:")


def test_json_format_round_trips(capsys):
    assert main(["--format", "json", BAD]) == 1
    findings = parse_json_report(capsys.readouterr().out)
    assert [f.code for f in findings] == ["RL006"]


def test_select_and_ignore_comma_lists(capsys):
    assert main(["--select", "rl001,rl002", BAD]) == 0
    capsys.readouterr()
    assert main(["--ignore", "RL006", BAD]) == 0
    capsys.readouterr()
    assert main(["--select", "RL006", "--ignore", "RL006", BAD]) == 0


def test_unknown_code_is_usage_error(capsys):
    assert main(["--select", "RL999", BAD]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in rule_codes():
        assert code in out


def test_default_target_is_src():
    parser = build_parser()
    args = parser.parse_args([])
    assert args.paths == ["src"]


@pytest.mark.parametrize("path,expected", [(GOOD, 0), (BAD, 1)])
def test_repro_cli_lint_subcommand(capsys, path, expected):
    assert repro_cli.main(["lint", path]) == expected
    out = capsys.readouterr().out
    if expected:
        assert "RL006" in out


def test_repro_cli_lint_list_rules(capsys):
    assert repro_cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in rule_codes():
        assert code in out
