"""Cache memory-pressure policy: byte budgets, TTL expiry, counters.

Pins the eviction layer added for the long-lived service: approximate
entry sizing, the ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_TTL_SECONDS``
environment knobs, lazy TTL expiry (an expired entry is recomputed, never
served), the maxsize/byte-budget interaction, and the eviction counters
surfaced through ``stats()`` / ``all_cache_stats()`` / ``GET /stats``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cache import (
    MAX_BYTES_ENV_VAR,
    TTL_ENV_VAR,
    LRUCache,
    approx_size,
    all_cache_stats,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def sized_cache(**kwargs):
    """A cache whose sizer charges each int value its own number of bytes."""
    kwargs.setdefault("sizer", lambda value: int(value))
    return LRUCache(**kwargs)


class TestByteBudget:
    def test_byte_budget_evicts_lru_until_it_holds(self):
        cache = sized_cache(maxsize=None, max_bytes=100)
        cache.put("a", 40)
        cache.put("b", 40)
        cache.put("c", 40)  # 120 > 100: evicts "a", the LRU
        assert cache.get("a") is None
        assert cache.get("b") == 40 and cache.get("c") == 40
        stats = cache.stats()
        assert stats["evictions_bytes"] == 1
        assert stats["evictions_maxsize"] == 0
        assert stats["current_bytes"] == 80

    def test_recency_protects_entries_from_byte_eviction(self):
        cache = sized_cache(maxsize=None, max_bytes=100)
        cache.put("a", 40)
        cache.put("b", 40)
        assert cache.get("a") == 40  # refresh "a"
        cache.put("c", 40)  # now "b" is the LRU
        assert cache.get("b") is None
        assert cache.get("a") == 40

    def test_oversize_value_is_rejected_not_stored(self):
        cache = sized_cache(maxsize=None, max_bytes=100)
        cache.put("small", 10)
        cache.put("huge", 500)  # bigger than the whole budget
        assert cache.get("huge") is None
        assert cache.get("small") == 10  # resident entries untouched
        assert cache.stats()["rejected_oversize"] == 1

    def test_overwrite_replaces_the_old_entry_size(self):
        cache = sized_cache(maxsize=None, max_bytes=100)
        cache.put("a", 80)
        cache.put("a", 30)
        assert cache.stats()["current_bytes"] == 30
        cache.put("b", 60)  # 90 <= 100, no eviction needed
        assert cache.get("a") == 30 and cache.get("b") == 60

    def test_maxsize_and_byte_budget_interact(self):
        # maxsize evicts on entry count, max_bytes on the size sum; the
        # counters attribute each eviction to the bound that caused it.
        cache = sized_cache(maxsize=2, max_bytes=100)
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)  # entry-count eviction ("a")
        assert cache.get("a") is None
        cache.put("d", 95)  # byte eviction: 95 + 10 + 10 > 100
        stats = cache.stats()
        assert stats["evictions_maxsize"] >= 1
        assert stats["evictions_bytes"] >= 1
        assert cache.stats()["current_bytes"] <= 100
        assert len(cache) <= 2


class TestTTL:
    def test_expired_entry_is_recomputed_not_served(self):
        clock = FakeClock()
        cache = LRUCache(maxsize=8, ttl_seconds=10.0, clock=clock)
        calls = []

        def compute():
            calls.append(clock())
            return f"value@{clock()}"

        assert cache.get_or_compute("k", compute) == "value@100.0"
        clock.advance(5.0)
        assert cache.get_or_compute("k", compute) == "value@100.0"  # hit
        clock.advance(6.0)  # 11s since insert: expired
        assert cache.get_or_compute("k", compute) == "value@111.0"
        assert len(calls) == 2  # recomputed exactly once
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_get_and_contains_treat_expiry_as_miss(self):
        clock = FakeClock()
        cache = LRUCache(maxsize=8, ttl_seconds=1.0, clock=clock)
        cache.put("k", "v")
        assert "k" in cache
        clock.advance(2.0)
        assert "k" not in cache
        cache.put("k2", "v2")
        clock.advance(2.0)
        assert cache.get("k2") is None
        assert cache.stats()["expirations"] == 2

    def test_per_entry_ttl_overrides_cache_default(self):
        clock = FakeClock()
        cache = LRUCache(maxsize=8, ttl_seconds=100.0, clock=clock)
        cache.put("short", 1, ttl=1.0)
        cache.put("long", 2)
        clock.advance(5.0)
        assert cache.get("short") is None
        assert cache.get("long") == 2

    def test_reinsert_refreshes_expiry(self):
        clock = FakeClock()
        cache = LRUCache(maxsize=8, ttl_seconds=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(8.0)
        cache.put("k", 2)  # fresh insert, fresh expiry
        clock.advance(8.0)
        assert cache.get("k") == 2


class TestEnvConfiguration:
    def test_named_cache_reads_env_budget_and_ttl(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "4096")
        monkeypatch.setenv(TTL_ENV_VAR, "7.5")
        cache = LRUCache(maxsize=4, name="policy-env-test")
        assert cache.max_bytes == 4096
        assert cache.ttl_seconds == 7.5

    def test_unnamed_cache_ignores_env(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "4096")
        cache = LRUCache(maxsize=4)
        assert cache.max_bytes is None

    def test_explicit_bounds_beat_env(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "4096")
        cache = LRUCache(maxsize=4, name="policy-env-explicit",
                         max_bytes=128)
        assert cache.max_bytes == 128

    @pytest.mark.parametrize("raw", ["garbage", "-5", "0", "1.5.2"])
    def test_garbage_env_budget_raises(self, monkeypatch, raw):
        # A typo in a memory budget must not silently disable the budget.
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, raw)
        with pytest.raises(ValueError):
            LRUCache(maxsize=4, name="policy-env-garbage")

    def test_invalid_constructor_bounds_raise(self):
        with pytest.raises(ValueError):
            LRUCache(max_bytes=0)
        with pytest.raises(ValueError):
            LRUCache(ttl_seconds=-1.0)


class TestApproxSize:
    def test_numpy_arrays_are_sized_exactly(self):
        array = np.zeros((100, 50), dtype=np.float64)
        size = approx_size(array)
        assert array.nbytes <= size <= array.nbytes + 1024

    def test_composite_values_walk_their_arrays(self):
        arrays = {"a": np.zeros(1000), "b": np.ones(2000)}
        assert approx_size(arrays) >= 3000 * 8

    def test_population_inside_a_value_is_a_cheap_reference(self):
        # Thousands of cached equilibria share one resident population;
        # charging each entry for its columns would evict everything.
        from repro.workloads.populations import paper_population

        population = paper_population(count=5000)
        full = approx_size(population)
        assert full >= 5000 * 8  # root: charged its column bytes
        nested = approx_size({"population": population, "x": 1.0})
        assert nested < 1000  # reference cost, not column bytes

    def test_shared_arrays_in_one_entry_count_once(self):
        array = np.zeros(10_000)
        single = approx_size([array])
        double = approx_size([array, array])
        assert double < single + 1024


class TestRegisteredCacheStats:
    def test_all_cache_stats_carries_eviction_counters(self):
        stats = all_cache_stats()
        assert "equilibria" in stats
        for entry in stats.values():
            for key in ("evictions_maxsize", "evictions_bytes",
                        "expirations", "rejected_oversize",
                        "current_bytes", "max_bytes", "ttl_seconds"):
                assert key in entry

    def test_server_stats_surface_the_new_counters(self):
        from repro.service.server import EquilibriumServer

        async def scenario():
            server = EquilibriumServer(port=0, window_seconds=0.005)
            await server.start()
            serve_task = asyncio.create_task(server.serve_until_closed())
            try:
                return server.stats()
            finally:
                await server.close()
                await serve_task

        payload = asyncio.run(scenario())
        equilibria = payload["caches"]["equilibria"]
        assert "evictions_bytes" in equilibria
        assert "expirations" in equilibria
        assert "idle_timeouts" in payload["server"]
