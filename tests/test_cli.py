"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_REGISTRY, build_parser, main


class TestParser:
    def test_registry_covers_all_paper_experiments(self):
        expected = {"FIG2", "FIG3", "FIG4", "FIG5", "FIG7", "FIG8", "FIG9",
                    "FIG10", "FIG11", "FIG12", "THM4", "THM5", "LEM4", "THM6",
                    "REG"}
        assert set(EXPERIMENT_REGISTRY) == expected

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "FIG2"])
        assert args.command == "run"
        assert args.experiment == "FIG2"
        args = parser.parse_args(["regimes", "--nu", "150"])
        assert args.nu == 150.0

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "FIG99"])


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FIG2" in output
        assert "THM5" in output

    def test_run_fig2(self, capsys):
        assert main(["run", "FIG2"]) == 0
        output = capsys.readouterr().out
        assert "FIG2" in output
        assert "findings" in output

    def test_run_with_count_override(self, capsys):
        assert main(["run", "THM4", "--count", "60", "--max-rows", "4"]) == 0
        output = capsys.readouterr().out
        assert "kappa_one_dominates_everywhere" in output

    def test_population_command(self, capsys):
        assert main(["population", "--count", "50"]) == 0
        output = capsys.readouterr().out
        assert "count" in output
        assert "unconstrained_per_capita_load" in output
