"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.cache import clear_all_caches
from repro.cli import (
    EXPERIMENT_REGISTRY,
    build_parser,
    format_cache_stats,
    main,
)
from repro.runner.registry import experiment_ids


class TestParser:
    def test_registry_covers_all_paper_experiments(self):
        expected = {"FIG2", "FIG3", "FIG4", "FIG5", "FIG7", "FIG8", "FIG9",
                    "FIG10", "FIG11", "FIG12", "THM4", "THM5", "LEM4", "THM6",
                    "REG"}
        assert set(EXPERIMENT_REGISTRY) == expected
        assert set(experiment_ids()) == expected

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "FIG2"])
        assert args.command == "run"
        assert args.experiment == "FIG2"
        args = parser.parse_args(["regimes", "--nu", "150"])
        assert args.nu == 150.0
        args = parser.parse_args(["reproduce-all", "--workers", "4",
                                  "--scale", "smoke"])
        assert args.workers == 4
        assert args.scale == "smoke"

    def test_serve_subcommand_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.window_ms == 2.0
        assert args.naive is False
        assert args.solver_threads == 1
        assert args.max_requests is None
        assert args.backend is None

    def test_serve_subcommand_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--window-ms",
                                  "5", "--naive", "--solver-threads", "2",
                                  "--max-requests", "100", "--backend",
                                  "reference"])
        assert args.port == 0
        assert args.window_ms == 5.0
        assert args.naive is True
        assert args.solver_threads == 2
        assert args.max_requests == 100
        assert args.backend == "reference"

    def test_serve_unknown_backend_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--backend", "fortran"])

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "FIG99"])

    def test_unknown_scale_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "FIG2", "--scale", "huge"])


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FIG2" in output
        assert "THM5" in output

    def test_run_fig2(self, capsys):
        assert main(["run", "FIG2"]) == 0
        output = capsys.readouterr().out
        assert "FIG2" in output
        assert "findings" in output

    def test_run_with_count_override(self, capsys):
        assert main(["run", "THM4", "--count", "60", "--max-rows", "4"]) == 0
        output = capsys.readouterr().out
        assert "kappa_one_dominates_everywhere" in output

    def test_run_smoke_scale(self, capsys):
        assert main(["run", "THM4", "--scale", "smoke"]) == 0
        assert "kappa_one_dominates_everywhere" in capsys.readouterr().out

    def test_run_seed_override_changes_population(self, capsys):
        assert main(["run", "THM4", "--scale", "smoke", "--seed", "5",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameters"]["seed"] == 5

    def test_run_json_artifact(self, capsys):
        assert main(["run", "FIG2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "FIG2"
        assert payload["schema"] == 1

    def test_run_backend_flag_recorded_in_artifact(self, capsys):
        assert main(["run", "FIG2", "--scale", "smoke", "--backend",
                     "reference", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        solver = payload["parameters"]["solver"]
        assert solver["backend_requested"] == "reference"
        assert solver["backend"] == "reference"
        assert solver["tolerances"]["bisection"] == 1e-13

    def test_run_without_backend_flag_still_records_solver(self, capsys):
        assert main(["run", "FIG2", "--scale", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameters"]["solver"]["backend"] == "reference"

    def test_unknown_backend_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "FIG2", "--backend", "fortran"])

    def test_reproduce_all_backend_flag_in_manifest(self, tmp_path, capsys):
        assert main(["reproduce-all", "--scale", "smoke", "--only", "FIG2",
                     "--backend", "reference",
                     "--output", str(tmp_path)]) == 0
        manifest = json.loads(
            (tmp_path / "smoke" / "manifest.json").read_text())
        assert manifest["solver"]["backend_requested"] == "reference"
        artifact = json.loads((tmp_path / "smoke" / "FIG2.json").read_text())
        assert artifact["parameters"]["solver"]["backend"] == "reference"

    def test_population_command(self, capsys):
        assert main(["population", "--count", "50"]) == 0
        output = capsys.readouterr().out
        assert "count" in output
        assert "unconstrained_per_capita_load" in output


class TestCacheStats:
    def test_cache_stats_command_lists_solver_caches(self, capsys):
        assert main(["cache-stats"]) == 0
        output = capsys.readouterr().out
        for name in ("equilibria", "class_caps", "maxmin_profiles",
                     "partition_outcomes"):
            assert name in output
        assert "hit_rate" in output

    def test_cache_stats_json_is_machine_readable(self, capsys):
        assert main(["cache-stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "equilibria" in payload
        assert {"size", "maxsize", "hits", "misses", "hit_rate"} \
            <= set(payload["equilibria"])

    def test_run_cache_stats_flag_reports_solver_activity(self, capsys):
        clear_all_caches()
        assert main(["run", "THM4", "--scale", "smoke", "--cache-stats"]) == 0
        captured = capsys.readouterr()
        # The report goes to stdout, the counters to stderr.
        assert "equilibria" in captured.err
        assert "equilibria" not in captured.out

    def test_reproduce_all_cache_stats_flag(self, tmp_path, capsys):
        assert main(["reproduce-all", "--scale", "smoke", "--only", "THM4",
                     "--output", str(tmp_path), "--cache-stats"]) == 0
        assert "class_caps" in capsys.readouterr().err

    def test_format_cache_stats_renders_given_mapping(self):
        stats = {"demo": {"size": 1, "maxsize": None, "hits": 3,
                          "misses": 1, "hit_rate": 0.75}}
        table = format_cache_stats(stats)
        assert "demo" in table and "75.0%" in table and "inf" in table
        assert json.loads(format_cache_stats(stats, as_json=True)) == stats


class TestIgnoredFlagWarnings:
    def test_count_ignored_for_fig2_warns(self, capsys):
        assert main(["run", "FIG2", "--count", "500"]) == 0
        captured = capsys.readouterr()
        assert "FIG2 does not take --count" in captured.err
        assert "FIG2" in captured.out  # the run still happens

    def test_seed_ignored_for_fig3_warns(self, capsys):
        assert main(["run", "FIG3", "--seed", "9", "--max-rows", "3"]) == 0
        assert "FIG3 does not take --seed" in capsys.readouterr().err

    def test_count_aware_experiment_does_not_warn(self, capsys):
        assert main(["run", "THM4", "--scale", "smoke", "--count", "40"]) == 0
        assert capsys.readouterr().err == ""


class TestServe:
    def test_invalid_window_rejected(self, capsys):
        assert main(["serve", "--window-ms", "-1"]) == 2
        assert "--window-ms" in capsys.readouterr().err

    def test_invalid_solver_threads_rejected(self, capsys):
        assert main(["serve", "--solver-threads", "0"]) == 2
        assert "--solver-threads" in capsys.readouterr().err

    def test_serve_and_loadgen_end_to_end(self):
        """CLI server + load generator over real sockets, clean shutdown.

        --expect-coalescing proves cross-request sharing engaged over the
        wire; a zero server exit code after SIGINT proves the clean
        interrupt-shutdown path (the bounded --max-requests shutdown is
        covered at the server level in tests/service/test_server.py).
        """
        import re
        import signal
        import subprocess
        import sys
        root = pathlib.Path(__file__).resolve().parent.parent
        env = dict(os.environ, PYTHONPATH=str(root / "src"))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=root)
        try:
            banner = server.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            host, port = match.group(1), match.group(2)
            loadgen = subprocess.run(
                [sys.executable, str(root / "scripts" / "service_loadgen.py"),
                 "--host", host, "--port", port, "--distribution", "hot",
                 "--requests", "40", "--concurrency", "8",
                 "--count", "200", "--expect-coalescing"],
                capture_output=True, text=True, env=env, timeout=120)
            assert loadgen.returncode == 0, loadgen.stderr
            report = json.loads(loadgen.stdout)
            assert report["coalesced"] > 0
            assert report["errors"] == 0
            server.send_signal(signal.SIGINT)
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()


class TestErrorExitCodes:
    def test_population_negative_count(self, capsys):
        assert main(["population", "--count", "-5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_regimes_negative_count(self, capsys):
        assert main(["regimes", "--count", "-3"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_regimes_ok_exit_code(self, capsys):
        assert main(["regimes", "--count", "60", "--nu", "150"]) == 0
        assert "ordering" in capsys.readouterr().out

    def test_reproduce_all_unknown_id(self, capsys, tmp_path):
        assert main(["reproduce-all", "--only", "FIG99",
                     "--output", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestReproduceAll:
    def test_writes_artifacts_and_manifest(self, capsys, tmp_path):
        assert main(["reproduce-all", "--scale", "smoke", "--only", "FIG2",
                     "--only", "THM4", "--output", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "reproduced 2 experiments" in output
        run_dir = tmp_path / "smoke"
        assert (run_dir / "FIG2.json").exists()
        assert (run_dir / "THM4.json").exists()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert set(manifest["experiments"]) == {"FIG2", "THM4"}
        assert (run_dir / "run_info.json").exists()

    def test_parallel_run_matches_serial(self, capsys, tmp_path):
        ids = ["FIG2", "FIG3", "THM4", "LEM4"]
        argv = ["reproduce-all", "--scale", "smoke"]
        for experiment_id in ids:
            argv += ["--only", experiment_id]
        assert main(argv + ["--output", str(tmp_path / "serial"),
                            "--workers", "1"]) == 0
        assert main(argv + ["--output", str(tmp_path / "parallel"),
                            "--workers", "2"]) == 0
        capsys.readouterr()
        serial = (tmp_path / "serial/smoke/manifest.json").read_bytes()
        parallel = (tmp_path / "parallel/smoke/manifest.json").read_bytes()
        assert serial == parallel

    def test_ignored_count_warns_per_experiment(self, capsys, tmp_path):
        assert main(["reproduce-all", "--scale", "smoke", "--only", "FIG2",
                     "--count", "80", "--output", str(tmp_path)]) == 0
        assert "FIG2 does not take --count" in capsys.readouterr().err

    def test_full_suite_warns_for_count_unaware_experiments(self, capsys,
                                                            tmp_path):
        assert main(["reproduce-all", "--scale", "smoke", "--count", "30",
                     "--output", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "FIG2 does not take --count" in err
        assert "FIG3 does not take --count" in err

    def test_strict_findings_flag_accepted(self, capsys, tmp_path):
        assert main(["reproduce-all", "--scale", "smoke", "--only", "THM4",
                     "--strict-findings", "--output", str(tmp_path)]) == 0
