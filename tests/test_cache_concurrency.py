"""Concurrency-safety stress tests for :class:`repro.cache.LRUCache`.

The equilibrium service runs its batch solves on executor threads while the
event loop keeps accepting requests, so the shared solver caches are
hammered from several threads at once.  These tests pin the lock contract:
no exceptions, no lost counter updates, the size bound holds, and the
single-threaded semantics (hit/miss accounting, eviction order) are
unchanged.
"""

from __future__ import annotations

import threading

import pytest

from repro.cache import LRUCache

THREADS = 8
OPS_PER_THREAD = 2000


def _run_threads(worker) -> list[Exception]:
    """Run ``worker(thread_index)`` on THREADS threads; collect exceptions."""
    errors: list[Exception] = []
    lock = threading.Lock()

    def run(index: int) -> None:
        try:
            worker(index)
        except Exception as error:  # pragma: no cover - failure path
            with lock:
                errors.append(error)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestConcurrentAccess:
    def test_mixed_get_put_storm_keeps_invariants(self):
        cache = LRUCache(maxsize=64)

        def worker(index: int) -> None:
            for op in range(OPS_PER_THREAD):
                key = ("k", (index * OPS_PER_THREAD + op) % 200)
                if op % 3 == 0:
                    cache.put(key, op)
                else:
                    value = cache.get(key)
                    assert value is None or isinstance(value, int)
                assert len(cache) <= 64

        assert _run_threads(worker) == []
        assert len(cache) <= 64
        stats = cache.stats()
        # Every get() resolved to exactly one hit or one miss: 2/3 of the
        # per-thread ops are gets, and no update may be lost under the lock.
        expected_gets = THREADS * sum(
            1 for op in range(OPS_PER_THREAD) if op % 3 != 0)
        assert stats["hits"] + stats["misses"] == expected_gets

    def test_get_or_compute_storm_counts_every_probe(self):
        cache = LRUCache(maxsize=None)
        computed = []
        computed_lock = threading.Lock()

        def worker(index: int) -> None:
            for op in range(OPS_PER_THREAD):
                key = ("k", op % 50)

                def compute() -> int:
                    with computed_lock:
                        computed.append(key)
                    return op

                value = cache.get_or_compute(key, compute)
                assert isinstance(value, int)

        assert _run_threads(worker) == []
        stats = cache.stats()
        # Each call probes exactly once; the probe is a hit or a miss.
        assert stats["hits"] + stats["misses"] == THREADS * OPS_PER_THREAD
        # Misses and computations line up one-to-one (the lock is released
        # around compute(), so concurrent first touches may both compute —
        # each such race also counted a miss).
        assert stats["misses"] == len(computed)
        assert len(cache) == 50

    def test_concurrent_clear_does_not_corrupt(self):
        cache = LRUCache(maxsize=32)

        def worker(index: int) -> None:
            for op in range(OPS_PER_THREAD):
                key = ("k", op % 80)
                if index == 0 and op % 97 == 0:
                    cache.clear()
                elif op % 2 == 0:
                    cache.put(key, op)
                else:
                    cache.get(key)
                    cache.stats()
                    key in cache  # noqa: B015 - exercising __contains__

        assert _run_threads(worker) == []
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["hits"] >= 0 and stats["misses"] >= 0

    def test_single_threaded_semantics_unchanged(self):
        """The lock must not alter hit/miss accounting or eviction order."""
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency of "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats == {"size": 2, "maxsize": 2, "hits": 3, "misses": 1,
                         "hit_rate": 0.75, "current_bytes": 0,
                         "max_bytes": None, "ttl_seconds": None,
                         "evictions_maxsize": 1, "evictions_bytes": 0,
                         "expirations": 0, "rejected_oversize": 0}

    def test_maxsize_zero_still_disables_caching(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)
