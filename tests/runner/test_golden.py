"""Golden-artifact regression tests.

Every experiment id is regenerated at the ``smoke`` scale (50-CP
populations, coarse grids — milliseconds each) and diffed against the
committed golden artifact under ``tests/runner/golden/smoke/`` with the
per-field tolerance rules of :mod:`repro.runner.compare`: findings,
partitions and all non-float fields must match exactly, float series (the
surplus / throughput / market-share numbers) to 1e-9.  A solver change
that silently shifts the numbers an experiment produces fails here even
when every qualitative "shape" finding still holds.

To regenerate the goldens after an *intentional* numerical change::

    PYTHONPATH=src python -m repro.cli reproduce-all --scale smoke \
        --workers 2 --output tests/runner/golden --strict-findings
    rm tests/runner/golden/smoke/run_info.json
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runner.artifacts import (
    load_artifact_payload,
    load_manifest,
    result_to_artifact_bytes,
    sha256_bytes,
)
from repro.runner.compare import diff_payloads
from repro.runner.artifacts import decode_payload
from repro.runner.registry import experiment_ids, get_spec

GOLDEN_DIR = Path(__file__).parent / "golden" / "smoke"


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_smoke_run_matches_golden(experiment_id):
    golden = load_artifact_payload(GOLDEN_DIR / f"{experiment_id}.json")
    spec = get_spec(experiment_id)
    result = spec.run(scale="smoke")
    regenerated = decode_payload(result_to_artifact_bytes(result))
    differences = diff_payloads(golden, regenerated)
    assert not differences, (
        f"{experiment_id} drifted from the golden artifact:\n  "
        + "\n  ".join(differences[:40]))
    assert spec.failed_findings(result) == []


def test_golden_directory_complete():
    names = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert names == {f"{i}.json" for i in experiment_ids()} | \
        {"manifest.json"}


def test_golden_manifest_consistent_with_artifacts():
    """The committed manifest's hashes match the committed artifact bytes."""
    manifest = load_manifest(GOLDEN_DIR / "manifest.json")
    assert manifest["scale"] == "smoke"
    assert set(manifest["experiments"]) == set(experiment_ids())
    for experiment_id, entry in manifest["experiments"].items():
        data = (GOLDEN_DIR / entry["artifact"]).read_bytes()
        assert entry["sha256"] == sha256_bytes(data), experiment_id
        assert entry["bytes"] == len(data), experiment_id
        assert entry["failed_findings"] == [], experiment_id
