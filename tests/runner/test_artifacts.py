"""Tests for canonical artifact serialisation and the run manifest."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ModelValidationError
from repro.runner import artifacts
from repro.runner.compare import diff_payloads
from repro.runner.registry import get_spec
from repro.simulation.results import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    Series,
    SweepResult,
)


def small_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="TEST",
        description="synthetic result",
        parameters={"count": 3, "grid": (0.0, 0.5, 1.0), "label": "x"},
    )
    panel = SweepResult(title="panel", parameters={"kappa": 0.5})
    panel.add(Series(name="s", x=(0.0, 1.0), y=(2.0, 3.5)))
    result.add_panel(panel)
    result.findings["holds"] = True
    result.findings["value"] = 0.25
    result.findings["names"] = ["a", "b"]
    return result


class TestResultSerialisation:
    def test_roundtrip_identity(self):
        payload = small_result().to_dict()
        rebuilt = ExperimentResult.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_tuples_canonicalised_to_lists(self):
        payload = small_result().to_dict()
        assert payload["parameters"]["grid"] == [0.0, 0.5, 1.0]

    def test_schema_version_embedded(self):
        payload = small_result().to_dict()
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        assert payload["kind"].startswith("repro-netneutrality/")

    def test_unsupported_schema_rejected(self):
        payload = small_result().to_dict()
        payload["schema"] = RESULT_SCHEMA_VERSION + 99
        with pytest.raises(ModelValidationError, match="schema"):
            ExperimentResult.from_dict(payload)

    def test_wrong_kind_rejected(self):
        payload = small_result().to_dict()
        payload["kind"] = "something/else"
        with pytest.raises(ModelValidationError, match="kind"):
            ExperimentResult.from_dict(payload)

    def test_unserialisable_value_rejected(self):
        result = small_result()
        result.findings["bad"] = object()
        with pytest.raises(ModelValidationError, match="not JSON-representable"):
            result.to_dict()

    def test_real_experiment_roundtrips(self):
        result = get_spec("THM4").run(scale="smoke")
        payload = result.to_dict()
        assert ExperimentResult.from_dict(payload).to_dict() == payload


class TestCanonicalJson:
    def test_bytes_deterministic(self):
        payload = small_result().to_dict()
        assert artifacts.canonical_json_bytes(payload) == \
            artifacts.canonical_json_bytes(payload)

    def test_keys_sorted_and_ascii(self):
        data = artifacts.canonical_json_bytes({"b": 1, "a": 2})
        assert data == b'{\n  "a": 2,\n  "b": 1\n}\n'

    def test_nonfinite_floats_roundtrip(self):
        payload = {"plus": math.inf, "minus": -math.inf, "nan": math.nan,
                   "nested": [1.0, math.inf]}
        data = artifacts.canonical_json_bytes(payload)
        json.loads(data)  # strict JSON, no Infinity literals
        assert b"Infinity" not in data
        decoded = artifacts.decode_payload(data)
        assert decoded["plus"] == math.inf
        assert decoded["minus"] == -math.inf
        assert math.isnan(decoded["nan"])
        assert decoded["nested"] == [1.0, math.inf]

    def test_reserved_key_rejected(self):
        with pytest.raises(ModelValidationError, match="reserved key"):
            artifacts.canonical_json_bytes({"$nonfinite": "x"})

    def test_unknown_nonfinite_token_rejected(self):
        with pytest.raises(ModelValidationError, match="non-finite"):
            artifacts.decode_payload(b'{"v": {"$nonfinite": "huge"}}')


class TestArtifactFiles:
    def test_write_and_load_roundtrip(self, tmp_path):
        result = small_result()
        data = artifacts.result_to_artifact_bytes(result)
        path = tmp_path / artifacts.artifact_filename("TEST")
        path.write_bytes(data)
        reloaded = artifacts.load_artifact(path)
        assert diff_payloads(result.to_dict(), reloaded.to_dict()) == []

    def test_load_artifact_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json")
        with pytest.raises(ModelValidationError, match="cannot read"):
            artifacts.load_artifact(path)

    def test_load_artifact_missing_file(self, tmp_path):
        with pytest.raises(ModelValidationError, match="cannot read"):
            artifacts.load_artifact(tmp_path / "absent.json")


class TestManifest:
    def test_manifest_sorted_and_hashed(self):
        data_b = b"bbb"
        data_a = b"aaaa"
        manifest = artifacts.build_manifest(
            "smoke", {"B": data_b, "A": data_a},
            failed_findings={"B": ["x"]})
        assert list(manifest["experiments"]) == ["A", "B"]
        entry = manifest["experiments"]["A"]
        assert entry["sha256"] == artifacts.sha256_bytes(data_a)
        assert entry["bytes"] == len(data_a)
        assert manifest["experiments"]["B"]["failed_findings"] == ["x"]
        assert manifest["schema"] == artifacts.MANIFEST_SCHEMA_VERSION

    def test_manifest_roundtrip(self, tmp_path):
        manifest = artifacts.build_manifest("smoke", {"A": b"data"})
        path = tmp_path / "manifest.json"
        path.write_bytes(artifacts.manifest_bytes(manifest))
        assert artifacts.load_manifest(path) == manifest

    def test_load_manifest_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_bytes(artifacts.canonical_json_bytes({"kind": "other"}))
        with pytest.raises(ModelValidationError, match="not a run manifest"):
            artifacts.load_manifest(path)


class TestDiffPayloads:
    def test_equal_payloads_no_diff(self):
        assert diff_payloads({"a": [1, 2.0]}, {"a": [1, 2.0]}) == []

    def test_float_within_tolerance_ignored(self):
        assert diff_payloads({"v": 1.0}, {"v": 1.0 + 1e-12}) == []

    def test_float_beyond_tolerance_reported(self):
        diffs = diff_payloads({"v": 1.0}, {"v": 1.0 + 1e-6})
        assert len(diffs) == 1 and "$.v" in diffs[0]

    def test_bool_int_float_types_distinct(self):
        assert diff_payloads({"v": True}, {"v": 1}) != []
        assert diff_payloads({"v": 1}, {"v": 1.0}) != []

    def test_exact_match_required_for_strings(self):
        assert diff_payloads({"v": "a"}, {"v": "b"}) != []

    def test_missing_and_unexpected_keys(self):
        diffs = diff_payloads({"a": 1}, {"b": 1})
        assert any("missing key" in d for d in diffs)
        assert any("unexpected key" in d for d in diffs)

    def test_length_mismatch(self):
        assert any("length" in d for d in diff_payloads([1, 2], [1]))

    def test_nan_equals_nan(self):
        assert diff_payloads({"v": math.nan}, {"v": math.nan}) == []
        assert diff_payloads({"v": math.inf}, {"v": math.nan}) != []
