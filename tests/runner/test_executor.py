"""Property tests for the sharded multi-process runner.

The headline guarantees: artifacts and manifest are byte-identical for any
worker count, shard count and shard order, and the non-deterministic run
metadata stays out of the hashed outputs.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ModelValidationError
from repro.runner.artifacts import load_manifest, sha256_bytes
from repro.runner.executor import reproduce_all, shard_experiments
from repro.runner.registry import experiment_ids

#: A fast cross-section of the suite: analytic figures, a monopoly sweep, a
#: duopoly sweep, the theorem checks and the oligopoly experiments.
SUBSET = ("FIG2", "FIG3", "FIG4", "FIG7", "THM4", "THM5", "LEM4", "REG")


def run_files(run_dir):
    """Name -> bytes of every deterministic file in a run directory."""
    return {path.name: path.read_bytes()
            for path in sorted(run_dir.iterdir())
            if path.name != "run_info.json"}


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    """The full suite at smoke scale with one worker (the reference run)."""
    output = tmp_path_factory.mktemp("serial")
    summary = reproduce_all(scale="smoke", workers=1, output_dir=output)
    return summary


class TestSerialRun:
    def test_runs_whole_registry(self, serial_run):
        assert serial_run.experiment_ids == tuple(sorted(experiment_ids()))

    def test_all_expected_findings_hold_at_smoke(self, serial_run):
        assert serial_run.ok
        assert serial_run.failed_findings == {}

    def test_artifact_per_experiment_plus_manifest(self, serial_run):
        names = set(run_files(serial_run.output_dir))
        assert names == {f"{i}.json" for i in experiment_ids()} | \
            {"manifest.json"}

    def test_manifest_hashes_match_files(self, serial_run):
        manifest = load_manifest(serial_run.manifest_path)
        assert manifest["scale"] == "smoke"
        for experiment_id, entry in manifest["experiments"].items():
            data = (serial_run.output_dir / entry["artifact"]).read_bytes()
            assert entry["sha256"] == sha256_bytes(data)
            assert entry["bytes"] == len(data)
            assert entry["failed_findings"] == []

    def test_run_info_written_but_unhashed(self, serial_run):
        info = json.loads(
            (serial_run.output_dir / "run_info.json").read_text())
        assert info["workers"] == 1
        manifest_text = serial_run.manifest_path.read_text()
        assert "run_info" not in manifest_text
        assert "elapsed" not in manifest_text


class TestParallelDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, serial_run,
                                                   tmp_path):
        parallel = reproduce_all(scale="smoke", workers=4,
                                 output_dir=tmp_path)
        assert parallel.manifest_sha256 == serial_run.manifest_sha256
        assert run_files(parallel.output_dir) == \
            run_files(serial_run.output_dir)

    def test_shard_count_and_order_do_not_change_hashes(self, tmp_path):
        baseline = reproduce_all(ids=SUBSET, scale="smoke", workers=1,
                                 output_dir=tmp_path / "a")
        sharded = reproduce_all(ids=SUBSET, scale="smoke", workers=2,
                                shards=3, shard_order=(2, 0, 1),
                                output_dir=tmp_path / "b")
        reversed_order = reproduce_all(ids=tuple(reversed(SUBSET)),
                                       scale="smoke", workers=2,
                                       output_dir=tmp_path / "c")
        assert baseline.manifest_sha256 == sharded.manifest_sha256
        assert baseline.manifest_sha256 == reversed_order.manifest_sha256
        assert run_files(baseline.output_dir) == \
            run_files(sharded.output_dir) == \
            run_files(reversed_order.output_dir)

    def test_repeated_serial_runs_identical(self, serial_run, tmp_path):
        again = reproduce_all(ids=SUBSET, scale="smoke", workers=1,
                              output_dir=tmp_path)
        reference = run_files(serial_run.output_dir)
        for name, data in run_files(again.output_dir).items():
            if name != "manifest.json":
                assert data == reference[name]


class TestSharding:
    def test_round_robin_partition(self):
        groups = shard_experiments(["a", "b", "c", "d", "e"], 2)
        assert groups == [["a", "c", "e"], ["b", "d"]]

    def test_more_shards_than_items_collapses(self):
        groups = shard_experiments(["a", "b"], 5)
        assert groups == [["a"], ["b"]]

    def test_invalid_shard_count(self):
        with pytest.raises(ModelValidationError, match="positive"):
            shard_experiments(["a"], 0)


class TestValidation:
    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ModelValidationError, match="unknown experiment"):
            reproduce_all(ids=["FIG99"], output_dir=tmp_path)

    def test_empty_selection_rejected(self, tmp_path):
        with pytest.raises(ModelValidationError, match="no experiments"):
            reproduce_all(ids=[], output_dir=tmp_path)

    def test_invalid_worker_count(self, tmp_path):
        with pytest.raises(ModelValidationError, match="workers"):
            reproduce_all(ids=SUBSET, workers=0, output_dir=tmp_path)

    def test_bad_shard_order_rejected(self, tmp_path):
        with pytest.raises(ModelValidationError, match="shard_order"):
            reproduce_all(ids=SUBSET, workers=2, shard_order=(5, 1),
                          output_dir=tmp_path)

    def test_count_override_propagates(self, tmp_path):
        summary = reproduce_all(ids=("THM4",), scale="smoke", workers=1,
                                count=30, output_dir=tmp_path)
        payload = json.loads(
            (summary.output_dir / "THM4.json").read_text())
        assert payload["parameters"]["providers"] == 30

    def test_rerun_clears_stale_artifacts(self, tmp_path):
        reproduce_all(ids=("FIG2", "THM4"), scale="smoke", workers=1,
                      output_dir=tmp_path)
        summary = reproduce_all(ids=("FIG2",), scale="smoke", workers=1,
                                output_dir=tmp_path)
        names = {path.name for path in summary.output_dir.iterdir()}
        assert names == {"FIG2.json", "manifest.json", "run_info.json"}
