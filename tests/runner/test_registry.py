"""Tests for the declarative experiment registry."""

from __future__ import annotations

import inspect

import pytest

from repro.errors import ModelValidationError
from repro.runner.registry import (
    EXPERIMENT_SPECS,
    SCALES,
    SMOKE_COUNT,
    ExperimentSpec,
    experiment_ids,
    get_spec,
)
from repro.simulation.results import ExperimentResult

EXPECTED_IDS = {"FIG2", "FIG3", "FIG4", "FIG5", "FIG7", "FIG8", "FIG9",
                "FIG10", "FIG11", "FIG12", "THM4", "THM5", "LEM4", "THM6",
                "REG"}


class TestRegistryContents:
    def test_covers_all_paper_experiments(self):
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_ids_unique(self):
        ids = experiment_ids()
        assert len(ids) == len(set(ids))

    def test_get_spec_roundtrip(self):
        for experiment_id in experiment_ids():
            assert get_spec(experiment_id).experiment_id == experiment_id

    def test_get_spec_unknown_id(self):
        with pytest.raises(ModelValidationError, match="unknown experiment"):
            get_spec("FIG99")

    def test_every_spec_has_smoke_and_paper_presets(self):
        for spec in EXPERIMENT_SPECS:
            assert "smoke" in spec.scales, spec.experiment_id
            assert "paper" in spec.scales, spec.experiment_id

    def test_smoke_presets_use_small_populations(self):
        for spec in EXPERIMENT_SPECS:
            if spec.count_aware:
                assert spec.scales["smoke"]["count"] == SMOKE_COUNT, \
                    spec.experiment_id

    def test_scale_params_are_valid_function_kwargs(self):
        for spec in EXPERIMENT_SPECS:
            accepted = set(inspect.signature(spec.function).parameters)
            for scale, params in spec.scales.items():
                unknown = set(params) - accepted
                assert not unknown, \
                    f"{spec.experiment_id}/{scale}: {sorted(unknown)}"

    def test_count_seed_awareness_matches_signatures(self):
        for spec in EXPERIMENT_SPECS:
            accepted = set(inspect.signature(spec.function).parameters)
            assert spec.count_aware == ("count" in accepted), spec.experiment_id
            assert spec.seed_aware == ("seed" in accepted), spec.experiment_id


class TestResolveParams:
    def test_default_scale_is_empty_override(self):
        spec = get_spec("FIG4")
        assert spec.resolve_params("default") == {}

    def test_smoke_preset_merged_with_overrides(self):
        spec = get_spec("FIG4")
        params = spec.resolve_params("smoke", count=77, seed=5)
        assert params["count"] == 77
        assert params["seed"] == 5
        assert params["nus"] == spec.scales["smoke"]["nus"]

    def test_unknown_scale_rejected(self):
        with pytest.raises(ModelValidationError, match="unknown scale"):
            get_spec("FIG4").resolve_params("galactic")

    def test_count_rejected_for_count_unaware(self):
        with pytest.raises(ModelValidationError, match="count"):
            get_spec("FIG2").resolve_params("smoke", count=10)

    def test_ignored_overrides(self):
        assert get_spec("FIG2").ignored_overrides(count=10, seed=3) == \
            ["count", "seed"]
        assert get_spec("FIG4").ignored_overrides(count=10, seed=3) == []
        assert get_spec("FIG3").ignored_overrides() == []

    def test_unknown_scale_name_in_spec_rejected(self):
        with pytest.raises(ModelValidationError, match="unknown scales"):
            ExperimentSpec(experiment_id="X", function=lambda: None,
                           summary="", scales={"warp": {}})

    def test_scales_constant_order(self):
        assert SCALES == ("smoke", "default", "paper")


class TestRunAndFindings:
    def test_run_produces_matching_result(self):
        result = get_spec("FIG2").run(scale="smoke")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "FIG2"

    def test_failed_findings_empty_on_smoke_run(self):
        spec = get_spec("FIG2")
        result = spec.run(scale="smoke")
        assert spec.failed_findings(result) == []

    def test_failed_findings_reports_missing_and_false(self):
        spec = get_spec("FIG2")
        result = spec.run(scale="smoke")
        result.findings[spec.expected_findings[0]] = False
        del result.findings[spec.expected_findings[1]]
        assert set(spec.failed_findings(result)) == set(spec.expected_findings)

    def test_expected_findings_exist_in_smoke_artifacts(self):
        # The golden suite pins the values; here we only require that every
        # declared finding key is actually produced by the experiment.
        for spec in EXPERIMENT_SPECS:
            assert spec.expected_findings, spec.experiment_id
