"""Multi-process serving: stats merging, bit-identity, graceful drain.

The merge function is pure and unit-tested directly; the process-level
contract (N workers on one ``SO_REUSEPORT`` port, merged ``/stats``,
SIGTERM drains every worker to exit 0) runs against a real
``repro-netneutrality serve --workers 2`` subprocess.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.network.allocation import MaxMinFairAllocation
from repro.service.client import ServiceClient
from repro.service.multiproc import merge_worker_stats
from repro.simulation.batch import solve_rate_equilibria
from repro.workloads.populations import paper_population

_BANNER = re.compile(r"serving on http://([\d.]+):(\d+)")


def _worker_payload(index, *, requests=10, coalesced=4, hits=6, misses=2,
                    unreachable=False):
    if unreachable:
        return {"worker": {"index": index}, "unreachable": True}
    return {
        "schema": 1,
        "worker": {"index": index, "pid": 1000 + index},
        "server": {"requests_total": requests + 1,
                   "solve_requests": requests, "request_errors": 0,
                   "idle_timeouts": 1},
        "scheduler": {"window_seconds": 0.002, "naive": False,
                      "solver_threads": 1, "requests": requests,
                      "coalesced": coalesced,
                      "coalesce_rate": coalesced / requests,
                      "engine_solves": requests - coalesced, "errors": 0},
        "caches": {"equilibria": {"size": 3, "maxsize": 2048, "hits": hits,
                                  "misses": misses,
                                  "hit_rate": hits / (hits + misses),
                                  "current_bytes": 100, "max_bytes": None,
                                  "ttl_seconds": None,
                                  "evictions_maxsize": 0,
                                  "evictions_bytes": 0, "expirations": 0,
                                  "rejected_oversize": 0}},
    }


class TestMergeWorkerStats:
    def test_counters_sum_and_config_comes_from_first_worker(self):
        merged = merge_worker_stats([
            _worker_payload(0, requests=10, coalesced=4, hits=6, misses=2),
            _worker_payload(1, requests=30, coalesced=12, hits=18,
                            misses=6),
        ])
        assert merged["worker_count"] == 2
        assert merged["unreachable_workers"] == 0
        assert merged["server"]["solve_requests"] == 40
        assert merged["server"]["idle_timeouts"] == 2
        scheduler = merged["scheduler"]
        assert scheduler["requests"] == 40
        assert scheduler["coalesced"] == 16
        assert scheduler["coalesce_rate"] == pytest.approx(16 / 40)
        assert scheduler["window_seconds"] == 0.002  # config, not summed
        assert scheduler["naive"] is False
        equilibria = merged["caches"]["equilibria"]
        assert equilibria["hits"] == 24 and equilibria["misses"] == 8
        assert equilibria["hit_rate"] == pytest.approx(24 / 32)
        assert equilibria["maxsize"] == 2048  # config, not summed
        assert equilibria["size"] == 6  # entries are per-worker, so summed

    def test_workers_list_is_ordered_by_index(self):
        merged = merge_worker_stats([_worker_payload(2),
                                     _worker_payload(0),
                                     _worker_payload(1)])
        assert [w["worker"]["index"] for w in merged["workers"]] == [0, 1, 2]

    def test_unreachable_worker_is_reported_not_summed(self):
        merged = merge_worker_stats([
            _worker_payload(0, requests=10, coalesced=4),
            _worker_payload(1, unreachable=True),
        ])
        assert merged["worker_count"] == 2
        assert merged["unreachable_workers"] == 1
        assert merged["scheduler"]["requests"] == 10
        assert any(w.get("unreachable") for w in merged["workers"])


@pytest.fixture(scope="module")
def worker_group():
    """A real ``serve --workers 2`` subprocess on an ephemeral port."""
    root = Path(__file__).resolve().parent.parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "2",
         "--port", "0", "--idle-timeout", "30"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True, cwd=str(root))
    assert process.stdout is not None
    banner = process.stdout.readline()
    match = _BANNER.search(banner)
    if match is None:
        process.kill()
        raise RuntimeError(f"no serving banner: {banner!r}")
    yield match.group(1), int(match.group(2)), process
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)


async def _solve(host, port, payload):
    async with ServiceClient(host, port) as client:
        return await client.solve(payload)


class TestWorkerGroup:
    @pytest.mark.parametrize("count,seed,nus", [
        (60, 0, (50.0, 100.0)),
        (60, 7, (25.0, 75.0, 125.0)),
        (150, 3, (40.0,)),
    ])
    def test_served_series_bit_identical_for_any_worker(self, worker_group,
                                                        count, seed, nus):
        host, port, _ = worker_group
        payload = {"population": {"count": count, "seed": seed},
                   "mechanism": "maxmin", "nus": list(nus)}
        # New connections each round, so the kernel is free to spread them
        # across both workers; every answer must still be bit-identical to
        # the direct solve.
        responses = [asyncio.run(_solve(host, port, payload))
                     for _ in range(4)]
        direct = solve_rate_equilibria(paper_population(count=count,
                                                        seed=seed),
                                       nus, MaxMinFairAllocation())
        for status, body in responses:
            assert status == 200
            assert body["series"]["aggregate_rates"] == (
                direct.aggregate_rates.tolist())
            assert body["series"]["utilizations"] == (
                direct.utilizations.tolist())
            assert body["series"]["consumer_surpluses"] == (
                direct.consumer_surpluses().tolist())

    def test_merged_stats_covers_both_workers(self, worker_group):
        host, port, _ = worker_group

        async def fetch():
            async with ServiceClient(host, port) as client:
                _, merged = await client.stats()
                _, local = await client.request("GET",
                                                "/stats?scope=local")
            return merged, local

        merged, local = asyncio.run(fetch())
        assert merged["worker_count"] == 2
        assert merged["unreachable_workers"] == 0
        indices = sorted(w["worker"]["index"] for w in merged["workers"])
        assert indices == [0, 1]
        pids = {w["worker"]["pid"] for w in merged["workers"]}
        assert len(pids) == 2  # genuinely distinct processes
        # Aggregate view keeps the single-process shape on top.
        assert "caches" in merged and "scheduler" in merged
        assert merged["server"]["solve_requests"] >= 1
        # scope=local answers with exactly one worker's payload.
        assert "workers" not in local
        assert local["worker"]["index"] in (0, 1)

    def test_sigterm_drains_both_workers_to_exit_zero(self, worker_group):
        host, port, process = worker_group

        # Park an idle keep-alive connection; the drain must not wait on it.
        async def park_and_terminate():
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            process.send_signal(signal.SIGTERM)
            loop = asyncio.get_running_loop()
            exit_code = await loop.run_in_executor(
                None, lambda: process.wait(timeout=30))
            writer.close()
            return exit_code

        assert asyncio.run(park_and_terminate()) == 0


def test_single_worker_cli_rejects_bad_flags():
    from repro.cli import main
    assert main(["serve", "--workers", "0"]) == 2
    assert main(["serve", "--idle-timeout", "-1"]) == 2
