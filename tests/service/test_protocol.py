"""Wire-schema tests: strict parsing, population resolution, response shape."""

from __future__ import annotations

import json

import pytest

from repro.backends.config import SolverConfig
from repro.service.protocol import (
    MAX_GRID_POINTS,
    MECHANISM_NAMES,
    RequestError,
    build_solve_response,
    error_payload,
    parse_solve_request,
)
from repro.simulation.batch import solve_rate_equilibria
from repro.workloads.populations import DEFAULT_SEED, paper_population

SPEC = {"count": 120, "seed": 11, "utility_model": "beta_correlated"}


def request_payload(**overrides):
    payload = {"population": dict(SPEC), "mechanism": "maxmin",
               "nus": [50.0, 100.0]}
    payload.update(overrides)
    return payload


class TestParseSolveRequest:
    def test_minimal_request_fills_defaults(self):
        request = parse_solve_request({"population": {}, "nus": [10]})
        assert request.mechanism_name == "maxmin"
        assert request.nus == (10.0,)
        assert request.price is None
        assert request.detail is False
        assert len(request.population) == 1000
        expected = paper_population(count=1000, seed=DEFAULT_SEED)
        assert request.population.fingerprint() == expected.fingerprint()
        assert request.config == SolverConfig()

    def test_population_spec_resolves_to_library_population(self):
        request = parse_solve_request(request_payload())
        expected = paper_population(count=120, seed=11)
        assert request.population.fingerprint() == expected.fingerprint()

    def test_population_cached_across_requests(self):
        first = parse_solve_request(request_payload())
        second = parse_solve_request(request_payload())
        assert first.population is second.population

    def test_fingerprint_addresses_resident_population(self):
        first = parse_solve_request(request_payload())
        fingerprint = first.population.fingerprint().hex()
        follow_up = parse_solve_request(
            {"fingerprint": fingerprint, "nus": [25.0]})
        assert follow_up.population is first.population

    def test_unknown_fingerprint_is_404(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request({"fingerprint": "ff" * 16, "nus": [1.0]})
        assert excinfo.value.code == "unknown_fingerprint"
        assert excinfo.value.status == 404

    def test_spec_and_fingerprint_together_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(fingerprint="ab" * 16))
        assert excinfo.value.code == "bad_request"

    def test_neither_spec_nor_fingerprint_rejected(self):
        with pytest.raises(RequestError):
            parse_solve_request({"nus": [1.0]})

    def test_unknown_request_field_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(extra=1))
        assert excinfo.value.code == "unknown_field"
        assert "extra" in excinfo.value.message

    def test_unknown_population_field_rejected(self):
        payload = request_payload()
        payload["population"]["sigma"] = 2.0
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(payload)
        assert excinfo.value.code == "unknown_field"

    @pytest.mark.parametrize("nus", [
        [], "50", [float("nan")], [float("inf")], [-1.0], [True],
        ["50.0"], list(range(MAX_GRID_POINTS + 1)),
    ])
    def test_bad_grids_rejected(self, nus):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(nus=nus))
        assert excinfo.value.code == "bad_grid"

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(mechanism="lottery"))
        assert excinfo.value.code == "bad_mechanism"
        for name in MECHANISM_NAMES:
            assert name in excinfo.value.message

    @pytest.mark.parametrize("price", [float("nan"), -2.0, "1.5", True])
    def test_bad_price_rejected(self, price):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(price=price))
        assert excinfo.value.code == "bad_price"

    def test_config_overrides_merge_over_defaults(self):
        request = parse_solve_request(request_payload(
            config={"backend": "reference", "surplus_tolerance": 1e-8}))
        assert request.config.surplus_tolerance == 1e-8
        assert request.config.bisection_tolerance == 1e-13

    def test_bad_config_field_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(config={"workers": 4}))
        assert excinfo.value.code == "unknown_field"

    def test_invalid_config_value_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(
                config={"backend": "fortran"}))
        assert excinfo.value.code == "bad_config"

    @pytest.mark.parametrize("count", [0, -5, True, 2.5, 10**9])
    def test_bad_population_count_rejected(self, count):
        payload = request_payload()
        payload["population"]["count"] = count
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(payload)
        assert excinfo.value.code == "bad_population"


class TestBuildSolveResponse:
    def test_response_mirrors_direct_solve(self):
        request = parse_solve_request(request_payload(price=1.5))
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)
        response = build_solve_response(request, batch, coalesced=True,
                                        batch_size=3)
        assert response["schema"] == 1
        assert response["fingerprint"] == (
            request.population.fingerprint().hex())
        assert response["mechanism"] == "maxmin"
        assert response["nus"] == [50.0, 100.0]
        series = response["series"]
        assert series["aggregate_rates"] == batch.aggregate_rates.tolist()
        assert series["utilizations"] == batch.utilizations.tolist()
        assert series["consumer_surpluses"] == (
            batch.consumer_surpluses().tolist())
        assert series["premium_revenues"] == (
            batch.premium_revenues(1.5).tolist())
        assert response["served"] == {"coalesced": True, "batch_size": 3}
        # Per-provider matrices are opt-in (~200 KB at the paper's scale).
        assert "providers" not in response

    def test_detail_request_ships_per_provider_matrices(self):
        request = parse_solve_request(request_payload(detail=True))
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)
        response = build_solve_response(request, batch, coalesced=False,
                                        batch_size=1)
        providers = response["providers"]
        assert providers["thetas"] == batch.thetas.tolist()
        assert providers["demands"] == batch.demands.tolist()
        assert providers["per_capita_rates"] == (
            batch.per_capita_rates.tolist())

    def test_non_boolean_detail_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            parse_solve_request(request_payload(detail="yes"))
        assert excinfo.value.code == "bad_request"

    def test_solver_provenance_echoed(self):
        request = parse_solve_request(request_payload())
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)
        response = build_solve_response(request, batch, coalesced=False,
                                        batch_size=1)
        solver = response["solver"]
        assert solver["backend"] == request.config.effective_backend()
        assert solver["backend_requested"] == request.config.backend
        assert tuple(solver["cache_key"]) == request.config.cache_key()

    def test_no_premium_series_without_price(self):
        request = parse_solve_request(request_payload())
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)
        response = build_solve_response(request, batch, coalesced=False,
                                        batch_size=1)
        assert "premium_revenues" not in response["series"]

    def test_response_is_json_serializable(self):
        request = parse_solve_request(request_payload(price=2.0))
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)
        response = build_solve_response(request, batch, coalesced=False,
                                        batch_size=1)
        round_tripped = json.loads(json.dumps(response, sort_keys=True))
        assert round_tripped == response


def test_error_payload_shape():
    assert error_payload("bad_grid", "boom") == {
        "schema": 1, "error": {"code": "bad_grid", "message": "boom"}}
