"""End-to-end HTTP tests: an in-process server on an ephemeral port.

These pin the outward contract: served bytes match direct solves, identical
concurrent requests coalesce to one engine solve, malformed requests get a
structured 4xx while the server keeps serving, and /stats exposes the
cache + scheduler + server counters.
"""

from __future__ import annotations

import asyncio
import json

from repro.network.allocation import MaxMinFairAllocation
from repro.service.client import ServiceClient
from repro.service.server import EquilibriumServer
from repro.simulation.batch import solve_rate_equilibria
from repro.workloads.populations import paper_population

POPULATION_SPEC = {"count": 80, "seed": 3}
BASE_REQUEST = {"population": POPULATION_SPEC, "mechanism": "maxmin",
                "nus": [50.0, 100.0]}


def run(coro):
    return asyncio.run(coro)


async def with_server(body, **kwargs):
    """Run ``body(host, port, server)`` against a live ephemeral server."""
    kwargs.setdefault("window_seconds", 0.01)
    server = EquilibriumServer(port=0, **kwargs)
    await server.start()
    serve_task = asyncio.create_task(server.serve_until_closed())
    host, port = server.address
    try:
        return await body(host, port, server)
    finally:
        await server.close()
        await serve_task


async def solve_once(host, port, payload):
    async with ServiceClient(host, port) as client:
        return await client.solve(payload)


class TestSolveEndpoint:
    def test_response_bit_identical_to_direct_solve(self):
        payload = dict(BASE_REQUEST, price=1.5, detail=True)

        async def body(host, port, server):
            return await solve_once(host, port, payload)

        status, response = run(with_server(body))
        assert status == 200
        population = paper_population(**POPULATION_SPEC)
        direct = solve_rate_equilibria(population, (50.0, 100.0),
                                       MaxMinFairAllocation())
        assert response["fingerprint"] == population.fingerprint().hex()
        series = response["series"]
        assert series["aggregate_rates"] == direct.aggregate_rates.tolist()
        assert series["utilizations"] == direct.utilizations.tolist()
        assert series["consumer_surpluses"] == (
            direct.consumer_surpluses().tolist())
        assert series["premium_revenues"] == (
            direct.premium_revenues(1.5).tolist())
        providers = response["providers"]
        assert providers["thetas"] == direct.thetas.tolist()
        assert providers["demands"] == direct.demands.tolist()
        assert providers["per_capita_rates"] == (
            direct.per_capita_rates.tolist())
        solver = response["solver"]
        assert solver["backend"] == "reference"
        assert solver["cache_key"][0] == "solver"

    def test_identical_concurrent_requests_coalesce_to_one_solve(self):
        async def body(host, port, server):
            responses = await asyncio.gather(*[
                solve_once(host, port, BASE_REQUEST) for _ in range(8)])
            return responses, server.scheduler.stats()

        responses, stats = run(with_server(body))
        assert all(status == 200 for status, _ in responses)
        assert stats["engine_solves"] == 1
        assert stats["coalesced"] == 7
        bodies = [body for _, body in responses]
        assert sorted(body["served"]["coalesced"] for body in bodies) == (
            [False] + [True] * 7)
        # Every client got byte-identical series.
        canonical = json.dumps(bodies[0]["series"], sort_keys=True)
        assert all(json.dumps(body["series"], sort_keys=True) == canonical
                   for body in bodies)

    def test_union_fusion_returns_each_client_its_own_grid(self):
        grids = [[50.0, 100.0], [100.0, 150.0], [75.0]]

        async def body(host, port, server):
            responses = await asyncio.gather(*[
                solve_once(host, port, dict(BASE_REQUEST, nus=grid))
                for grid in grids])
            return responses, server.scheduler.stats()

        responses, stats = run(with_server(body))
        assert stats["engine_solves"] == 1
        population = paper_population(**POPULATION_SPEC)
        for grid, (status, body) in zip(grids, responses):
            assert status == 200
            assert body["nus"] == grid
            assert body["served"]["batch_size"] == len(grids)
            direct = solve_rate_equilibria(population, grid,
                                           MaxMinFairAllocation())
            assert body["series"]["aggregate_rates"] == (
                direct.aggregate_rates.tolist())
            assert body["series"]["consumer_surpluses"] == (
                direct.consumer_surpluses().tolist())

    def test_fingerprint_follow_up_hits_resident_population(self):
        async def body(host, port, server):
            _, first = await solve_once(host, port, BASE_REQUEST)
            return await solve_once(host, port, {
                "fingerprint": first["fingerprint"], "nus": [60.0]})

        status, response = run(with_server(body))
        assert status == 200
        assert response["nus"] == [60.0]


class TestErrorHandling:
    def test_malformed_requests_get_4xx_and_server_stays_up(self):
        async def body(host, port, server):
            async with ServiceClient(host, port) as client:
                bad_json = await client.request("POST", "/solve", b"{nope")
                bad_grid = await client.solve(
                    dict(BASE_REQUEST, nus=[-1.0]))
                unknown_field = await client.solve(
                    dict(BASE_REQUEST, shard=3))
                unknown_fp = await client.solve(
                    {"fingerprint": "00" * 16, "nus": [1.0]})
                not_found = await client.request("GET", "/missing")
                bad_method = await client.request("PUT", "/solve")
                # The same connection still serves a valid request.
                recovered = await client.solve(BASE_REQUEST)
            return (bad_json, bad_grid, unknown_field, unknown_fp,
                    not_found, bad_method, recovered, server.stats())

        (bad_json, bad_grid, unknown_field, unknown_fp, not_found,
         bad_method, recovered, stats) = run(with_server(body))
        assert (bad_json[0], bad_json[1]["error"]["code"]) == (
            400, "bad_json")
        assert (bad_grid[0], bad_grid[1]["error"]["code"]) == (
            400, "bad_grid")
        assert (unknown_field[0], unknown_field[1]["error"]["code"]) == (
            400, "unknown_field")
        assert (unknown_fp[0], unknown_fp[1]["error"]["code"]) == (
            404, "unknown_fingerprint")
        assert not_found[0] == 404
        assert bad_method[0] == 405
        assert recovered[0] == 200
        assert stats["server"]["request_errors"] == 4

    def test_http_violation_closes_connection_with_400(self):
        async def body(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"garbage\r\n\r\n")
            await writer.drain()
            raw = await reader.read(4096)
            writer.close()
            await writer.wait_closed()
            # A fresh connection still works.
            status, _ = await solve_once(host, port, BASE_REQUEST)
            return raw, status

        raw, status = run(with_server(body))
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"bad_http" in raw
        assert status == 200


async def raw_request(reader, writer, *, version="HTTP/1.1", headers=()):
    """One ``GET /healthz`` on an open socket; returns (head, body, eof).

    ``eof`` is True when the server closed the connection afterwards.
    """
    lines = [f"GET /healthz {version}", "Host: t"]
    lines += list(headers)
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length)
    eof = (await reader.read(1)) == b"" if b"close" in head.lower() else False
    return head, body, eof


class TestConnectionHygiene:
    """The RFC 9112 keep-alive semantics fixed in this change."""

    def test_connection_close_is_case_insensitive(self):
        # The pre-fix comparison was exact ("close"), so "Close"/"CLOSE"
        # left the connection open against the client's explicit wish.
        async def body(host, port, server):
            results = []
            for token in ("close", "Close", "CLOSE"):
                reader, writer = await asyncio.open_connection(host, port)
                head, _, eof = await raw_request(
                    reader, writer, headers=(f"Connection: {token}",))
                results.append((token, b"Connection: close" in head, eof))
                writer.close()
            return results

        for token, advertised_close, closed in run(with_server(body)):
            assert advertised_close, f"Connection: {token} not honoured"
            assert closed, f"Connection: {token} left the socket open"

    def test_http_10_defaults_to_close(self):
        async def body(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            head, _, eof = await raw_request(reader, writer,
                                             version="HTTP/1.0")
            writer.close()
            return head, eof

        head, eof = run(with_server(body))
        assert b"Connection: close" in head
        assert eof

    def test_http_10_keep_alive_header_persists_the_connection(self):
        async def body(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            first, _, _ = await raw_request(
                reader, writer, version="HTTP/1.0",
                headers=("Connection: keep-alive",))
            # Same socket serves a second request.
            second, _, _ = await raw_request(
                reader, writer, version="HTTP/1.0",
                headers=("Connection: keep-alive",))
            writer.close()
            return first, second

        first, second = run(with_server(body))
        assert b"Connection: keep-alive" in first
        assert b"Connection: keep-alive" in second

    def test_http_11_defaults_to_keep_alive(self):
        async def body(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            first, _, _ = await raw_request(reader, writer)
            second, _, _ = await raw_request(reader, writer)
            writer.close()
            return first, second

        first, second = run(with_server(body))
        assert b"Connection: keep-alive" in first
        assert b"Connection: keep-alive" in second

    def test_idle_keep_alive_connection_times_out(self):
        # Pre-fix, an idle keep-alive client pinned its handler task
        # forever; now the server closes it after idle_timeout.
        async def body(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            await raw_request(reader, writer)  # one served request
            closed = await asyncio.wait_for(reader.read(1), timeout=5.0)
            writer.close()
            return closed, server.stats()["server"]["idle_timeouts"]

        closed, timeouts = run(with_server(body, idle_timeout=0.2))
        assert closed == b""  # server closed the idle socket
        assert timeouts >= 1

    def test_shutdown_completes_with_idle_client_attached(self):
        # Pre-fix, close() hung until every idle keep-alive client went
        # away on its own; now the idle reader wakes on the closing event.
        async def scenario():
            server = EquilibriumServer(port=0, window_seconds=0.005,
                                       idle_timeout=30.0)
            await server.start()
            serve_task = asyncio.create_task(server.serve_until_closed())
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            await raw_request(reader, writer)  # park an idle keep-alive
            await asyncio.wait_for(server.close(), timeout=5.0)
            await asyncio.wait_for(serve_task, timeout=5.0)
            assert await reader.read(1) == b""
            writer.close()
            return True

        assert run(scenario())


class TestStatsAndLifecycle:
    def test_stats_exposes_caches_scheduler_and_server_counters(self):
        async def body(host, port, server):
            await solve_once(host, port, BASE_REQUEST)
            async with ServiceClient(host, port) as client:
                health = await client.healthz()
                stats = await client.stats()
            return health, stats

        (health_status, health), (stats_status, stats) = run(
            with_server(body))
        assert (health_status, health["status"]) == (200, "ok")
        assert stats_status == 200
        assert stats["schema"] == 1
        assert "service_populations" in stats["caches"]
        assert "equilibria" in stats["caches"]
        assert stats["scheduler"]["requests"] >= 1
        assert stats["server"]["solve_requests"] >= 1

    def test_max_requests_shuts_the_server_down_cleanly(self):
        async def body(host, port, server):
            statuses = []
            for _ in range(2):
                status, _ = await solve_once(host, port, BASE_REQUEST)
                statuses.append(status)
            return statuses

        async def scenario():
            server = EquilibriumServer(port=0, window_seconds=0.005,
                                       max_requests=2)
            await server.start()
            serve_task = asyncio.create_task(server.serve_until_closed())
            host, port = server.address
            statuses = await body(host, port, server)
            await asyncio.wait_for(serve_task, timeout=5.0)
            return statuses

        assert run(scenario()) == [200, 200]

    def test_naive_server_reports_no_coalescing(self):
        async def body(host, port, server):
            await asyncio.gather(*[
                solve_once(host, port, BASE_REQUEST) for _ in range(4)])
            return server.scheduler.stats()

        stats = run(with_server(body, naive=True))
        assert stats["naive"] is True
        assert stats["engine_solves"] == 4
        assert stats["coalesced"] == 0
