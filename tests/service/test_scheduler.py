"""Micro-batching and coalescing semantics of the scheduler.

The acceptance contract lives here: identical concurrent requests cost one
engine solve, compatible overlapping grids fuse into one union solve with
exact per-request fan-out, and every served series is bit-identical to a
direct ``solve_rate_equilibria`` call (property-tested under the reference
backend, whose multi-target bisection treats grid points independently).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.config import SolverConfig
from repro.network.allocation import (
    MaxMinFairAllocation,
    ProportionalToDemandAllocation,
)
from repro.service.scheduler import MicroBatchScheduler
from repro.simulation.batch import solve_rate_equilibria
from repro.workloads.populations import paper_population

POPULATION = paper_population(count=60, seed=13)
MAXMIN = MaxMinFairAllocation()
CONFIG = SolverConfig()


def run(coro):
    return asyncio.run(coro)


async def with_scheduler(body, **kwargs):
    scheduler = MicroBatchScheduler(**kwargs)
    try:
        return await body(scheduler)
    finally:
        await scheduler.aclose()


def assert_batches_equal(served, direct):
    """Bit-identity: every served array equals the direct solve's exactly."""
    np.testing.assert_array_equal(served.nus, direct.nus)
    np.testing.assert_array_equal(served.thetas, direct.thetas)
    np.testing.assert_array_equal(served.demands, direct.demands)
    np.testing.assert_array_equal(served.per_capita_rates,
                                  direct.per_capita_rates)
    np.testing.assert_array_equal(served.consumer_surpluses(),
                                  direct.consumer_surpluses())


class TestCoalescing:
    def test_identical_concurrent_requests_cost_one_solve(self):
        async def body(scheduler):
            nus = (50.0, 100.0)
            outcomes = await asyncio.gather(*[
                scheduler.solve(POPULATION, nus, MAXMIN, CONFIG)
                for _ in range(10)])
            return outcomes, scheduler.stats()

        outcomes, stats = run(with_scheduler(body, window_seconds=0.01))
        assert stats["engine_solves"] == 1
        assert stats["requests"] == 10
        assert stats["coalesced"] == 9
        assert stats["coalesce_rate"] == pytest.approx(0.9)
        coalesced_flags = sorted(flag for _, _, flag in outcomes)
        assert coalesced_flags == [False] + [True] * 9
        direct = solve_rate_equilibria(POPULATION, (50.0, 100.0), MAXMIN,
                                       CONFIG)
        for batch, batch_size, _ in outcomes:
            assert batch_size == 1  # one pending entry: the leader
            assert_batches_equal(batch, direct)

    def test_different_grids_are_not_coalesced(self):
        async def body(scheduler):
            await asyncio.gather(
                scheduler.solve(POPULATION, (50.0,), MAXMIN, CONFIG),
                scheduler.solve(POPULATION, (60.0,), MAXMIN, CONFIG))
            return scheduler.stats()

        stats = run(with_scheduler(body, window_seconds=0.01))
        assert stats["coalesced"] == 0
        assert stats["engine_solves"] == 1  # fused instead: one union solve


class TestUnionGridFusion:
    def test_each_client_gets_exactly_its_grid(self):
        grids = [(50.0, 100.0), (100.0, 150.0), (75.0,),
                 (150.0, 50.0, 125.0)]

        async def body(scheduler):
            outcomes = await asyncio.gather(*[
                scheduler.solve(POPULATION, grid, MAXMIN, CONFIG)
                for grid in grids])
            return outcomes, scheduler.stats()

        outcomes, stats = run(with_scheduler(body, window_seconds=0.02))
        assert stats["engine_solves"] == 1
        assert stats["batches"] == 1
        assert stats["fused_requests"] == len(grids)
        assert stats["union_points"] == 5  # |{50, 75, 100, 125, 150}|
        for grid, (batch, batch_size, coalesced) in zip(grids, outcomes):
            assert batch_size == len(grids)
            assert not coalesced
            assert tuple(batch.nus.tolist()) == grid  # request order kept
            assert_batches_equal(
                batch, solve_rate_equilibria(POPULATION, grid, MAXMIN,
                                             CONFIG))

    def test_fanout_rows_do_not_alias_each_other(self):
        async def body(scheduler):
            return await asyncio.gather(
                scheduler.solve(POPULATION, (50.0, 100.0), MAXMIN, CONFIG),
                scheduler.solve(POPULATION, (100.0, 50.0), MAXMIN, CONFIG))

        (first, _, _), (second, _, _) = run(
            with_scheduler(body, window_seconds=0.02))
        assert not np.shares_memory(first.thetas, second.thetas)
        np.testing.assert_array_equal(first.thetas, second.thetas[::-1])

    def test_incompatible_requests_solve_separately(self):
        async def body(scheduler):
            await asyncio.gather(
                scheduler.solve(POPULATION, (50.0,), MAXMIN, CONFIG),
                scheduler.solve(POPULATION, (50.0,),
                                ProportionalToDemandAllocation(), CONFIG),
                scheduler.solve(
                    POPULATION, (50.0,), MAXMIN,
                    SolverConfig(bisection_tolerance=1e-12)))
            return scheduler.stats()

        stats = run(with_scheduler(body, window_seconds=0.02))
        assert stats["engine_solves"] == 3
        assert stats["coalesced"] == 0
        assert stats["fused_requests"] == 0


class TestNaiveBaseline:
    def test_naive_mode_never_batches_or_coalesces(self):
        async def body(scheduler):
            outcomes = await asyncio.gather(*[
                scheduler.solve(POPULATION, (50.0, 100.0), MAXMIN, CONFIG)
                for _ in range(6)])
            return outcomes, scheduler.stats()

        outcomes, stats = run(
            with_scheduler(body, naive=True, window_seconds=0.01))
        assert stats["engine_solves"] == 6
        assert stats["coalesced"] == 0
        assert stats["batches"] == 0
        direct = solve_rate_equilibria(POPULATION, (50.0, 100.0), MAXMIN,
                                       CONFIG)
        for batch, batch_size, coalesced in outcomes:
            assert (batch_size, coalesced) == (1, False)
            assert_batches_equal(batch, direct)


class TestFailureAndLifecycle:
    def test_solver_failure_propagates_to_every_waiter(self, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("bisection diverged")

        monkeypatch.setattr("repro.service.scheduler.warm_equilibrium_cache",
                            explode)

        async def body(scheduler):
            results = await asyncio.gather(
                *[scheduler.solve(POPULATION, (50.0,), MAXMIN, CONFIG)
                  for _ in range(4)],
                return_exceptions=True)
            return results, scheduler.stats()

        results, stats = run(with_scheduler(body, window_seconds=0.01))
        assert len(results) == 4
        assert all(isinstance(result, RuntimeError) for result in results)
        assert stats["errors"] == 1  # one failed engine solve, four waiters

    def test_drain_flushes_pending_without_waiting_for_window(self):
        async def body(scheduler):
            task = asyncio.create_task(
                scheduler.solve(POPULATION, (50.0,), MAXMIN, CONFIG))
            await asyncio.sleep(0)  # let the request register
            await scheduler.drain()
            assert task.done()
            return scheduler.stats()

        stats = run(with_scheduler(body, window_seconds=30.0))
        assert stats["engine_solves"] == 1

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(-0.001)
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_solver_threads=0)


@settings(max_examples=15, deadline=None)
@given(
    grids=st.lists(
        st.lists(st.floats(min_value=1.0, max_value=400.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=4, unique=True),
        min_size=1, max_size=4),
    mechanism_index=st.integers(min_value=0, max_value=1),
)
def test_property_served_series_bit_identical_to_direct_solve(
        grids, mechanism_index):
    """Any mix of concurrently fused grids serves bit-identical numbers."""
    mechanism = (MAXMIN, ProportionalToDemandAllocation())[mechanism_index]
    tuple_grids = [tuple(grid) for grid in grids]

    async def body(scheduler):
        return await asyncio.gather(*[
            scheduler.solve(POPULATION, grid, mechanism, CONFIG)
            for grid in tuple_grids])

    outcomes = run(with_scheduler(body, window_seconds=0.02))
    for grid, (batch, _, _) in zip(tuple_grids, outcomes):
        direct = solve_rate_equilibria(POPULATION, grid, mechanism, CONFIG)
        assert tuple(batch.nus.tolist()) == grid
        assert_batches_equal(batch, direct)
