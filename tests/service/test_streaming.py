"""Streamed ``detail: true`` responses: framing, bit-identity, memory.

The contract under test: an HTTP/1.1 ``detail: true`` response is sent
with ``Transfer-Encoding: chunked``, its decoded bytes are *identical* to
the buffered ``json.dumps(..., sort_keys=True)`` body, the generator never
materialises the full body (peak serialization memory stays far below the
body size), and HTTP/1.0 clients — which cannot parse chunked framing —
still get a correct buffered response.
"""

from __future__ import annotations

import asyncio
import json
import tracemalloc

from repro.service.client import ServiceClient
from repro.service.protocol import (
    build_solve_response,
    parse_solve_request,
    solve_response_chunks,
)
from repro.service.server import EquilibriumServer
from repro.simulation.batch import solve_rate_equilibria

DETAIL_REQUEST = {"population": {"count": 120, "seed": 5},
                  "mechanism": "maxmin", "nus": [40.0, 90.0, 140.0],
                  "detail": True}


def run(coro):
    return asyncio.run(coro)


async def with_server(body, **kwargs):
    kwargs.setdefault("window_seconds", 0.005)
    server = EquilibriumServer(port=0, **kwargs)
    await server.start()
    serve_task = asyncio.create_task(server.serve_until_closed())
    host, port = server.address
    try:
        return await body(host, port, server)
    finally:
        await server.close()
        await serve_task


def solved_request():
    request = parse_solve_request(dict(DETAIL_REQUEST))
    batch = solve_rate_equilibria(request.population, request.nus,
                                  request.mechanism, request.config)
    return request, batch


class TestChunkGenerator:
    def test_chunks_concatenate_to_canonical_buffered_body(self):
        request, batch = solved_request()
        buffered = build_solve_response(request, batch, coalesced=True,
                                        batch_size=3)
        streamed = b"".join(solve_response_chunks(request, batch,
                                                  coalesced=True,
                                                  batch_size=3))
        assert streamed == json.dumps(buffered,
                                      sort_keys=True).encode("utf-8")

    def test_byte_identity_at_1000_cp_workload(self):
        # Regression: at this scale, computing per-provider rows as
        # (alphas * demands) * thetas instead of the property's
        # alphas * (demands * thetas) rounds differently for hundreds of
        # matrix values, so the streamed body would diverge from the
        # buffered one.  The 120-CP fixture above happens not to expose it.
        payload = {"population": {"count": 1000, "seed": 0},
                   "mechanism": "maxmin",
                   "nus": [float(nu) for nu in range(40, 200, 40)],
                   "detail": True}
        request = parse_solve_request(payload)
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)
        buffered = build_solve_response(request, batch, coalesced=False,
                                        batch_size=1)
        streamed = b"".join(solve_response_chunks(request, batch,
                                                  coalesced=False,
                                                  batch_size=1))
        assert streamed == json.dumps(buffered,
                                      sort_keys=True).encode("utf-8")

    def test_streaming_never_materialises_the_full_body(self):
        # 30k CPs x 8 grid points: the buffered path materialises all 24
        # provider rows as Python lists plus the ~16 MB body string, while
        # the streamed path holds one ~650 kB row (plus json's transient
        # encoder state) at a time.  Peak memory must reflect that.
        payload = {"population": {"count": 30_000, "seed": 1},
                   "mechanism": "maxmin",
                   "nus": [float(nu) for nu in range(40, 200, 20)],
                   "detail": True}
        request = parse_solve_request(payload)
        batch = solve_rate_equilibria(request.population, request.nus,
                                      request.mechanism, request.config)

        tracemalloc.start()
        for chunk in solve_response_chunks(request, batch, coalesced=False,
                                           batch_size=1):
            pass
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        json.dumps(build_solve_response(request, batch, coalesced=False,
                                        batch_size=1), sort_keys=True)
        _, buffered_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert streamed_peak < buffered_peak / 2, (
            f"streamed serialization peaked at {streamed_peak} bytes vs "
            f"{buffered_peak} buffered — it is buffering, not streaming")


class TestStreamedResponses:
    def test_detail_response_is_chunked_and_decodes_identically(self):
        async def body(host, port, server):
            raw_body = json.dumps(DETAIL_REQUEST,
                                  sort_keys=True).encode("utf-8")
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /solve HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: %d\r\n\r\n" % len(raw_body) + raw_body)
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            pieces = []
            while True:
                size = int((await reader.readline()).split(b";")[0], 16)
                if size == 0:
                    await reader.readline()
                    break
                pieces.append(await reader.readexactly(size))
                assert await reader.readexactly(2) == b"\r\n"
            writer.close()
            return head, b"".join(pieces)

        head, raw = run(with_server(body))
        assert b"Transfer-Encoding: chunked" in head
        assert b"Content-Length" not in head
        request, batch = solved_request()
        buffered = build_solve_response(request, batch, coalesced=False,
                                        batch_size=1)
        assert raw == json.dumps(buffered, sort_keys=True).encode("utf-8")

    def test_client_transparently_decodes_chunked_responses(self):
        async def body(host, port, server):
            async with ServiceClient(host, port) as client:
                status, first = await client.solve(DETAIL_REQUEST)
                # The keep-alive connection survives the chunked response.
                status2, second = await client.solve(DETAIL_REQUEST)
            return status, first, status2, second

        status, first, status2, second = run(with_server(body))
        assert status == 200 and status2 == 200
        assert sorted(first["providers"]) == ["demands", "per_capita_rates",
                                              "thetas"]
        assert first["providers"] == second["providers"]
        request, batch = solved_request()
        assert first["providers"]["demands"] == batch.demands.tolist()
        assert first["providers"]["per_capita_rates"] == (
            batch.per_capita_rates.tolist())

    def test_http_10_detail_gets_a_buffered_body(self):
        async def body(host, port, server):
            raw_body = json.dumps(DETAIL_REQUEST,
                                  sort_keys=True).encode("utf-8")
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /solve HTTP/1.0\r\n"
                b"Content-Length: %d\r\n\r\n" % len(raw_body) + raw_body)
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            raw = await reader.readexactly(length)
            writer.close()
            return head, raw

        head, raw = run(with_server(body))
        assert b"Transfer-Encoding" not in head
        payload = json.loads(raw.decode("utf-8"))
        request, batch = solved_request()
        assert payload["providers"]["demands"] == batch.demands.tolist()
