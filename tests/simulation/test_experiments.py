"""Tests for the figure / theorem reproduction entry points.

These run the experiment functions on small populations and coarse grids so
the suite stays fast; the full paper-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.simulation import experiments
from repro.simulation.results import ExperimentResult
from repro.workloads.populations import PopulationSpec, random_population


@pytest.fixture(scope="module")
def population():
    return random_population(PopulationSpec(count=150), seed=13)


def small_nu(population, fraction):
    return fraction * population.unconstrained_per_capita_load


class TestFigure2:
    def test_structure_and_findings(self):
        result = experiments.figure2_demand_curves(betas=(0.1, 1.0, 5.0), points=41)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "FIG2"
        panel = result.panels[0]
        assert set(panel.names) == {"beta=0.1", "beta=1", "beta=5"}
        assert result.findings["beta5_halved_by_10pct_drop"] is True
        assert result.findings["low_beta_insensitive"] is True


class TestFigure3:
    def test_saturation_ordering(self):
        result = experiments.figure3_maxmin_throughput(
            capacities=[c * 100.0 for c in range(0, 61, 5)])
        assert result.experiment_id == "FIG3"
        assert result.findings["google_saturates_before_skype_before_netflix"] is True
        assert len(result.panels) == 3


class TestFigure4Family:
    def test_monopoly_price_experiment(self, population):
        load = population.unconstrained_per_capita_load
        result = experiments.figure4_monopoly_price(
            population=population, nus=(0.2 * load, 0.8 * load),
            prices=(0.0, 0.05, 0.2, 0.45, 0.7, 1.0))
        assert result.experiment_id == "FIG4"
        assert result.findings["psi_linear_small_c"] is True
        assert result.findings["monopoly_misaligned_when_capacity_abundant"] is True
        assert len(result.panels) == 2

    def test_appendix_variant_uses_independent_utilities(self, population):
        result = experiments.figure9_appendix_monopoly_price(
            nus=(5.0, 20.0), prices=(0.0, 0.3, 0.6, 1.0), count=80)
        assert result.experiment_id == "FIG9"
        assert result.parameters["utility_model"] == "independent"


class TestFigure5Family:
    def test_monopoly_capacity_experiment(self, population):
        load = population.unconstrained_per_capita_load
        result = experiments.figure5_monopoly_capacity(
            population=population, kappas=(0.3, 0.9), prices=(0.5,),
            nus=(0.1 * load, 0.5 * load, 1.6 * load))
        assert result.experiment_id == "FIG5"
        assert result.findings["psi_high_kappa_geq_low_kappa_at_large_nu"] is True
        assert result.findings["phi_low_kappa_geq_high_kappa_at_large_nu"] is True
        assert result.findings["psi_low_kappa_vanishes_at_large_nu"] is True
        assert result.findings["max_epsilon"] >= 0.0


class TestFigure7Family:
    def test_duopoly_price_experiment(self, population):
        load = population.unconstrained_per_capita_load
        result = experiments.figure7_duopoly_price(
            population=population, nus=(0.6 * load,),
            prices=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0))
        assert result.experiment_id == "FIG7"
        assert result.findings["phi_stays_positive_at_c1"] is True
        assert result.findings["psi_drops_to_zero_at_c1"] is True
        assert result.findings["share_collapses_after_peak"] is True


class TestFigure8Family:
    def test_duopoly_capacity_experiment(self, population):
        load = population.unconstrained_per_capita_load
        result = experiments.figure8_duopoly_capacity(
            population=population, kappas=(1.0,), prices=(0.3,),
            nus=(0.3 * load, 1.5 * load))
        assert result.experiment_id == "FIG8"
        assert result.findings["strategic_isp_capped_near_half_at_large_nu"] is True
        assert result.findings["phi_insensitive_to_strategy"] is True


class TestTheoremExperiments:
    def test_theorem4(self, population):
        result = experiments.theorem4_kappa_dominance(
            population=population, nus=(5.0, 20.0), prices=(0.3, 0.7),
            kappas=(0.5, 1.0))
        assert result.findings["kappa_one_dominates_everywhere"] is True

    def test_theorem5(self, population):
        load = population.unconstrained_per_capita_load
        result = experiments.theorem5_public_option_alignment(
            population=population, nu=0.6 * load, kappas=(1.0,),
            prices=(0.2, 0.5, 0.8))
        assert result.findings["theorem5_holds_within_tolerance"] is True

    def test_lemma4(self):
        result = experiments.lemma4_proportional_shares(
            nu=20.0, capacity_shares={"A": 0.6, "B": 0.4}, count=80)
        assert result.findings["lemma4_holds"] is True

    def test_theorem6(self):
        result = experiments.theorem6_alignment(
            nu=20.0, capacity_shares={"A": 0.5, "B": 0.5},
            kappas=(1.0,), prices=(0.3, 0.7), count=80)
        assert "surplus_shortfall" in result.findings
        assert result.findings["theorem6_bound_holds"] in (True, False)

    def test_regulation_regimes(self, population):
        load = population.unconstrained_per_capita_load
        result = experiments.regulation_regimes(
            population=population, nu=0.8 * load, kappas=(1.0,),
            prices=(0.3, 0.6))
        assert set(result.findings["surplus_by_regime"]) == {
            "unregulated_monopoly", "neutral_monopoly", "public_option",
            "oligopoly_competition"}
        assert result.findings["paper_ordering_holds"] is True
