"""Tests for the series / sweep / experiment result containers."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.simulation.results import ExperimentResult, Series, SweepResult


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelValidationError):
            Series(name="s", x=(1.0, 2.0), y=(1.0,))

    def test_basic_accessors(self):
        series = Series(name="s", x=(0.0, 1.0, 2.0), y=(3.0, 5.0, 4.0))
        assert len(series) == 3
        assert series.y_max == 5.0
        assert series.y_min == 3.0
        assert series.argmax_x() == 1.0
        assert series.value_at(2.0) == 4.0

    def test_value_at_missing_x(self):
        series = Series(name="s", x=(0.0,), y=(1.0,))
        with pytest.raises(KeyError):
            series.value_at(0.5)

    def test_values_coerced_to_float(self):
        series = Series(name="s", x=(0, 1), y=(2, 3))
        assert series.x == (0.0, 1.0)
        assert series.y == (2.0, 3.0)


class TestSweepResult:
    def test_add_and_get(self):
        sweep = SweepResult(title="t")
        sweep.add(Series(name="a", x=(0.0, 1.0), y=(1.0, 2.0)))
        sweep.add(Series(name="b", x=(0.0, 1.0), y=(3.0, 4.0)))
        assert sweep.names == ["a", "b"]
        assert sweep.get("a").y == (1.0, 2.0)
        with pytest.raises(KeyError):
            sweep.get("missing")

    def test_to_table(self):
        sweep = SweepResult(title="my sweep")
        sweep.add(Series(name="a", x=(0.0, 1.0), y=(1.0, 2.0), x_label="nu"))
        sweep.add(Series(name="b", x=(0.0, 1.0), y=(3.0, 4.0)))
        table = sweep.to_table()
        assert "my sweep" in table
        assert "a" in table and "b" in table
        assert "nu" in table

    def test_to_table_requires_shared_x(self):
        sweep = SweepResult(title="bad")
        sweep.add(Series(name="a", x=(0.0, 1.0), y=(1.0, 2.0)))
        sweep.add(Series(name="b", x=(0.0, 2.0), y=(3.0, 4.0)))
        with pytest.raises(ModelValidationError):
            sweep.to_table()

    def test_empty_table(self):
        assert "(empty)" in SweepResult(title="nothing").to_table()


class TestExperimentResult:
    def test_panels_and_findings(self):
        result = ExperimentResult(experiment_id="X", description="demo",
                                  parameters={"nu": 5})
        panel = SweepResult(title="p")
        panel.add(Series(name="a", x=(0.0,), y=(1.0,)))
        result.add_panel(panel)
        result.findings["holds"] = True
        assert result.panel("p") is panel
        with pytest.raises(KeyError):
            result.panel("missing")
        report = result.report()
        assert "X" in report and "demo" in report
        assert "holds" in report
        assert "nu=5" in report
