"""Tests for the monopoly / duopoly sweep helpers."""

from __future__ import annotations

import pytest

from repro.core.strategy import ISPStrategy
from repro.simulation.sweep import (
    duopoly_capacity_sweep,
    duopoly_price_sweep,
    monopoly_capacity_sweep,
    monopoly_price_sweep,
)


class TestMonopolySweeps:
    def test_price_sweep_panels(self, small_random_population):
        psi, phi = monopoly_price_sweep(small_random_population, nus=(1.0, 3.0),
                                        prices=(0.1, 0.5, 0.9), kappa=1.0)
        assert psi.names == ["nu=1", "nu=3"]
        assert phi.names == ["nu=1", "nu=3"]
        assert len(psi.get("nu=1")) == 3
        # With kappa=1 and the smallest price the premium class is saturated,
        # so Psi = c * nu.
        assert psi.get("nu=1").value_at(0.1) == pytest.approx(0.1 * 1.0, rel=1e-6)

    def test_capacity_sweep_panels(self, small_random_population):
        strategies = [ISPStrategy(0.5, 0.3), ISPStrategy(1.0, 0.3)]
        psi, phi = monopoly_capacity_sweep(small_random_population, strategies,
                                           nus=(1.0, 5.0, 20.0))
        assert len(psi.series) == 2
        assert len(phi.series) == 2
        # Theorem 4: kappa=1 earns at least as much as kappa=0.5 at equal price.
        for nu in (1.0, 5.0, 20.0):
            assert psi.get("kappa=1,c=0.3").value_at(nu) >= \
                psi.get("kappa=0.5,c=0.3").value_at(nu) - 1e-9


class TestDuopolySweeps:
    def test_price_sweep_panels(self, small_random_population):
        share, psi, phi = duopoly_price_sweep(small_random_population, nus=(3.0,),
                                              prices=(0.0, 0.4, 0.9), kappa=1.0)
        assert share.names == ["nu=3"]
        series = share.get("nu=3")
        assert all(0.0 <= value <= 1.0 for value in series.y)
        # The neutral price point splits the market evenly.
        assert series.value_at(0.0) == pytest.approx(0.5, abs=0.02)
        assert all(value > 0.0 for value in phi.get("nu=3").y)

    def test_capacity_sweep_panels(self, small_random_population):
        share, psi, phi = duopoly_capacity_sweep(
            small_random_population, [ISPStrategy(1.0, 0.3)], nus=(2.0, 10.0))
        assert share.names == ["kappa=1,c=0.3"]
        assert len(phi.get("kappa=1,c=0.3")) == 2
        assert phi.get("kappa=1,c=0.3").y[1] >= phi.get("kappa=1,c=0.3").y[0] - 1e-9
