"""Tests for Monte-Carlo replication helpers."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.simulation.montecarlo import (
    MonteCarloSummary,
    monte_carlo,
    summarise_metrics,
)


class TestMonteCarlo:
    def test_collects_metrics_across_seeds(self):
        def experiment(seed):
            return {"value": float(seed), "flag": seed % 2 == 0, "text": "skip"}

        summary = monte_carlo(experiment, seeds=[1, 2, 3, 4])
        value = summary.summary("value")
        assert value.count == 4
        assert value.mean == pytest.approx(2.5)
        assert value.minimum == 1.0
        assert value.maximum == 4.0
        assert value.spread == pytest.approx(3.0)
        assert summary.fraction_true("flag") == pytest.approx(0.5)
        assert "text" not in summary.samples

    def test_requires_seeds(self):
        with pytest.raises(ModelValidationError):
            monte_carlo(lambda seed: {}, seeds=[])

    def test_missing_metric_raises(self):
        summary = MonteCarloSummary()
        summary.add(1, {"a": 1.0})
        with pytest.raises(KeyError):
            summary.summary("b")
        with pytest.raises(KeyError):
            summary.fraction_true("b")

    def test_table_output(self):
        summary = MonteCarloSummary()
        summary.add(1, {"metric": 1.0})
        summary.add(2, {"metric": 3.0})
        table = summary.to_table()
        assert "metric" in table
        assert "mean" in table

    def test_summaries_mapping(self):
        summary = MonteCarloSummary()
        summary.add(1, {"a": 1.0, "b": 2.0})
        assert set(summary.summaries()) == {"a", "b"}


class TestSummariseMetrics:
    def test_filters_non_numeric(self):
        metrics = summarise_metrics({"x": 1.5, "ok": True, "name": "skip",
                                     "nested": {"a": 1}})
        assert metrics == {"x": 1.5, "ok": 1.0}

    def test_experiment_findings_roundtrip(self):
        from repro.simulation import experiments

        result = experiments.figure2_demand_curves(betas=(0.1, 5.0), points=21)
        metrics = summarise_metrics(result.findings)
        assert metrics["beta5_halved_by_10pct_drop"] == 1.0
