"""Batch-vs-scalar equivalence and cache-correctness tests.

The batched equilibrium engine promises that ``solve_rate_equilibria`` is
*exactly* the scalar ``solve_rate_equilibrium`` applied per grid point (they
share one bisection kernel), and that every cache layer is pure memoisation
(cached results identical to cold recomputation).  These tests pin both
claims across mechanisms, demand families and degenerate cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache import clear_all_caches
from repro.core.cp_game import CPPartitionGame
from repro.core.duopoly import DuopolyGame
from repro.core.strategy import ISPStrategy
from repro.network.allocation import (
    AlphaFairAllocation,
    CommonCapAllocation,
    MaxMinFairAllocation,
    ProportionalToDemandAllocation,
    WeightedFairAllocation,
)
from repro.network.demand import (
    ConstantElasticityDemand,
    ExponentialSensitivityDemand,
    LinearDemand,
    PiecewiseLinearDemand,
    SigmoidDemand,
    StepDemand,
    UnitDemand,
)
from repro.network.equilibrium import (
    cached_class_cap,
    cached_subset_equilibrium,
    solve_rate_equilibrium,
)
from repro.network.provider import ContentProvider, Population
from repro.simulation.batch import (
    solve_rate_equilibria,
    warm_equilibrium_cache,
)
from repro.workloads.populations import PopulationSpec, random_population

#: Equivalence tolerance required by the engine's contract.
TOL = 1e-10


def heterogeneous_population() -> Population:
    """One provider per shipped demand family (the non-exponential path)."""
    return Population([
        ContentProvider("exp", alpha=0.8, theta_hat=1.0, beta=2.0,
                        revenue_rate=0.5, utility_rate=1.0),
        ContentProvider("linear", alpha=0.6, theta_hat=2.0, beta=0.0,
                        revenue_rate=0.7, utility_rate=0.5,
                        demand=LinearDemand(2.0, floor=0.2)),
        ContentProvider("unit", alpha=0.3, theta_hat=0.5, beta=0.0,
                        revenue_rate=0.9, utility_rate=2.0,
                        demand=UnitDemand(0.5)),
        ContentProvider("step", alpha=0.5, theta_hat=1.5, beta=0.0,
                        revenue_rate=0.4, utility_rate=0.8,
                        demand=StepDemand(1.5, threshold=0.6, width=0.1)),
        ContentProvider("sigmoid", alpha=0.9, theta_hat=3.0, beta=0.0,
                        revenue_rate=0.2, utility_rate=1.5,
                        demand=SigmoidDemand(3.0, midpoint=0.4, steepness=8.0)),
        ContentProvider("piecewise", alpha=0.4, theta_hat=1.2, beta=0.0,
                        revenue_rate=0.6, utility_rate=0.3,
                        demand=PiecewiseLinearDemand(
                            1.2, [(0.0, 0.1), (0.3, 0.5), (0.7, 0.8),
                                  (1.0, 1.0)])),
        ContentProvider("elastic", alpha=0.7, theta_hat=0.8, beta=0.0,
                        revenue_rate=0.3, utility_rate=0.9,
                        demand=ConstantElasticityDemand(0.8, elasticity=1.5)),
    ])


def exponential_population() -> Population:
    return random_population(PopulationSpec(count=60), seed=13)


def grid_for(population: Population,
             include_extremes: bool = True) -> tuple[float, ...]:
    """A capacity grid spanning every regime, including degenerate points.

    ``include_extremes=False`` drops the near-zero capacity: the generic
    fixed-point path (non-cap mechanisms) legitimately fails to converge
    there, in batch and scalar form alike.
    """
    load = population.unconstrained_per_capita_load
    extremes = (0.0, 1e-9) if include_extremes else ()
    return extremes + (0.05 * load, 0.3 * load, 0.8 * load,
                       load, 1.5 * load, 10.0 * load)


MECHANISMS = [
    pytest.param(MaxMinFairAllocation(), id="maxmin"),
    pytest.param(ProportionalToDemandAllocation(), id="prop-to-demand"),
    pytest.param(WeightedFairAllocation({"cp-0001": 2.0, "linear": 3.0},
                                        default_weight=1.0), id="weighted"),
    pytest.param(AlphaFairAllocation(alpha=1.0), id="alpha-fair"),
]

POPULATIONS = [
    pytest.param(exponential_population, id="exponential"),
    pytest.param(heterogeneous_population, id="heterogeneous"),
]


def assert_equilibria_match(batch, population, mechanism) -> None:
    for index in range(len(batch)):
        nu = float(batch.nus[index])
        scalar = solve_rate_equilibrium(population, nu, mechanism)
        np.testing.assert_allclose(batch.thetas[index], scalar.thetas,
                                   rtol=0.0, atol=TOL)
        np.testing.assert_allclose(batch.demands[index], scalar.demands,
                                   rtol=0.0, atol=TOL)
        row = batch.equilibrium_at(index)
        assert row.common_cap == scalar.common_cap or (
            abs(row.common_cap - scalar.common_cap) <= TOL)
        assert abs(row.aggregate_rate - scalar.aggregate_rate) <= TOL
        assert abs(row.consumer_surplus() - scalar.consumer_surplus()) <= TOL


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    @pytest.mark.parametrize("make_population", POPULATIONS)
    def test_dense_grid(self, make_population, mechanism):
        population = make_population()
        from repro.network.allocation import CommonCapAllocation
        include_extremes = isinstance(mechanism, CommonCapAllocation)
        batch = solve_rate_equilibria(
            population, grid_for(population, include_extremes), mechanism)
        assert_equilibria_match(batch, population, mechanism)

    def test_default_mechanism_is_maxmin(self):
        population = exponential_population()
        batch = solve_rate_equilibria(population, (5.0,))
        scalar = solve_rate_equilibrium(population, 5.0)
        np.testing.assert_array_equal(batch.thetas[0], scalar.thetas)
        assert batch.mechanism_name == "MaxMinFairAllocation"

    def test_empty_population(self):
        population = Population([])
        batch = solve_rate_equilibria(population, (0.0, 1.0, 2.0))
        assert batch.thetas.shape == (3, 0)
        assert np.all(np.isinf(batch.common_caps))
        scalar = solve_rate_equilibrium(population, 1.0)
        assert scalar.common_cap == batch.equilibrium_at(1).common_cap

    def test_zero_capacity_rows(self):
        population = exponential_population()
        batch = solve_rate_equilibria(population, (0.0,))
        scalar = solve_rate_equilibrium(population, 0.0)
        np.testing.assert_array_equal(batch.thetas[0], scalar.thetas)
        np.testing.assert_array_equal(batch.demands[0], scalar.demands)
        assert batch.equilibrium_at(0).common_cap == 0.0

    def test_uncongested_rows_have_infinite_cap(self):
        population = exponential_population()
        nu = 2.0 * population.unconstrained_per_capita_load
        batch = solve_rate_equilibria(population, (nu,))
        assert np.isinf(batch.common_caps[0])
        np.testing.assert_allclose(batch.thetas[0], population.theta_hats,
                                   rtol=0.0, atol=TOL)

    def test_accessor_shapes_and_consistency(self):
        population = exponential_population()
        nus = grid_for(population)
        batch = solve_rate_equilibria(population, nus)
        count = len(nus)
        size = len(population)
        assert batch.thetas.shape == (count, size)
        assert batch.rhos.shape == (count, size)
        assert batch.per_capita_rates.shape == (count, size)
        assert batch.aggregate_rates.shape == (count,)
        assert batch.consumer_surpluses().shape == (count,)
        assert batch.utilizations.shape == (count,)
        np.testing.assert_allclose(
            batch.premium_revenues(0.3), 0.3 * batch.aggregate_rates)
        for index, equilibrium in enumerate(batch):
            assert equilibrium.nu == float(batch.nus[index])

    def test_rejects_invalid_grid(self):
        population = exponential_population()
        from repro.errors import ModelValidationError
        with pytest.raises(ModelValidationError):
            solve_rate_equilibria(population, (-1.0,))
        with pytest.raises(ModelValidationError):
            solve_rate_equilibria(population, (float("nan"),))

    @given(count=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=10_000),
           fractions=st.lists(st.floats(min_value=0.0, max_value=3.0),
                              min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_random_populations(self, count, seed, fractions):
        population = random_population(PopulationSpec(count=count), seed=seed)
        load = population.unconstrained_per_capita_load
        nus = tuple(fraction * load for fraction in fractions)
        batch = solve_rate_equilibria(population, nus)
        assert_equilibria_match(batch, population, MaxMinFairAllocation())


class TestEquilibriumCaches:
    def setup_method(self):
        clear_all_caches()

    def test_cached_subset_matches_direct_solve(self):
        population = exponential_population()
        indices = tuple(range(0, len(population), 3))
        nu = 0.2 * population.unconstrained_per_capita_load
        cached = cached_subset_equilibrium(population, indices, nu)
        direct = solve_rate_equilibrium(population.subset(indices), nu)
        np.testing.assert_array_equal(cached.thetas, direct.thetas)
        np.testing.assert_array_equal(cached.demands, direct.demands)
        assert cached.common_cap == direct.common_cap
        # Second call is a hit and returns the identical object.
        assert cached_subset_equilibrium(population, indices, nu) is cached

    def test_cached_class_cap_matches_equilibrium_cap(self):
        for make_population in (exponential_population,
                                heterogeneous_population):
            population = make_population()
            load = population.unconstrained_per_capita_load
            indices = tuple(range(len(population)))[1:]
            for nu in (0.1 * load, 0.5 * load, 2.0 * load):
                cap = cached_class_cap(population, indices, nu)
                equilibrium = solve_rate_equilibrium(
                    population.subset(indices), nu)
                assert cap == equilibrium.common_cap

    def test_cached_class_cap_full_population_key(self):
        population = exponential_population()
        nu = 0.4 * population.unconstrained_per_capita_load
        cap_by_indices = cached_class_cap(
            population, tuple(range(len(population))), nu)
        cap_full = cached_class_cap(population, None, nu)
        assert cap_by_indices == cap_full
        assert cap_full == solve_rate_equilibrium(population, nu).common_cap

    def test_default_mechanism_cache_key_cannot_alias_instances(self):
        """The default key must retain the instance, not a recyclable id().

        Two distinct (identity-keyed) mechanism instances with different
        behaviour must never share cached equilibria, even when one is
        garbage-collected before the other is created.
        """

        class ScaledMaxMin(CommonCapAllocation):
            def __init__(self, scale):
                self.scale = scale

            def allocate(self, population, demands, nu):  # pragma: no cover
                raise NotImplementedError

            def theta_at_cap(self, population, cap):
                return np.minimum(population.theta_hats, self.scale * cap)

        population = exponential_population()
        nu = 0.3 * population.unconstrained_per_capita_load
        mechanism = ScaledMaxMin(1.0)
        key = mechanism.cache_key()
        assert any(part is mechanism for part in key)
        caps = []
        for scale in (1.0, 0.5):
            instance = ScaledMaxMin(scale)
            caps.append(cached_subset_equilibrium(
                population, None, nu, instance).common_cap)
            del instance
        assert caps[0] != caps[1]

    def test_empty_capacity_grid(self):
        population = exponential_population()
        batch = solve_rate_equilibria(population, ())
        assert len(batch) == 0
        assert batch.thetas.shape == (0, len(population))

        class PlainCap(CommonCapAllocation):
            def allocate(self, population, demands, nu):  # pragma: no cover
                raise NotImplementedError

            def theta_at_cap(self, population, cap):
                return np.minimum(population.theta_hats, cap)

        # The generic (non-overridden) theta_at_caps path must also accept
        # an empty grid.
        batch = solve_rate_equilibria(population, (), PlainCap())
        assert batch.thetas.shape == (0, len(population))

    def test_warm_equilibrium_cache_seeds_exact_rows(self):
        population = exponential_population()
        load = population.unconstrained_per_capita_load
        nus = (0.1 * load, 0.5 * load, 1.5 * load)
        warm_equilibrium_cache(population, nus)
        for nu in nus:
            cached = cached_subset_equilibrium(population, None, nu)
            direct = solve_rate_equilibrium(population, nu)
            np.testing.assert_array_equal(cached.thetas, direct.thetas)
            assert cached.common_cap == direct.common_cap

    def test_warm_equilibrium_cache_survives_lru_eviction(self):
        """A partially-cached grid larger than the cache must still assemble.

        The seeding puts can evict rows the pre-scan found cached; the
        returned batch must not depend on re-reading the cache.
        """
        from repro.cache import LRUCache
        population = exponential_population()
        load = population.unconstrained_per_capita_load
        cache = LRUCache(maxsize=2)
        nus = tuple(fraction * load for fraction in (0.1, 0.2, 0.3, 0.4, 0.5))
        warm_equilibrium_cache(population, nus[:1], cache=cache)
        batch = warm_equilibrium_cache(population, nus, cache=cache)
        for index, nu in enumerate(nus):
            direct = solve_rate_equilibrium(population, nu)
            np.testing.assert_array_equal(batch.thetas[index], direct.thetas)
            assert float(batch.common_caps[index]) == direct.common_cap

    def test_warm_equilibrium_cache_skips_already_cached_rows(self):
        from repro.network.equilibrium import default_equilibrium_cache
        population = exponential_population()
        load = population.unconstrained_per_capita_load
        nus = (0.2 * load, 0.8 * load)
        first = warm_equilibrium_cache(population, nus)
        cache = default_equilibrium_cache()
        misses_before = cache.misses
        hits_before = cache.hits
        # Re-warming a partially overlapping grid only solves the new point:
        # the two already-warmed points hit, only 1.4*load misses.
        second = warm_equilibrium_cache(population, nus + (1.4 * load,))
        assert cache.misses == misses_before + 1
        assert cache.hits == hits_before + 2
        np.testing.assert_array_equal(first.thetas, second.thetas[:2])
        np.testing.assert_array_equal(
            second.thetas[2],
            solve_rate_equilibrium(population, 1.4 * load).thetas)


class TestCpGameCacheEquivalence:
    def _outcome_fields(self, outcome):
        return (outcome.ordinary_indices, outcome.premium_indices,
                outcome.consumer_surplus, outcome.isp_surplus,
                tuple(map(float, outcome.premium_equilibrium.thetas)),
                tuple(map(float, outcome.ordinary_equilibrium.thetas)))

    def test_competitive_outcome_cold_vs_warm_caches(self):
        population = random_population(PopulationSpec(count=80), seed=3)
        nu = 0.4 * population.unconstrained_per_capita_load
        strategy = ISPStrategy(0.6, 0.35)

        clear_all_caches()
        cold = CPPartitionGame(population, nu, strategy).competitive_equilibrium()
        cold_fields = self._outcome_fields(cold)

        # Re-solve with caches fully populated by unrelated nearby queries.
        for other_price in (0.1, 0.2, 0.5, 0.8):
            CPPartitionGame(population, nu, ISPStrategy(0.6, other_price)
                            ).competitive_equilibrium()
        warm = CPPartitionGame(population, nu, strategy).competitive_equilibrium()
        assert self._outcome_fields(warm) == cold_fields

        clear_all_caches()
        recomputed = CPPartitionGame(population, nu, strategy
                                     ).competitive_equilibrium()
        assert self._outcome_fields(recomputed) == cold_fields

    def test_nash_outcome_cold_vs_warm_caches(self):
        population = random_population(PopulationSpec(count=12), seed=5)
        nu = 0.3 * population.unconstrained_per_capita_load
        strategy = ISPStrategy(0.5, 0.4)
        clear_all_caches()
        cold = CPPartitionGame(population, nu, strategy).nash_equilibrium()
        fields = self._outcome_fields(cold)
        warm = CPPartitionGame(population, nu, strategy).nash_equilibrium()
        assert warm is cold  # pure memoisation on identical queries
        clear_all_caches()
        recomputed = CPPartitionGame(population, nu, strategy).nash_equilibrium()
        assert self._outcome_fields(recomputed) == fields

    def test_duopoly_outcome_cold_vs_warm_caches(self):
        population = random_population(PopulationSpec(count=50), seed=9)
        nu = 0.5 * population.unconstrained_per_capita_load
        game = DuopolyGame(population, nu, 0.5)
        strategy = ISPStrategy(1.0, 0.3)
        clear_all_caches()
        cold = game.outcome(strategy)
        clear_all_caches()
        # Populate the caches with the whole price sweep, then re-ask.
        game.price_sweep((0.1, 0.3, 0.6))
        warm = game.outcome(strategy)
        assert warm.market_share == cold.market_share
        assert warm.consumer_surplus == cold.consumer_surplus
        assert warm.isp_surplus == cold.isp_surplus


class TestCapacityAxisBatching:
    """Columnar profile kernel: scalar ``solve_cap`` vs batched ``solve_caps``,
    mask-keyed class caps, chunked carried evaluation, and the capacity
    sweep's bracket warming — all must agree with the scalar path."""

    def setup_method(self):
        clear_all_caches()

    def test_solve_cap_matches_one_element_solve_caps_exactly(self):
        from repro.network.equilibrium import common_cap_profile

        population = exponential_population()
        profile = common_cap_profile(population, MaxMinFairAllocation())
        load = population.unconstrained_per_capita_load
        for nu in (0.0, 1e-9, 0.05 * load, 0.5 * load, load, 2.0 * load):
            vector = float(profile.solve_caps(np.array([nu]))[0])
            scalar = profile.solve_cap(nu)
            # Same bisection, same carried kernel: exact equality.
            assert scalar == vector or (np.isinf(scalar) and np.isinf(vector))

    @given(count=st.integers(min_value=1, max_value=40),
           seed=st.integers(min_value=0, max_value=10_000),
           fractions=st.lists(st.floats(min_value=0.0, max_value=2.0),
                              min_size=2, max_size=8))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_grid_solve_matches_scalar(self, count, seed, fractions):
        from repro.network.equilibrium import common_cap_profile

        population = random_population(PopulationSpec(count=count), seed=seed)
        profile = common_cap_profile(population, MaxMinFairAllocation())
        load = population.unconstrained_per_capita_load
        nus = np.array([fraction * load for fraction in fractions])
        grid = profile.solve_caps(nus)
        for nu, cap in zip(nus, grid):
            scalar = profile.solve_cap(float(nu))
            if np.isinf(scalar) or np.isinf(cap):
                assert np.isinf(scalar) and np.isinf(cap)
            else:
                assert abs(scalar - cap) <= TOL

    def test_class_cap_for_mask_matches_index_form_exactly(self):
        from repro.network.equilibrium import (
            cached_class_cap_for_mask,
            clear_equilibrium_caches,
        )

        population = exponential_population()
        load = population.unconstrained_per_capita_load
        rng = np.random.default_rng(3)
        for nu in (0.1 * load, 0.6 * load):
            for _ in range(4):
                mask = rng.random(len(population)) < 0.5
                if not mask.any():
                    mask[0] = True
                indices = tuple(int(i) for i in np.nonzero(mask)[0])
                by_mask = cached_class_cap_for_mask(population, mask, nu)
                clear_equilibrium_caches()
                by_indices = cached_class_cap(population, indices, nu)
                assert by_mask == by_indices or (
                    np.isinf(by_mask) and np.isinf(by_indices))

    def test_mask_and_index_forms_share_cache_entries(self):
        from repro.network.equilibrium import cached_class_cap_for_mask
        from repro.cache import all_cache_stats

        population = exponential_population()
        nu = 0.3 * population.unconstrained_per_capita_load
        mask = np.zeros(len(population), dtype=bool)
        mask[::2] = True
        cached_class_cap_for_mask(population, mask, nu)
        before = all_cache_stats()["class_caps"]["misses"]
        cached_class_cap(population,
                         tuple(int(i) for i in np.nonzero(mask)[0]), nu)
        after = all_cache_stats()["class_caps"]
        assert after["misses"] == before  # hit on the packed-bitmask key

    def test_subset_profile_matches_constructor_exactly(self):
        from repro.network.equilibrium import ExponentialMaxMinProfile

        population = exponential_population()
        theta_hats, betas = population.exponential_parameters
        rng = np.random.default_rng(11)
        mask = rng.random(len(population)) < 0.4
        mask[0] = True
        direct = ExponentialMaxMinProfile(
            population.alphas[mask], theta_hats[mask], betas[mask])
        order = np.argsort(theta_hats, kind="stable")
        sub_order = order[mask[order]]
        filtered = ExponentialMaxMinProfile.from_sorted(
            population.alphas[sub_order], theta_hats[sub_order],
            betas[sub_order])
        caps = np.array([0.1, 0.3, 0.7, 1.5]) * direct.upper
        for cap in caps:
            assert direct.carried_scalar(float(cap)) == \
                filtered.carried_scalar(float(cap))
        load = direct.unconstrained_load
        for nu in (0.2 * load, 0.8 * load):
            assert direct.solve_cap(nu) == filtered.solve_cap(nu)

    def test_chunked_carried_matches_unchunked(self, monkeypatch):
        from repro.network import equilibrium

        population = exponential_population()
        profile = equilibrium.common_cap_profile(population,
                                                 MaxMinFairAllocation())
        caps = np.linspace(0.0, 1.2 * profile.upper, 37)
        unchunked = profile.carried(caps)
        # Force the element bound low enough that every call chunks.
        monkeypatch.setattr(equilibrium, "_CARRIED_BATCH_ELEMENTS",
                            4 * len(population))
        chunked = profile._carried_bounded(caps)
        # Chunk boundaries change the tail zero-padding and therefore the
        # pairwise-summation grouping, so agreement is at the engine's
        # batch-vs-scalar tolerance, not bit-exact.
        np.testing.assert_allclose(chunked, unchunked, rtol=0.0, atol=TOL)

    def test_capacity_sweep_warming_matches_per_point_outcomes(self):
        population = random_population(PopulationSpec(count=50), seed=9)
        load = population.unconstrained_per_capita_load
        nus = (0.3 * load, 0.6 * load, 1.1 * load)
        strategy = ISPStrategy(1.0, 0.3)
        game = DuopolyGame(population, nus[0], 0.5)
        clear_all_caches()
        swept = game.capacity_sweep(strategy, nus)
        clear_all_caches()
        for nu, warm in zip(nus, swept):
            cold = DuopolyGame(population, nu, 0.5).outcome(strategy)
            assert abs(warm.market_share - cold.market_share) <= TOL
            assert abs(warm.consumer_surplus - cold.consumer_surplus) <= TOL
            assert abs(warm.isp_surplus - cold.isp_surplus) <= TOL
