"""Tests for welfare accounting helpers."""

from __future__ import annotations

import pytest

from repro.core.cp_game import competitive_equilibrium
from repro.core.strategy import ISPStrategy
from repro.core.surplus import (
    SurplusBreakdown,
    max_consumer_surplus,
    neutral_consumer_surplus,
    welfare_report,
)
from repro.network.equilibrium import solve_rate_equilibrium


class TestSurplusBreakdown:
    def test_total_welfare(self):
        breakdown = SurplusBreakdown(consumer_surplus=2.0, isp_surplus=1.0,
                                     cp_surplus=0.5)
        assert breakdown.total_welfare == pytest.approx(3.5)

    def test_scaled(self):
        breakdown = SurplusBreakdown(2.0, 1.0, 0.5).scaled(100.0)
        assert breakdown.consumer_surplus == pytest.approx(200.0)
        assert breakdown.isp_surplus == pytest.approx(100.0)
        assert breakdown.cp_surplus == pytest.approx(50.0)


class TestWelfareReport:
    def test_matches_outcome(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, nu=5.0,
                                          strategy=ISPStrategy(0.8, 0.3))
        breakdown = welfare_report(outcome)
        assert breakdown.consumer_surplus == pytest.approx(outcome.consumer_surplus)
        assert breakdown.isp_surplus == pytest.approx(outcome.isp_surplus)
        assert breakdown.cp_surplus == pytest.approx(
            sum(outcome.cp_utilities().values()))

    def test_isp_plus_cp_equals_gross_cp_revenue(self, medium_random_population):
        """The premium charge is a transfer: ISP surplus plus net CP profit
        equals the CPs' gross revenue on carried traffic."""
        outcome = competitive_equilibrium(medium_random_population, nu=5.0,
                                          strategy=ISPStrategy(1.0, 0.4))
        breakdown = welfare_report(outcome)
        gross = 0.0
        for indices, equilibrium in ((outcome.ordinary_indices,
                                      outcome.ordinary_equilibrium),
                                     (outcome.premium_indices,
                                      outcome.premium_equilibrium)):
            for local, global_index in enumerate(sorted(indices)):
                provider = medium_random_population[global_index]
                gross += provider.revenue_rate * float(
                    equilibrium.per_capita_rates[local])
        assert breakdown.isp_surplus + breakdown.cp_surplus == pytest.approx(
            gross, rel=1e-9)


class TestNeutralAndMaxSurplus:
    def test_neutral_surplus_equals_single_class(self, small_random_population):
        direct = solve_rate_equilibrium(small_random_population, 2.0).consumer_surplus()
        assert neutral_consumer_surplus(small_random_population, 2.0) == pytest.approx(direct)

    def test_max_surplus_is_upper_bound(self, small_random_population):
        upper = max_consumer_surplus(small_random_population)
        for nu in (0.5, 2.0, 10.0, 50.0):
            assert neutral_consumer_surplus(small_random_population, nu) <= upper + 1e-9

    def test_max_surplus_attained_when_unconstrained(self, small_random_population):
        load = small_random_population.unconstrained_per_capita_load
        assert neutral_consumer_surplus(small_random_population, 2 * load) == pytest.approx(
            max_consumer_surplus(small_random_population), rel=1e-9)
