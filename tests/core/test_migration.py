"""Tests for the consumer-migration equilibrium (Assumption 5, Definition 4)."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.migration import (
    IspConfig,
    isp_outcome_at_share,
    solve_market_split,
)
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY


class TestIspConfig:
    def test_validation(self):
        with pytest.raises(ModelValidationError):
            IspConfig("", PUBLIC_OPTION_STRATEGY, 0.5)
        with pytest.raises(ModelValidationError):
            IspConfig("a", PUBLIC_OPTION_STRATEGY, 0.0)
        with pytest.raises(ModelValidationError):
            IspConfig("a", PUBLIC_OPTION_STRATEGY, 1.5)


class TestOutcomeAtShare:
    def test_per_capita_capacity_scaling(self, medium_random_population):
        isp = IspConfig("po", PUBLIC_OPTION_STRATEGY, 0.5)
        half = isp_outcome_at_share(medium_random_population, 10.0, isp, 0.5)
        quarter = isp_outcome_at_share(medium_random_population, 10.0, isp, 0.25)
        assert half.nu == pytest.approx(10.0)
        assert quarter.nu == pytest.approx(20.0)
        # More per-capita capacity never hurts surplus (Theorem 2).
        assert quarter.consumer_surplus >= half.consumer_surplus - 1e-9

    def test_invalid_total_nu(self, medium_random_population):
        isp = IspConfig("po", PUBLIC_OPTION_STRATEGY, 0.5)
        with pytest.raises(ModelValidationError):
            isp_outcome_at_share(medium_random_population, -1.0, isp, 0.5)


class TestValidation:
    def test_requires_isps(self, medium_random_population):
        with pytest.raises(ModelValidationError):
            solve_market_split(medium_random_population, 10.0, [])

    def test_requires_unique_names(self, medium_random_population):
        isps = [IspConfig("a", PUBLIC_OPTION_STRATEGY, 0.5),
                IspConfig("a", PUBLIC_OPTION_STRATEGY, 0.5)]
        with pytest.raises(ModelValidationError):
            solve_market_split(medium_random_population, 10.0, isps)

    def test_capacity_shares_must_sum_to_one(self, medium_random_population):
        isps = [IspConfig("a", PUBLIC_OPTION_STRATEGY, 0.5),
                IspConfig("b", PUBLIC_OPTION_STRATEGY, 0.4)]
        with pytest.raises(ModelValidationError):
            solve_market_split(medium_random_population, 10.0, isps)


class TestSingleIsp:
    def test_single_isp_gets_everything(self, medium_random_population):
        split = solve_market_split(medium_random_population, 10.0,
                                   [IspConfig("only", PUBLIC_OPTION_STRATEGY, 1.0)])
        assert split.shares["only"] == pytest.approx(1.0)
        assert split.converged


class TestDuopolySplit:
    def test_symmetric_neutral_isps_split_evenly(self, medium_random_population):
        isps = [IspConfig("a", PUBLIC_OPTION_STRATEGY, 0.5),
                IspConfig("b", PUBLIC_OPTION_STRATEGY, 0.5)]
        split = solve_market_split(medium_random_population, 10.0, isps)
        assert split.shares["a"] == pytest.approx(0.5, abs=0.01)
        assert split.shares["b"] == pytest.approx(0.5, abs=0.01)
        assert split.surpluses["a"] == pytest.approx(split.surpluses["b"], rel=0.02)
        assert sum(split.shares.values()) == pytest.approx(1.0)

    def test_asymmetric_capacity_proportional_split(self, medium_random_population):
        """Two identical neutral ISPs with 70/30 capacity split the market 70/30."""
        isps = [IspConfig("big", PUBLIC_OPTION_STRATEGY, 0.7),
                IspConfig("small", PUBLIC_OPTION_STRATEGY, 0.3)]
        split = solve_market_split(medium_random_population, 10.0, isps)
        assert split.shares["big"] == pytest.approx(0.7, abs=0.02)
        assert split.shares["small"] == pytest.approx(0.3, abs=0.02)

    def test_hopeless_isp_gets_no_consumers(self, medium_random_population):
        """An ISP whose premium price excludes every CP loses the whole market
        when capacity is scarce (its surplus is ~0 at any share)."""
        isps = [IspConfig("greedy", ISPStrategy(1.0, 100.0), 0.5),
                IspConfig("po", PUBLIC_OPTION_STRATEGY, 0.5)]
        split = solve_market_split(medium_random_population, 5.0, isps)
        assert split.shares["greedy"] == pytest.approx(0.0, abs=1e-6)
        assert split.shares["po"] == pytest.approx(1.0, abs=1e-6)

    def test_surpluses_equalised_at_interior_split(self, medium_random_population):
        isps = [IspConfig("strategic", ISPStrategy(1.0, 0.3), 0.5),
                IspConfig("po", PUBLIC_OPTION_STRATEGY, 0.5)]
        split = solve_market_split(medium_random_population, 10.0, isps)
        if 0.01 < split.shares["strategic"] < 0.99:
            scale = max(abs(split.common_surplus), 1e-9)
            assert split.residual <= 0.05 * scale
        assert split.consumer_surplus == pytest.approx(
            sum(split.shares[n] * split.surpluses[n] for n in split.shares))

    def test_isp_surplus_is_market_wide_per_capita(self, medium_random_population):
        isps = [IspConfig("strategic", ISPStrategy(1.0, 0.3), 0.5),
                IspConfig("po", PUBLIC_OPTION_STRATEGY, 0.5)]
        split = solve_market_split(medium_random_population, 10.0, isps)
        expected = split.shares["strategic"] * split.outcomes["strategic"].isp_surplus
        assert split.isp_surplus("strategic") == pytest.approx(expected)
        assert split.isp_surplus("po") == 0.0


class TestMultiIspSplit:
    def test_three_neutral_isps_proportional(self, small_random_population):
        isps = [IspConfig("a", PUBLIC_OPTION_STRATEGY, 0.5),
                IspConfig("b", PUBLIC_OPTION_STRATEGY, 0.3),
                IspConfig("c", PUBLIC_OPTION_STRATEGY, 0.2)]
        split = solve_market_split(small_random_population, 3.0, isps,
                                   max_iterations=200)
        assert sum(split.shares.values()) == pytest.approx(1.0)
        assert split.shares["a"] == pytest.approx(0.5, abs=0.03)
        assert split.shares["b"] == pytest.approx(0.3, abs=0.03)
        assert split.shares["c"] == pytest.approx(0.2, abs=0.03)

    def test_three_isp_mixed_strategies(self, small_random_population):
        isps = [IspConfig("a", ISPStrategy(1.0, 0.3), 0.4),
                IspConfig("b", PUBLIC_OPTION_STRATEGY, 0.3),
                IspConfig("c", ISPStrategy(0.5, 0.2), 0.3)]
        split = solve_market_split(small_random_population, 4.0, isps,
                                   max_iterations=200)
        assert sum(split.shares.values()) == pytest.approx(1.0)
        assert all(share >= 0.0 for share in split.shares.values())
