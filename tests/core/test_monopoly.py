"""Tests for the two-stage monopoly game (Section III, Theorem 4)."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.monopoly import MonopolyGame
from repro.core.strategy import ISPStrategy, NEUTRAL_STRATEGY, strategy_grid
from repro.core.surplus import neutral_consumer_surplus


@pytest.fixture
def game(medium_random_population):
    return MonopolyGame(medium_random_population, nu=10.0)


class TestConstruction:
    def test_invalid_nu(self, medium_random_population):
        with pytest.raises(ModelValidationError):
            MonopolyGame(medium_random_population, nu=-1.0)

    def test_invalid_equilibrium_kind(self, medium_random_population):
        with pytest.raises(ModelValidationError):
            MonopolyGame(medium_random_population, nu=1.0, equilibrium_kind="bogus")


class TestOutcomes:
    def test_outcome_fields(self, game):
        outcome = game.outcome(ISPStrategy(1.0, 0.4))
        assert outcome.isp_surplus >= 0.0
        assert outcome.consumer_surplus >= 0.0
        assert 0.0 <= outcome.capacity_utilization <= 1.0
        assert outcome.premium_provider_count == len(outcome.partition.premium_indices)

    def test_neutral_outcome_matches_single_class(self, game,
                                                  medium_random_population):
        neutral = game.neutral_outcome()
        assert neutral.strategy == NEUTRAL_STRATEGY
        assert neutral.isp_surplus == 0.0
        assert neutral.consumer_surplus == pytest.approx(
            neutral_consumer_surplus(medium_random_population, 10.0), rel=1e-9)

    def test_welfare_breakdown_consistent(self, game):
        outcome = game.outcome(ISPStrategy(0.8, 0.3))
        breakdown = outcome.welfare()
        assert breakdown.consumer_surplus == pytest.approx(outcome.consumer_surplus)
        assert breakdown.isp_surplus == pytest.approx(outcome.isp_surplus)
        assert breakdown.total_welfare == pytest.approx(
            breakdown.consumer_surplus + breakdown.isp_surplus + breakdown.cp_surplus)

    def test_nash_equilibrium_kind(self, small_random_population):
        game = MonopolyGame(small_random_population, nu=3.0,
                            equilibrium_kind="nash")
        outcome = game.outcome(ISPStrategy(1.0, 0.5))
        assert outcome.partition.equilibrium_kind == "nash"


class TestPriceSweep:
    def test_psi_linear_when_saturated(self, game):
        """Regime 1 of Figure 4: Psi = c * nu while the premium class is full."""
        outcomes = game.price_sweep([0.05, 0.1], kappa=1.0)
        for outcome in outcomes:
            assert outcome.premium_saturated
            assert outcome.isp_surplus == pytest.approx(
                outcome.strategy.price * 10.0, rel=1e-6)

    def test_psi_collapses_at_prohibitive_price(self, game):
        outcome = game.outcome(ISPStrategy(1.0, 5.0))
        assert outcome.isp_surplus == 0.0
        assert outcome.premium_provider_count == 0

    def test_phi_decreases_with_price_at_kappa_one_when_capacity_abundant(
            self, medium_random_population):
        """With abundant capacity, raising the premium price only hurts
        consumers (the paper notes the opposite can happen only when capacity
        is extremely scarce)."""
        load = medium_random_population.unconstrained_per_capita_load
        abundant = MonopolyGame(medium_random_population, nu=0.9 * load)
        outcomes = abundant.price_sweep([0.1, 0.5, 0.9], kappa=1.0)
        phis = [o.consumer_surplus for o in outcomes]
        assert phis[0] >= phis[1] >= phis[2]

    def test_capacity_sweep_runs_at_each_nu(self, medium_random_population):
        game = MonopolyGame(medium_random_population, nu=1.0)
        outcomes = game.capacity_sweep(ISPStrategy(0.5, 0.3), [2.0, 10.0, 60.0])
        assert len(outcomes) == 3
        # Consumer surplus is (weakly, up to epsilon jumps) increasing in nu.
        assert outcomes[-1].consumer_surplus >= outcomes[0].consumer_surplus


class TestFirstStageOptimisation:
    def test_revenue_optimal_beats_grid(self, game):
        grid = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.5, 0.8))
        best = game.revenue_optimal(grid)
        for strategy in grid:
            assert best.isp_surplus >= game.outcome(strategy).isp_surplus - 1e-9

    def test_surplus_optimal_beats_grid(self, game):
        grid = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.5, 0.8))
        best = game.surplus_optimal(grid)
        for strategy in grid:
            assert best.consumer_surplus >= game.outcome(strategy).consumer_surplus - 1e-9

    def test_optimal_price_at_kappa_one(self, game):
        best = game.optimal_price([0.1, 0.3, 0.5, 0.7], kappa=1.0)
        assert best.strategy.kappa == 1.0
        assert best.strategy.price in (0.1, 0.3, 0.5, 0.7)

    def test_empty_grid_rejected(self, game):
        with pytest.raises(ModelValidationError):
            game.revenue_optimal([])


class TestTheorem4:
    @pytest.mark.parametrize("nu", [3.0, 10.0, 40.0])
    @pytest.mark.parametrize("price", [0.2, 0.5, 0.8])
    def test_kappa_one_dominates(self, medium_random_population, nu, price):
        game = MonopolyGame(medium_random_population, nu=nu)
        report = game.verify_kappa_dominance(price, kappas=(0.25, 0.5, 0.75))
        assert report["holds"], report

    def test_report_contains_all_kappas(self, game):
        report = game.verify_kappa_dominance(0.4, kappas=(0.5,))
        assert set(report["revenues"]) == {0.5, 1.0}


class TestMonopolyMisalignment:
    def test_revenue_optimum_can_hurt_consumers_when_capacity_abundant(
            self, medium_random_population):
        """Figure 4's headline: with abundant capacity the revenue-optimal
        price leaves consumer surplus below what a lower price achieves."""
        load = medium_random_population.unconstrained_per_capita_load
        game = MonopolyGame(medium_random_population, nu=0.8 * load)
        prices = [0.05, 0.2, 0.35, 0.5, 0.65, 0.8]
        outcomes = game.price_sweep(prices, kappa=1.0)
        best_revenue = max(outcomes, key=lambda o: o.isp_surplus)
        best_phi = max(o.consumer_surplus for o in outcomes)
        assert best_revenue.consumer_surplus < best_phi
