"""Tests for the duopoly game with a Public Option ISP (Theorem 5)."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.duopoly import DuopolyGame
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY, strategy_grid
from repro.core.surplus import neutral_consumer_surplus


@pytest.fixture
def game(medium_random_population):
    return DuopolyGame(medium_random_population, total_nu=10.0,
                       strategic_capacity_share=0.5)


class TestConstruction:
    def test_invalid_total_nu(self, medium_random_population):
        with pytest.raises(ModelValidationError):
            DuopolyGame(medium_random_population, total_nu=-1.0)

    def test_invalid_capacity_share(self, medium_random_population):
        with pytest.raises(ModelValidationError):
            DuopolyGame(medium_random_population, 10.0, strategic_capacity_share=0.0)
        with pytest.raises(ModelValidationError):
            DuopolyGame(medium_random_population, 10.0, strategic_capacity_share=1.0)


class TestOutcome:
    def test_shares_sum_to_one(self, game):
        outcome = game.outcome(ISPStrategy(1.0, 0.3))
        assert outcome.market_share + outcome.other_market_share == pytest.approx(1.0)
        assert 0.0 <= outcome.market_share <= 1.0

    def test_mirrored_public_option_strategy_splits_evenly(self, game):
        outcome = game.outcome(PUBLIC_OPTION_STRATEGY)
        assert outcome.market_share == pytest.approx(0.5, abs=0.01)

    def test_per_isp_details_exposed(self, game):
        outcome = game.outcome(ISPStrategy(1.0, 0.3))
        assert outcome.strategic_partition.strategy == ISPStrategy(1.0, 0.3)
        assert outcome.other_partition.strategy == PUBLIC_OPTION_STRATEGY
        if outcome.market_share > 0.01:
            assert outcome.strategic_nu == pytest.approx(
                0.5 * 10.0 / outcome.market_share, rel=1e-3)

    def test_isp_surplus_per_subscriber_vs_market_wide(self, game):
        outcome = game.outcome(ISPStrategy(1.0, 0.3))
        assert outcome.isp_surplus == pytest.approx(
            outcome.market_share * outcome.isp_surplus_per_subscriber)
        assert outcome.other_isp_surplus == 0.0

    def test_prohibitive_price_loses_market(self, game, medium_random_population):
        outcome = game.outcome(ISPStrategy(1.0, 50.0))
        assert outcome.market_share == pytest.approx(0.0, abs=1e-6)
        # All consumers crowd onto the Public Option's half of the capacity,
        # and the resulting surplus is the neutral surplus at that capacity.
        assert outcome.consumer_surplus == pytest.approx(
            neutral_consumer_surplus(medium_random_population, 5.0), rel=1e-6)

    def test_custom_opponent_strategy(self, game):
        outcome = game.outcome(ISPStrategy(1.0, 0.3),
                               opponent_strategy=ISPStrategy(1.0, 0.3))
        # Symmetric strategies and capacities split the market evenly
        # (Lemma 4 in the two-ISP case).
        assert outcome.market_share == pytest.approx(0.5, abs=0.02)


class TestSweeps:
    def test_price_sweep_shapes(self, game):
        outcomes = game.price_sweep([0.0, 0.3, 0.9], kappa=1.0)
        assert len(outcomes) == 3
        # Phi stays strictly positive even at prohibitive prices (the Public
        # Option guarantees a floor).
        assert all(o.consumer_surplus > 0.0 for o in outcomes)
        # The strategic ISP's revenue vanishes at the extremes.
        assert outcomes[0].isp_surplus == pytest.approx(0.0, abs=1e-9)

    def test_capacity_sweep(self, medium_random_population):
        game = DuopolyGame(medium_random_population, total_nu=2.0)
        outcomes = game.capacity_sweep(ISPStrategy(1.0, 0.3), [2.0, 10.0, 50.0])
        assert len(outcomes) == 3
        assert outcomes[-1].total_nu == 50.0
        # Consumer surplus grows with total capacity.
        assert outcomes[-1].consumer_surplus >= outcomes[0].consumer_surplus


class TestTheorem5:
    def test_market_share_and_surplus_optima_aligned(self, medium_random_population):
        game = DuopolyGame(medium_random_population, total_nu=8.0)
        grid = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.5, 0.8),
                             include_public_option=True)
        report = game.alignment_report(grid)
        scale = max(abs(report["surplus_optimum"].consumer_surplus), 1e-9)
        # Theorem 5: the market-share-optimal strategy is (close to) surplus
        # optimal; the tolerance absorbs the migration-solver resolution.
        assert report["surplus_shortfall"] <= 0.03 * scale

    def test_best_response_objectives(self, medium_random_population):
        game = DuopolyGame(medium_random_population, total_nu=8.0)
        grid = strategy_grid(kappas=(1.0,), prices=(0.2, 0.6))
        by_share = game.best_response(grid, objective="market_share")
        by_phi = game.best_response(grid, objective="consumer_surplus")
        assert by_share.strategy_strategic in grid
        assert by_phi.strategy_strategic in grid
        with pytest.raises(ModelValidationError):
            game.best_response(grid, objective="bogus")
        with pytest.raises(ModelValidationError):
            game.best_response([], objective="market_share")

    def test_public_option_never_dominated_badly(self, medium_random_population):
        """The non-neutral ISP cannot win the whole market: the Public Option
        survives (keeps a substantial share) under competition."""
        game = DuopolyGame(medium_random_population, total_nu=8.0)
        grid = strategy_grid(kappas=(1.0,), prices=(0.1, 0.3, 0.5, 0.7))
        best = game.best_response(grid, objective="market_share")
        assert best.market_share <= 0.75
        assert best.other_market_share >= 0.25
