"""Tests for the regulatory-regime comparison."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.regulation import RegimeComparison, RegimeResult, compare_regimes
from repro.core.strategy import ISPStrategy, strategy_grid


@pytest.fixture(scope="module")
def comparison(request):
    from repro.workloads.populations import PopulationSpec, random_population
    population = random_population(PopulationSpec(count=120), seed=11)
    nu = 0.8 * population.unconstrained_per_capita_load
    strategies = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.5, 0.8))
    return compare_regimes(population, nu, strategies)


class TestRegimeComparison:
    def test_all_regimes_present(self, comparison):
        assert set(comparison.results) == {
            "unregulated_monopoly", "neutral_monopoly", "public_option",
            "oligopoly_competition",
        }

    def test_ranking_sorted(self, comparison):
        ranked = comparison.ranking()
        surpluses = [r.consumer_surplus for r in ranked]
        assert surpluses == sorted(surpluses, reverse=True)

    def test_paper_ordering_holds(self, comparison):
        """Public Option >= neutral regulation >= unregulated monopoly."""
        assert comparison.paper_ordering_holds(tolerance=0.02)

    def test_neutral_has_no_isp_revenue(self, comparison):
        assert comparison.results["neutral_monopoly"].isp_surplus == 0.0

    def test_unregulated_monopolist_extracts_revenue(self, comparison):
        assert comparison.results["unregulated_monopoly"].isp_surplus > 0.0

    def test_summary_table_lists_every_regime(self, comparison):
        table = comparison.summary_table()
        for regime in comparison.results:
            assert regime in table

    def test_consumer_surplus_lookup(self, comparison):
        assert comparison.consumer_surplus("neutral_monopoly") == pytest.approx(
            comparison.results["neutral_monopoly"].consumer_surplus)


class TestCompareRegimesOptions:
    def test_without_competition_regime(self, small_random_population):
        nu = 0.5 * small_random_population.unconstrained_per_capita_load
        result = compare_regimes(small_random_population, nu,
                                 strategy_grid(kappas=(1.0,), prices=(0.3, 0.6)),
                                 include_competition=False)
        assert "oligopoly_competition" not in result.results
        assert "public_option" in result.results

    def test_empty_strategy_grid_rejected(self, small_random_population):
        with pytest.raises(ModelValidationError):
            compare_regimes(small_random_population, 1.0, [])

    def test_manual_comparison_helpers(self):
        comparison = RegimeComparison(nu=1.0)
        comparison.add(RegimeResult("a", 2.0, 0.1, ISPStrategy(0.0, 0.0), "x"))
        comparison.add(RegimeResult("b", 3.0, 0.2, ISPStrategy(1.0, 0.5), "y"))
        assert [r.regime for r in comparison.ranking()] == ["b", "a"]
