"""Tests for ISP strategies and strategy grids."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.strategy import (
    NEUTRAL_STRATEGY,
    PUBLIC_OPTION_STRATEGY,
    ISPStrategy,
    strategy_grid,
)


class TestISPStrategy:
    def test_valid_strategy(self):
        strategy = ISPStrategy(kappa=0.5, price=0.3)
        assert strategy.ordinary_share == pytest.approx(0.5)
        assert not strategy.is_neutral
        assert not strategy.is_public_option

    @pytest.mark.parametrize("kappa", [-0.1, 1.1])
    def test_invalid_kappa(self, kappa):
        with pytest.raises(ModelValidationError):
            ISPStrategy(kappa=kappa, price=0.1)

    @pytest.mark.parametrize("price", [-0.1, float("inf"), float("nan")])
    def test_invalid_price(self, price):
        with pytest.raises(ModelValidationError):
            ISPStrategy(kappa=0.5, price=price)

    def test_neutrality_conditions(self):
        assert ISPStrategy(0.0, 0.7).is_neutral
        assert ISPStrategy(0.4, 0.0).is_neutral
        assert not ISPStrategy(0.4, 0.7).is_neutral

    def test_public_option_constant(self):
        assert PUBLIC_OPTION_STRATEGY.kappa == 0.0
        assert PUBLIC_OPTION_STRATEGY.price == 0.0
        assert PUBLIC_OPTION_STRATEGY.is_public_option
        assert NEUTRAL_STRATEGY == PUBLIC_OPTION_STRATEGY

    def test_only_exact_zero_zero_is_public_option(self):
        assert not ISPStrategy(0.0, 0.5).is_public_option
        assert not ISPStrategy(0.5, 0.0).is_public_option

    def test_ordering_and_hashability(self):
        strategies = {ISPStrategy(0.5, 0.3), ISPStrategy(0.5, 0.3), ISPStrategy(1.0, 0.3)}
        assert len(strategies) == 2
        assert ISPStrategy(0.2, 0.1) < ISPStrategy(0.5, 0.1)

    def test_two_class_link(self):
        link = ISPStrategy(0.25, 0.4).two_class_link(capacity=100.0)
        assert link.premium.capacity_share == pytest.approx(0.25)
        assert link.premium.price == pytest.approx(0.4)
        assert link.ordinary.capacity_share == pytest.approx(0.75)

    def test_describe(self):
        assert "public option" in PUBLIC_OPTION_STRATEGY.describe()
        assert "kappa=0.5" in ISPStrategy(0.5, 0.3).describe()


class TestStrategyGrid:
    def test_cartesian_product(self):
        grid = strategy_grid(kappas=(0.5, 1.0), prices=(0.1, 0.2, 0.3))
        assert len(grid) == 6
        assert ISPStrategy(0.5, 0.1) in grid
        assert ISPStrategy(1.0, 0.3) in grid

    def test_deduplication(self):
        grid = strategy_grid(kappas=(0.5, 0.5), prices=(0.1,))
        assert len(grid) == 1

    def test_include_public_option(self):
        grid = strategy_grid(kappas=(0.5,), prices=(0.1,), include_public_option=True)
        assert PUBLIC_OPTION_STRATEGY in grid
        # Not duplicated if already present.
        grid2 = strategy_grid(kappas=(0.0,), prices=(0.0,),
                              include_public_option=True)
        assert grid2.count(PUBLIC_OPTION_STRATEGY) == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ModelValidationError):
            strategy_grid(kappas=(), prices=(0.1,))
        with pytest.raises(ModelValidationError):
            strategy_grid(kappas=(0.5,), prices=())
