"""Tests for the second-stage CP class-selection game (Definitions 2-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelValidationError
from repro.core.cp_game import (
    CPPartitionGame,
    competitive_equilibrium,
    nash_equilibrium,
)
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY
from repro.network.provider import ContentProvider, Population


def rich_and_poor_population():
    """Two high-margin CPs and two that cannot afford any realistic price."""
    return Population([
        ContentProvider(name="rich-1", alpha=0.6, theta_hat=2.0, beta=2.0,
                        revenue_rate=0.9, utility_rate=2.0),
        ContentProvider(name="rich-2", alpha=0.4, theta_hat=3.0, beta=4.0,
                        revenue_rate=0.8, utility_rate=3.0),
        ContentProvider(name="poor-1", alpha=0.8, theta_hat=1.0, beta=0.5,
                        revenue_rate=0.1, utility_rate=1.0),
        ContentProvider(name="poor-2", alpha=0.5, theta_hat=1.5, beta=1.0,
                        revenue_rate=0.05, utility_rate=0.5),
    ])


class TestTrivialProfiles:
    def test_kappa_zero_everyone_ordinary(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, nu=5.0,
                                          strategy=ISPStrategy(0.0, 0.5))
        assert outcome.premium_indices == ()
        assert len(outcome.ordinary_indices) == len(medium_random_population)
        assert outcome.isp_surplus == 0.0
        assert outcome.converged

    def test_public_option_is_single_neutral_class(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, nu=5.0,
                                          strategy=PUBLIC_OPTION_STRATEGY)
        assert outcome.premium_indices == ()
        assert outcome.isp_surplus == 0.0
        # Consumer surplus equals the neutral single-class surplus.
        from repro.core.surplus import neutral_consumer_surplus
        assert outcome.consumer_surplus == pytest.approx(
            neutral_consumer_surplus(medium_random_population, 5.0), rel=1e-9)

    def test_kappa_one_affordability_split(self):
        population = rich_and_poor_population()
        outcome = competitive_equilibrium(population, nu=1.0,
                                          strategy=ISPStrategy(1.0, 0.5))
        premium_names = {population.names[i] for i in outcome.premium_indices}
        assert premium_names == {"rich-1", "rich-2"}
        ordinary_names = {population.names[i] for i in outcome.ordinary_indices}
        assert ordinary_names == {"poor-1", "poor-2"}
        # Ordinary class has zero capacity under kappa = 1.
        assert outcome.ordinary_capacity == 0.0
        assert outcome.ordinary_carried_rate == pytest.approx(0.0)

    def test_zero_capacity_system(self, two_provider_population):
        outcome = competitive_equilibrium(two_provider_population, nu=0.0,
                                          strategy=ISPStrategy(1.0, 0.2))
        assert outcome.aggregate_rate == 0.0
        assert outcome.consumer_surplus == 0.0

    def test_empty_population(self):
        outcome = competitive_equilibrium(Population([]), nu=1.0,
                                          strategy=ISPStrategy(0.5, 0.5))
        assert outcome.ordinary_indices == ()
        assert outcome.premium_indices == ()


class TestCompetitiveEquilibrium:
    def test_partition_is_exhaustive_and_disjoint(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, nu=3.0,
                                          strategy=ISPStrategy(0.6, 0.4))
        ordinary = set(outcome.ordinary_indices)
        premium = set(outcome.premium_indices)
        assert ordinary.isdisjoint(premium)
        assert ordinary | premium == set(range(len(medium_random_population)))

    def test_equilibrium_certificate(self, medium_random_population):
        """The solver converges; any residual throughput-taking violators are
        a tiny minority of heavy CPs (the documented finite-N slack)."""
        game = CPPartitionGame(medium_random_population, nu=3.0,
                               strategy=ISPStrategy(0.6, 0.4))
        outcome = game.competitive_equilibrium()
        assert outcome.converged
        violators = game.verify_competitive(outcome)
        assert len(violators) <= max(2, len(medium_random_population) // 20)

    @pytest.mark.parametrize("kappa,price", [(1.0, 0.2), (1.0, 0.7), (0.5, 0.5),
                                             (0.3, 0.1), (0.8, 0.9)])
    def test_equilibrium_across_strategies(self, medium_random_population, kappa, price):
        game = CPPartitionGame(medium_random_population, nu=8.0,
                               strategy=ISPStrategy(kappa, price))
        outcome = game.competitive_equilibrium()
        assert outcome.converged
        violations = game.verify_competitive(outcome)
        assert len(violations) <= max(2, len(medium_random_population) // 20)

    def test_exact_equilibrium_when_premium_only(self, medium_random_population):
        """kappa = 1 with a clear price gives an exact (violation-free)
        competitive equilibrium: the affordability threshold decides."""
        game = CPPartitionGame(medium_random_population, nu=8.0,
                               strategy=ISPStrategy(1.0, 0.5))
        outcome = game.competitive_equilibrium()
        assert outcome.converged
        assert game.verify_competitive(outcome) == []

    def test_expost_switch_gains_accounting(self, medium_random_population):
        """The ex-post audit returns finite relative gains for any CP."""
        game = CPPartitionGame(medium_random_population, nu=5.0,
                               strategy=ISPStrategy(0.7, 0.4))
        outcome = game.competitive_equilibrium()
        names = list(medium_random_population.names[:5])
        gains = game.expost_switch_gains(outcome, names=names)
        assert set(gains) == set(names)
        assert all(np.isfinite(v) for v in gains.values())
        assert all(-2.0 - 1e-9 <= v <= 2.0 + 1e-9 for v in gains.values())

    def test_expensive_premium_is_empty(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, nu=3.0,
                                          strategy=ISPStrategy(0.5, 10.0))
        assert outcome.premium_indices == ()

    def test_premium_members_can_afford_price(self, medium_random_population):
        price = 0.6
        outcome = competitive_equilibrium(medium_random_population, nu=3.0,
                                          strategy=ISPStrategy(0.9, price))
        for index in outcome.premium_indices:
            assert medium_random_population[index].revenue_rate > price

    def test_capacity_accounting(self, medium_random_population):
        strategy = ISPStrategy(0.7, 0.3)
        nu = 4.0
        outcome = competitive_equilibrium(medium_random_population, nu, strategy)
        assert outcome.premium_capacity == pytest.approx(0.7 * nu)
        assert outcome.ordinary_capacity == pytest.approx(0.3 * nu)
        assert outcome.premium_carried_rate <= outcome.premium_capacity + 1e-9
        assert outcome.ordinary_carried_rate <= outcome.ordinary_capacity + 1e-9
        assert outcome.aggregate_rate == pytest.approx(
            outcome.premium_carried_rate + outcome.ordinary_carried_rate)
        assert 0.0 <= outcome.capacity_utilization <= 1.0

    def test_isp_surplus_formula(self, medium_random_population):
        strategy = ISPStrategy(1.0, 0.4)
        outcome = competitive_equilibrium(medium_random_population, 3.0, strategy)
        assert outcome.isp_surplus == pytest.approx(
            0.4 * outcome.premium_carried_rate)

    def test_assignment_by_name(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, 3.0,
                                          ISPStrategy(0.5, 0.5))
        assignment = outcome.assignment_by_name()
        assert len(assignment) == len(medium_random_population)
        assert set(assignment.values()) <= {"ordinary", "premium"}

    def test_premium_share_of_providers(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, 3.0,
                                          ISPStrategy(1.0, 0.5))
        expected = len(outcome.premium_indices) / len(medium_random_population)
        assert outcome.premium_share_of_providers == pytest.approx(expected)

    def test_cp_utilities_sign(self, medium_random_population):
        outcome = competitive_equilibrium(medium_random_population, 3.0,
                                          ISPStrategy(0.8, 0.4))
        utilities = outcome.cp_utilities()
        assert len(utilities) == len(medium_random_population)
        # Premium members pay c <= v, so every CP earns a non-negative profit.
        assert all(value >= -1e-12 for value in utilities.values())

    def test_throughput_estimator_validation(self, two_provider_population):
        with pytest.raises(ModelValidationError):
            CPPartitionGame(two_provider_population, 1.0, ISPStrategy(0.5, 0.5),
                            throughput_estimator="bogus")

    def test_negative_nu_rejected(self, two_provider_population):
        with pytest.raises(ModelValidationError):
            CPPartitionGame(two_provider_population, -1.0, ISPStrategy(0.5, 0.5))

    def test_max_member_estimator_also_converges(self, medium_random_population):
        game = CPPartitionGame(medium_random_population, 3.0, ISPStrategy(1.0, 0.4),
                               throughput_estimator="max_member")
        outcome = game.competitive_equilibrium()
        assert game.verify_competitive(outcome) == []


class TestNashEquilibrium:
    def test_nash_no_violations_small_population(self):
        population = rich_and_poor_population()
        game = CPPartitionGame(population, nu=1.5, strategy=ISPStrategy(0.6, 0.3))
        outcome = game.nash_equilibrium()
        assert outcome.converged
        assert game.verify_nash(outcome) == []
        assert outcome.equilibrium_kind == "nash"

    def test_nash_respects_affordability(self):
        population = rich_and_poor_population()
        outcome = nash_equilibrium(population, nu=1.5, strategy=ISPStrategy(1.0, 0.5))
        premium_names = {population.names[i] for i in outcome.premium_indices}
        assert premium_names <= {"rich-1", "rich-2"}

    def test_nash_with_kappa_zero(self):
        population = rich_and_poor_population()
        outcome = nash_equilibrium(population, nu=1.5, strategy=ISPStrategy(0.0, 0.5))
        assert outcome.premium_indices == ()

    def test_nash_and_competitive_agree_on_small_population(self):
        """With few CPs, the two equilibrium concepts usually coincide."""
        population = rich_and_poor_population()
        strategy = ISPStrategy(1.0, 0.4)
        nash = nash_equilibrium(population, nu=1.0, strategy=strategy)
        competitive = competitive_equilibrium(population, nu=1.0, strategy=strategy)
        assert set(nash.premium_indices) == set(competitive.premium_indices)

    def test_initial_premium_seed(self):
        population = rich_and_poor_population()
        game = CPPartitionGame(population, nu=1.5, strategy=ISPStrategy(0.7, 0.3))
        outcome = game.nash_equilibrium(initial_premium=[0, 1])
        assert game.verify_nash(outcome) == []


class TestTieBreaking:
    def test_equal_utility_goes_to_ordinary(self):
        """A CP indifferent between the classes joins the ordinary class."""
        population = Population([
            ContentProvider(name="indifferent", alpha=0.5, theta_hat=1.0, beta=0.0,
                            revenue_rate=0.5, utility_rate=1.0),
        ])
        # With beta=0 demand is always 1; a symmetric split (kappa=0.5) with a
        # free premium class gives identical throughput in both classes when
        # alone, so utilities tie exactly and the CP must pick ordinary.
        outcome = competitive_equilibrium(population, nu=2.0,
                                          strategy=ISPStrategy(0.5, 0.0))
        assert outcome.premium_indices == ()

    def test_revenue_below_price_never_premium(self):
        population = rich_and_poor_population()
        outcome = competitive_equilibrium(population, nu=1.0,
                                          strategy=ISPStrategy(1.0, 0.95))
        assert outcome.premium_indices == ()
