"""Tests for the oligopoly competition game (Lemma 4, Theorem 6)."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.duopoly import DuopolyGame
from repro.core.oligopoly import OligopolyGame
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY, strategy_grid


@pytest.fixture
def duopoly_shares():
    return {"ISP-A": 0.5, "ISP-B": 0.5}


@pytest.fixture
def game(small_random_population, duopoly_shares):
    return OligopolyGame(small_random_population, total_nu=4.0,
                         capacity_shares=duopoly_shares)


class TestConstruction:
    def test_shares_must_sum_to_one(self, small_random_population):
        with pytest.raises(ModelValidationError):
            OligopolyGame(small_random_population, 4.0, {"a": 0.5, "b": 0.4})

    def test_shares_must_be_positive(self, small_random_population):
        with pytest.raises(ModelValidationError):
            OligopolyGame(small_random_population, 4.0, {"a": 1.0, "b": 0.0})

    def test_needs_at_least_one_isp(self, small_random_population):
        with pytest.raises(ModelValidationError):
            OligopolyGame(small_random_population, 4.0, {})

    def test_invalid_nu(self, small_random_population):
        with pytest.raises(ModelValidationError):
            OligopolyGame(small_random_population, -1.0, {"a": 1.0})


class TestOutcome:
    def test_missing_strategy_rejected(self, game):
        with pytest.raises(ModelValidationError):
            game.outcome({"ISP-A": PUBLIC_OPTION_STRATEGY})

    def test_outcome_accounting(self, game):
        strategies = {"ISP-A": ISPStrategy(1.0, 0.3), "ISP-B": PUBLIC_OPTION_STRATEGY}
        outcome = game.outcome(strategies)
        assert sum(outcome.market_shares.values()) == pytest.approx(1.0)
        assert outcome.consumer_surplus >= 0.0
        assert outcome.isp_surplus("ISP-B") == 0.0
        assert outcome.isp_surplus("ISP-A") >= 0.0
        assert outcome.market_share("ISP-A") == outcome.market_shares["ISP-A"]


class TestLemma4:
    def test_homogeneous_symmetric_duopoly(self, game):
        report = game.verify_proportional_shares(ISPStrategy(1.0, 0.3))
        assert report["holds"], report

    def test_homogeneous_neutral_strategy(self, game):
        report = game.verify_proportional_shares(PUBLIC_OPTION_STRATEGY)
        assert report["holds"], report

    def test_asymmetric_capacities_three_isps(self, small_random_population):
        game = OligopolyGame(small_random_population, total_nu=4.0,
                             capacity_shares={"a": 0.5, "b": 0.3, "c": 0.2},
                             migration_iterations=200)
        report = game.verify_proportional_shares(ISPStrategy(0.8, 0.4),
                                                 tolerance=0.03)
        assert report["holds"], report
        assert report["max_gap"] <= 0.03


class TestBestResponse:
    def test_best_response_is_best_on_grid(self, game):
        candidates = strategy_grid(kappas=(1.0,), prices=(0.2, 0.6),
                                   include_public_option=True)
        baseline = {"ISP-A": candidates[0], "ISP-B": candidates[0]}
        best, best_outcome, outcomes = game.best_response(
            "ISP-A", baseline, candidates, objective="market_share")
        assert best in candidates
        assert len(outcomes) == len(candidates)
        assert best_outcome.market_share("ISP-A") == pytest.approx(
            max(o.market_share("ISP-A") for o in outcomes))

    def test_best_response_validation(self, game):
        candidates = [PUBLIC_OPTION_STRATEGY]
        baseline = {"ISP-A": PUBLIC_OPTION_STRATEGY, "ISP-B": PUBLIC_OPTION_STRATEGY}
        with pytest.raises(ModelValidationError):
            game.best_response("nope", baseline, candidates)
        with pytest.raises(ModelValidationError):
            game.best_response("ISP-A", baseline, [])
        with pytest.raises(ModelValidationError):
            game.best_response("ISP-A", baseline, candidates, objective="bogus")

    def test_theorem6_alignment_on_small_grid(self, game):
        """The market-share best response loses little consumer surplus
        relative to the surplus best response (Theorem 6)."""
        candidates = strategy_grid(kappas=(1.0,), prices=(0.2, 0.5, 0.8),
                                   include_public_option=True)
        baseline = {"ISP-A": candidates[0], "ISP-B": candidates[1]}
        _, share_outcome, _ = game.best_response("ISP-A", baseline, candidates,
                                                 objective="market_share")
        _, phi_outcome, _ = game.best_response("ISP-A", baseline, candidates,
                                               objective="consumer_surplus")
        scale = max(abs(phi_outcome.consumer_surplus), 1e-9)
        shortfall = phi_outcome.consumer_surplus - share_outcome.consumer_surplus
        assert shortfall <= 0.10 * scale


class TestAgainstDuopolySolver:
    """At N=2 the oligopoly game must agree exactly with ``DuopolyGame``.

    Both front-ends drive the identical ``solve_market_split`` bisection
    (same ISP order, same tolerances), so the agreement is exact equality,
    not approximate.
    """

    @pytest.mark.parametrize("strategy", [ISPStrategy(1.0, 0.3),
                                          ISPStrategy(0.6, 0.1),
                                          PUBLIC_OPTION_STRATEGY])
    def test_two_provider_outcomes_pin_to_duopoly(self, small_random_population,
                                                  strategy):
        duopoly = DuopolyGame(small_random_population, total_nu=4.0,
                              strategic_capacity_share=0.5)
        oligopoly = OligopolyGame(
            small_random_population, total_nu=4.0,
            capacity_shares={"ISP-I": 0.5, "ISP-J": 0.5},
            migration_tolerance=duopoly.migration_tolerance,
            migration_iterations=duopoly.migration_iterations)
        expected = duopoly.outcome(strategy)
        actual = oligopoly.outcome({"ISP-I": strategy,
                                    "ISP-J": PUBLIC_OPTION_STRATEGY})
        assert actual.market_share("ISP-I") == expected.market_share
        assert actual.market_share("ISP-J") == expected.other_market_share
        assert actual.consumer_surplus == expected.consumer_surplus
        assert actual.isp_surplus("ISP-I") == expected.isp_surplus
        assert actual.isp_surplus("ISP-J") == expected.other_isp_surplus
        assert actual.split.common_surplus == expected.split.common_surplus

    def test_asymmetric_capacity_share_pins_too(self, small_random_population):
        duopoly = DuopolyGame(small_random_population, total_nu=3.0,
                              strategic_capacity_share=0.7)
        oligopoly = OligopolyGame(
            small_random_population, total_nu=3.0,
            capacity_shares={"ISP-I": 0.7, "ISP-J": 0.3},
            migration_tolerance=duopoly.migration_tolerance,
            migration_iterations=duopoly.migration_iterations)
        strategy = ISPStrategy(1.0, 0.4)
        expected = duopoly.outcome(strategy)
        actual = oligopoly.outcome({"ISP-I": strategy,
                                    "ISP-J": PUBLIC_OPTION_STRATEGY})
        assert actual.market_shares == expected.split.shares
        assert actual.consumer_surplus == expected.consumer_surplus


class TestMultiProviderInvariants:
    """Share/surplus invariants on the 3- and 4-ISP tatonnement path."""

    @pytest.mark.parametrize("capacity_shares", [
        {"a": 0.5, "b": 0.3, "c": 0.2},
        {"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1},
    ])
    def test_share_and_surplus_invariants(self, small_random_population,
                                          capacity_shares):
        game = OligopolyGame(small_random_population, total_nu=4.0,
                             capacity_shares=capacity_shares,
                             migration_iterations=200)
        strategies = {name: (ISPStrategy(1.0, 0.3) if name == "a"
                             else PUBLIC_OPTION_STRATEGY)
                      for name in capacity_shares}
        outcome = game.outcome(strategies)
        shares = outcome.market_shares
        assert set(shares) == set(capacity_shares)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share >= 0.0 for share in shares.values())
        # Public Option ISPs sell no premium class: zero ISP surplus.
        for name in capacity_shares:
            if strategies[name] is PUBLIC_OPTION_STRATEGY:
                assert outcome.isp_surplus(name) == 0.0
            else:
                assert outcome.isp_surplus(name) >= 0.0
        # The aggregate surplus is the share-weighted mean of per-ISP levels.
        weighted = sum(shares[name] * outcome.split.surpluses[name]
                       for name in shares)
        assert outcome.consumer_surplus == pytest.approx(weighted, rel=1e-12)
        assert outcome.consumer_surplus >= 0.0

    @pytest.mark.parametrize("count", [3, 4])
    def test_homogeneous_profile_tracks_capacity_shares(
            self, small_random_population, count):
        names = [f"isp{i}" for i in range(count)]
        capacity_shares = {name: 1.0 / count for name in names}
        game = OligopolyGame(small_random_population, total_nu=4.0,
                             capacity_shares=capacity_shares,
                             migration_iterations=200)
        outcome = game.homogeneous_outcome(ISPStrategy(1.0, 0.3))
        # Lemma 4: under homogeneous strategies the capacity-proportional
        # split equalises surplus, so the solver should stay close to it.
        assert outcome.share_capacity_gap <= 0.05
        assert sum(outcome.market_shares.values()) == pytest.approx(1.0)


class TestNashSearch:
    def test_iterated_best_response_returns_profile(self, game):
        candidates = strategy_grid(kappas=(1.0,), prices=(0.2, 0.6),
                                   include_public_option=True)
        profile, outcome, converged = game.find_nash_equilibrium(
            candidates, objective="market_share", max_rounds=3)
        assert set(profile) == {"ISP-A", "ISP-B"}
        assert all(strategy in candidates for strategy in profile.values())
        assert sum(outcome.market_shares.values()) == pytest.approx(1.0)

    def test_empty_candidates_rejected(self, game):
        with pytest.raises(ModelValidationError):
            game.find_nash_equilibrium([], objective="market_share")
