"""Tests for the discontinuity metrics of Equation (9)."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.core.alignment import (
    capacity_surplus_profile,
    market_share_discontinuity,
    surplus_discontinuity,
)
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY


class TestSurplusDiscontinuity:
    def test_monotone_curve_has_zero_gap(self):
        assert surplus_discontinuity([1.0, 2.0, 3.0, 3.0, 5.0]) == 0.0

    def test_single_drop(self):
        assert surplus_discontinuity([1.0, 4.0, 2.5, 5.0]) == pytest.approx(1.5)

    def test_largest_of_several_drops(self):
        assert surplus_discontinuity([3.0, 1.0, 4.0, 0.5, 6.0]) == pytest.approx(3.5)

    def test_gap_measured_against_running_maximum(self):
        # The drop from 5 (earlier max) to 1 counts, not just 2 -> 1.
        assert surplus_discontinuity([5.0, 2.0, 1.0]) == pytest.approx(4.0)

    def test_single_sample(self):
        assert surplus_discontinuity([2.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ModelValidationError):
            surplus_discontinuity([])


class TestMarketShareDiscontinuity:
    def test_perfectly_aligned_is_zero(self):
        shares = [0.1, 0.2, 0.3, 0.4]
        surpluses = [1.0, 2.0, 3.0, 4.0]
        assert market_share_discontinuity(shares, surpluses) == 0.0

    def test_misaligned_pair(self):
        # Sample with share 0.6 has lower surplus than the one with 0.2.
        shares = [0.2, 0.6]
        surpluses = [5.0, 1.0]
        assert market_share_discontinuity(shares, surpluses) == pytest.approx(0.4)

    def test_equal_surplus_counts(self):
        shares = [0.7, 0.3]
        surpluses = [2.0, 2.0]
        assert market_share_discontinuity(shares, surpluses) == pytest.approx(0.4)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelValidationError):
            market_share_discontinuity([0.5], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ModelValidationError):
            market_share_discontinuity([], [])


class TestCapacitySurplusProfile:
    def test_profile_is_mostly_increasing(self, small_random_population):
        nus, phis = capacity_surplus_profile(
            small_random_population, ISPStrategy(1.0, 0.4), [0.5, 1.0, 3.0, 10.0])
        assert nus == sorted(nus)
        assert len(phis) == 4
        # Equation (9): the downward gaps are small relative to the level.
        epsilon = surplus_discontinuity(phis)
        assert epsilon <= 0.25 * max(phis)

    def test_neutral_strategy_profile_is_monotone(self, small_random_population):
        _, phis = capacity_surplus_profile(
            small_random_population, PUBLIC_OPTION_STRATEGY, [0.5, 1.0, 3.0, 10.0])
        assert surplus_discontinuity(phis) == pytest.approx(0.0, abs=1e-9)

    def test_empty_grid_rejected(self, small_random_population):
        with pytest.raises(ModelValidationError):
            capacity_surplus_profile(small_random_population,
                                     PUBLIC_OPTION_STRATEGY, [])
