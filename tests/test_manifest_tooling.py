"""Tests for the run-manifest comparison tooling (CI determinism gate)."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "manifest_diff.py"


def write_manifest(path: pathlib.Path, entries: dict[str, str],
                   scale: str = "smoke", solver: dict | None = None) -> None:
    payload = {
        "schema": 1,
        "kind": "repro-netneutrality/run-manifest",
        "scale": scale,
        "experiments": {
            name: {"artifact": f"{name}.json", "sha256": sha,
                   "bytes": 100, "failed_findings": []}
            for name, sha in entries.items()
        },
    }
    if solver is not None:
        payload["solver"] = solver
    path.write_text(json.dumps(payload), encoding="utf-8")


def run_diff(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SCRIPT), *args],
                          capture_output=True, text=True)


class TestManifestDiff:
    def test_ok_on_identical_manifests(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64, "THM4": "b" * 64})
        write_manifest(current, {"FIG2": "a" * 64, "THM4": "b" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_fails_on_hash_mismatch(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64})
        write_manifest(current, {"FIG2": "c" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode == 1
        assert "HASH MISMATCH" in result.stdout

    def test_fails_on_missing_experiment(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64, "THM4": "b" * 64})
        write_manifest(current, {"FIG2": "a" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode == 1
        assert "golden-only" in result.stdout

    def test_fails_on_scale_mismatch(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64}, scale="smoke")
        write_manifest(current, {"FIG2": "a" * 64}, scale="default")
        result = run_diff(str(golden), str(current))
        assert result.returncode == 1
        assert "scale mismatch" in result.stdout

    def test_fails_on_solver_mismatch(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64},
                       solver={"backend": "reference"})
        write_manifest(current, {"FIG2": "a" * 64},
                       solver={"backend": "numba"})
        result = run_diff(str(golden), str(current))
        assert result.returncode == 1
        assert "solver mismatch" in result.stdout

    def test_solver_absent_in_both_is_ok(self, tmp_path):
        # Pre-backend manifests carry no solver block; comparing two of
        # them must not trip the solver check.
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64})
        write_manifest(current, {"FIG2": "a" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode == 0

    def test_rejects_non_manifest_file(self, tmp_path):
        golden = tmp_path / "golden.json"
        golden.write_text("[]")
        current = tmp_path / "current.json"
        write_manifest(current, {"FIG2": "a" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode != 0
        assert "not a run manifest" in result.stderr

    def test_rejects_unsupported_schema_version(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64})
        payload = json.loads(golden.read_text())
        payload["schema"] = 99
        golden.write_text(json.dumps(payload))
        write_manifest(current, {"FIG2": "a" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode != 0
        assert "unsupported manifest schema" in result.stderr

    def test_rejects_entry_without_sha256(self, tmp_path):
        golden = tmp_path / "golden.json"
        current = tmp_path / "current.json"
        write_manifest(golden, {"FIG2": "a" * 64})
        payload = json.loads(golden.read_text())
        del payload["experiments"]["FIG2"]["sha256"]
        golden.write_text(json.dumps(payload))
        write_manifest(current, {"FIG2": "a" * 64})
        result = run_diff(str(golden), str(current))
        assert result.returncode != 0
        assert "lacks a sha256" in result.stderr

    def test_real_golden_manifest_self_compare(self, tmp_path):
        golden = (pathlib.Path(__file__).resolve().parent
                  / "runner" / "golden" / "smoke" / "manifest.json")
        result = run_diff(str(golden), str(golden))
        assert result.returncode == 0, result.stderr
