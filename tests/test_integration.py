"""End-to-end integration tests: the paper's storyline on a small population.

Each test follows one of the paper's arguments from workload generation
through the game layer to the welfare conclusion, exercising the public API
the way the examples and benchmarks do.
"""

from __future__ import annotations

import pytest

from repro import (
    DuopolyGame,
    ISPStrategy,
    MonopolyGame,
    NEUTRAL_STRATEGY,
    OligopolyGame,
    PUBLIC_OPTION_STRATEGY,
    compare_regimes,
    solve_rate_equilibrium,
    strategy_grid,
)
from repro.workloads.populations import PopulationSpec, random_population


@pytest.fixture(scope="module")
def population():
    return random_population(PopulationSpec(count=150), seed=42)


@pytest.fixture(scope="module")
def scarce_nu(population):
    return 0.2 * population.unconstrained_per_capita_load


@pytest.fixture(scope="module")
def abundant_nu(population):
    return 0.85 * population.unconstrained_per_capita_load


class TestMonopolyStory:
    """Section III: an unregulated monopolist hurts consumers when capacity
    is abundant; neutral regulation restores (most of) the surplus."""

    def test_unregulated_vs_neutral(self, population, abundant_nu):
        game = MonopolyGame(population, abundant_nu)
        grid = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.45, 0.7))
        selfish = game.revenue_optimal(grid)
        neutral = game.neutral_outcome()
        assert selfish.isp_surplus > 0.0
        assert neutral.consumer_surplus >= selfish.consumer_surplus - 1e-9

    def test_monopolist_prefers_kappa_one(self, population, abundant_nu):
        game = MonopolyGame(population, abundant_nu)
        grid = strategy_grid(kappas=(0.25, 0.5, 0.75, 1.0), prices=(0.45,))
        best = game.revenue_optimal(grid)
        assert best.strategy.kappa == 1.0

    def test_scarce_capacity_keeps_premium_saturated(self, population, scarce_nu):
        game = MonopolyGame(population, scarce_nu)
        outcome = game.outcome(ISPStrategy(1.0, 0.2))
        assert outcome.premium_saturated
        assert outcome.isp_surplus == pytest.approx(0.2 * scarce_nu, rel=1e-6)


class TestPublicOptionStory:
    """Section IV-A: the Public Option aligns the strategic ISP with consumers
    and achieves at least the neutral-regulation surplus."""

    def test_public_option_beats_neutral_regulation(self, population, abundant_nu):
        grid = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.45, 0.7),
                             include_public_option=True)
        duopoly = DuopolyGame(population, abundant_nu, 0.5)
        best_for_share = duopoly.best_response(grid, objective="market_share")
        neutral_phi = MonopolyGame(population, abundant_nu).neutral_outcome().consumer_surplus
        assert best_for_share.consumer_surplus >= neutral_phi - 0.02 * abs(neutral_phi)

    def test_bad_strategies_are_punished_with_market_share(self, population,
                                                           abundant_nu):
        duopoly = DuopolyGame(population, abundant_nu, 0.5)
        reasonable = duopoly.outcome(ISPStrategy(1.0, 0.3))
        extortionate = duopoly.outcome(ISPStrategy(1.0, 0.95))
        assert extortionate.market_share <= reasonable.market_share + 1e-9
        assert extortionate.market_share <= 0.25

    def test_public_option_always_retains_surplus_floor(self, population,
                                                        abundant_nu):
        """Whatever the strategic ISP does, consumers keep at least the
        surplus of the Public Option's capacity alone."""
        duopoly = DuopolyGame(population, abundant_nu, 0.5)
        floor = solve_rate_equilibrium(population, 0.5 * abundant_nu).consumer_surplus()
        for price in (0.1, 0.5, 0.9):
            outcome = duopoly.outcome(ISPStrategy(1.0, price))
            assert outcome.consumer_surplus >= floor * (1.0 - 1e-6)


class TestOligopolyStory:
    """Section IV-B: competition aligns selfish strategies with consumers and
    market shares track capacity shares."""

    def test_homogeneous_duopoly_shares_follow_capacity(self, population):
        nu = 0.4 * population.unconstrained_per_capita_load
        game = OligopolyGame(population, nu, {"big": 0.7, "small": 0.3})
        outcome = game.homogeneous_outcome(ISPStrategy(1.0, 0.3))
        assert outcome.market_share("big") == pytest.approx(0.7, abs=0.03)
        assert outcome.market_share("small") == pytest.approx(0.3, abs=0.03)

    def test_regime_ranking(self, population, abundant_nu):
        comparison = compare_regimes(
            population, abundant_nu,
            strategy_grid(kappas=(1.0,), prices=(0.2, 0.45, 0.7)))
        assert comparison.paper_ordering_holds(tolerance=0.02)
        ranking = [r.regime for r in comparison.ranking()]
        # The unregulated monopoly is never the best regime for consumers.
        assert ranking[0] != "unregulated_monopoly"


class TestNeutralAndPublicOptionEquivalence:
    def test_neutral_strategy_equals_public_option_strategy(self):
        assert NEUTRAL_STRATEGY == PUBLIC_OPTION_STRATEGY

    def test_full_capacity_public_option_is_best_possible(self, population):
        """A Public Option owning all capacity reproduces the neutral optimum."""
        nu = population.unconstrained_per_capita_load
        phi_neutral = solve_rate_equilibrium(population, nu).consumer_surplus()
        game = MonopolyGame(population, nu)
        assert game.neutral_outcome().consumer_surplus == pytest.approx(
            phi_neutral, rel=1e-9)
