"""SolverConfig: defaults, validation, resolution and cache identity.

These tests pin the satellite guarantees of the backend layer: the
per-game tolerance defaults stay exactly what each game documented before
SolverConfig existed, explicit arguments beat config values beat game
defaults, cache keys never alias across configs, and the numba name
degrades gracefully to the reference backend.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    SolverConfig,
    active_config,
    available_backends,
    default_config,
    get_backend,
    numba_available,
    reference_backend,
    resolve_config,
    use_config,
)
from repro.backends import registry as backends_registry
from repro.core.cp_game import CPPartitionGame
from repro.core.duopoly import DUOPOLY_MIGRATION_TOLERANCE, DuopolyGame
from repro.core.migration import DEFAULT_MIGRATION_TOLERANCE
from repro.core.oligopoly import OLIGOPOLY_MIGRATION_TOLERANCE, OligopolyGame
from repro.core.strategy import PUBLIC_OPTION_STRATEGY
from repro.errors import ModelValidationError
from repro.network.allocation import MaxMinFairAllocation
from repro.runner.registry import get_spec


# --------------------------------------------------------------------------- #
# Defaults and validation
# --------------------------------------------------------------------------- #

def test_default_config_pins_pre_refactor_tolerances():
    config = SolverConfig()
    assert config.backend == "reference"
    assert config.migration_tolerance is None
    assert config.switching_tolerance == 1e-6
    assert config.surplus_tolerance == 1e-9
    assert config.bisection_tolerance == 1e-13
    assert config.cache_policy == "shared"


@pytest.mark.parametrize("kwargs", [
    {"backend": "fortran"},
    {"migration_tolerance": 0.0},
    {"migration_tolerance": -1e-4},
    {"switching_tolerance": -1e-6},
    {"surplus_tolerance": -1e-9},
    {"bisection_tolerance": 0.0},
    {"cache_policy": "write-through"},
])
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ModelValidationError):
        SolverConfig(**kwargs)


def test_backend_env_var_selects_default_backend(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert default_config().backend == "reference"
    monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
    assert default_config().backend == "numba"
    monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
    assert default_config().backend == "reference"


def test_default_config_is_interned_per_backend(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert default_config() is default_config()


# --------------------------------------------------------------------------- #
# Per-game migration/switching defaults (the inconsistency satellite)
# --------------------------------------------------------------------------- #

def test_documented_per_game_defaults_are_pinned():
    # These three constants document the historical (and deliberate)
    # asymmetry: the duopoly bisection is tighter than the oligopoly one.
    assert DUOPOLY_MIGRATION_TOLERANCE == 1e-4
    assert OLIGOPOLY_MIGRATION_TOLERANCE == 1e-3
    assert DEFAULT_MIGRATION_TOLERANCE == 1e-4


def test_game_defaults_without_config(small_random_population):
    duopoly = DuopolyGame(small_random_population, 100.0, 0.5)
    assert duopoly.migration_tolerance == DUOPOLY_MIGRATION_TOLERANCE
    oligopoly = OligopolyGame(small_random_population, 100.0,
                              {"a": 0.5, "b": 0.5})
    assert oligopoly.migration_tolerance == OLIGOPOLY_MIGRATION_TOLERANCE
    cp_game = CPPartitionGame(small_random_population, 100.0,
                              PUBLIC_OPTION_STRATEGY, MaxMinFairAllocation())
    assert cp_game.switching_tolerance == 1e-6
    assert cp_game.config.switching_tolerance == 1e-6


def test_config_overrides_game_default_and_explicit_beats_config(
        small_random_population):
    config = SolverConfig(migration_tolerance=1e-5, switching_tolerance=1e-7)
    duopoly = DuopolyGame(small_random_population, 100.0, 0.5, config=config)
    assert duopoly.migration_tolerance == 1e-5
    explicit = DuopolyGame(small_random_population, 100.0, 0.5,
                           migration_tolerance=1e-2, config=config)
    assert explicit.migration_tolerance == 1e-2
    cp_game = CPPartitionGame(small_random_population, 100.0,
                              PUBLIC_OPTION_STRATEGY, MaxMinFairAllocation(),
                              config=config)
    assert cp_game.switching_tolerance == 1e-7
    cp_explicit = CPPartitionGame(small_random_population, 100.0,
                                  PUBLIC_OPTION_STRATEGY,
                                  MaxMinFairAllocation(),
                                  switching_tolerance=1e-3, config=config)
    assert cp_explicit.switching_tolerance == 1e-3


# --------------------------------------------------------------------------- #
# Resolution: explicit > ambient > default
# --------------------------------------------------------------------------- #

def test_resolve_config_prefers_explicit_then_ambient(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    explicit = SolverConfig(switching_tolerance=1e-8)
    ambient = SolverConfig(switching_tolerance=1e-7)
    assert active_config() is None
    assert resolve_config(None) == SolverConfig()
    with use_config(ambient):
        assert active_config() is ambient
        assert resolve_config(None) is ambient
        assert resolve_config(explicit) is explicit
    assert active_config() is None


def test_games_inherit_ambient_config(small_random_population):
    ambient = SolverConfig(migration_tolerance=2e-5)
    with use_config(ambient):
        game = DuopolyGame(small_random_population, 100.0, 0.5)
    assert game.config is ambient
    assert game.migration_tolerance == 2e-5


# --------------------------------------------------------------------------- #
# Cache identity
# --------------------------------------------------------------------------- #

def test_cache_keys_distinct_across_tolerances():
    keys = {SolverConfig().cache_key(),
            SolverConfig(switching_tolerance=1e-7).cache_key(),
            SolverConfig(surplus_tolerance=1e-8).cache_key(),
            SolverConfig(bisection_tolerance=1e-12).cache_key(),
            SolverConfig(migration_tolerance=1e-5).cache_key(),
            SolverConfig(cache_policy="bypass").cache_key()}
    assert len(keys) == 6


def test_cache_key_is_memoized():
    config = SolverConfig()
    assert config.cache_key() is config.cache_key()


@pytest.mark.skipif(numba_available(), reason="requires numba to be absent")
def test_numba_fallback_shares_cache_entries_with_reference():
    # A numba config that degraded to reference computes identical values,
    # so it must share cache entries instead of duplicating them.
    assert SolverConfig(backend="numba").cache_key() == \
        SolverConfig().cache_key()


# --------------------------------------------------------------------------- #
# Backend registry and graceful fallback
# --------------------------------------------------------------------------- #

def test_backend_names_and_reference_resolution():
    assert BACKEND_NAMES == ("reference", "numba")
    assert get_backend("reference") is reference_backend()
    assert get_backend(None) is reference_backend()
    assert "reference" in available_backends()
    with pytest.raises(ModelValidationError):
        get_backend("fortran")


@pytest.mark.skipif(numba_available(), reason="requires numba to be absent")
def test_numba_fallback_warns_once(monkeypatch):
    monkeypatch.setattr(backends_registry, "_WARNED_NUMBA_FALLBACK", False)
    with pytest.warns(RuntimeWarning, match="falling back"):
        backend = get_backend("numba")
    assert backend is reference_backend()
    assert SolverConfig(backend="numba").effective_backend() == "reference"
    # Second resolution is silent (warn-once).
    import warnings as _warnings
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        assert get_backend("numba") is reference_backend()


# --------------------------------------------------------------------------- #
# Provenance
# --------------------------------------------------------------------------- #

def test_reference_provenance_is_stable_and_numba_free():
    record = SolverConfig().provenance()
    assert record == {
        "backend": "reference",
        "backend_requested": "reference",
        "cache_policy": "shared",
        "tolerances": {"migration": None, "switching": 1e-6,
                       "surplus": 1e-9, "bisection": 1e-13},
    }
    assert "numba_version" not in record


@pytest.mark.skipif(numba_available(), reason="requires numba to be absent")
def test_fallback_provenance_records_requested_backend():
    record = SolverConfig(backend="numba").provenance()
    assert record["backend"] == "reference"
    assert record["backend_requested"] == "numba"
    assert "numba_version" not in record


def test_experiment_run_records_solver_provenance():
    result = get_spec("FIG2").run(scale="smoke")
    assert result.parameters["solver"] == SolverConfig().provenance()
    custom = SolverConfig(switching_tolerance=1e-7)
    result = get_spec("FIG2").run(scale="smoke", config=custom)
    assert result.parameters["solver"] == custom.provenance()


# --------------------------------------------------------------------------- #
# Cache policy
# --------------------------------------------------------------------------- #

def test_bypass_policy_matches_shared_results(small_random_population):
    from repro.core.monopoly import MonopolyGame
    from repro.core.strategy import ISPStrategy

    strategy = ISPStrategy(kappa=1.0, price=0.4)
    shared = MonopolyGame(small_random_population, 120.0).outcome(strategy)
    bypass_game = MonopolyGame(small_random_population, 120.0,
                               config=SolverConfig(cache_policy="bypass"))
    bypass = bypass_game.outcome(strategy)
    assert bypass.isp_surplus == shared.isp_surplus
    assert bypass.consumer_surplus == shared.consumer_surplus


def test_bypass_policy_never_touches_registered_caches(
        small_random_population):
    from repro.cache import all_cache_stats
    from repro.network.equilibrium import cached_subset_equilibrium

    config = SolverConfig(cache_policy="bypass")
    before = all_cache_stats()
    cached_subset_equilibrium(small_random_population, None, 123.456,
                              MaxMinFairAllocation(), config=config)
    after = all_cache_stats()
    for name, entry in after.items():
        assert entry["size"] == before[name]["size"], name
        assert entry["misses"] == before[name]["misses"], name
