"""Numba-kernel ≡ reference-kernel equivalence to <= 1e-10.

The numba kernels are plain Python functions that get njit-compiled only
when numba is importable, so this suite runs them *interpreted* through a
:class:`NumbaBackend` built from the undecorated functions — the kernel
arithmetic (serial tail summation, inlined binary search, fused bisection)
is validated even on machines without numba, and since ``njit`` compiles
exactly this bytecode the compiled path computes the same floating-point
operations in the same order.

The contract under test: for every profile the backends agree on carried
loads and solved caps to an absolute-plus-relative tolerance of ``1e-10``
(they differ only in summation order — numpy's pairwise tree vs. the
loop's left-to-right accumulation).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backends import NumbaBackend, SolverConfig, reference_backend
from repro.backends import registry as backends_registry
from repro.backends.numba_backend import (
    _kernel_bisect_scalar,
    _kernel_carried_grid,
    _kernel_carried_scalar,
)
from repro.network.allocation import (
    MaxMinFairAllocation,
    ProportionalFairAllocation,
    WeightedFairAllocation,
)
from repro.network.equilibrium import (
    ExponentialMaxMinProfile,
    solve_rate_equilibrium,
)
from repro.network.provider import ContentProvider, Population
from repro.workloads.archetypes import archetype_population
from repro.workloads.populations import PopulationSpec, random_population

#: The backend-contract equivalence bound (absolute + relative).
TOL = 1e-10


def python_numba_backend() -> NumbaBackend:
    """A NumbaBackend running the uncompiled (interpreted) kernels."""
    return NumbaBackend((_kernel_carried_scalar, _kernel_carried_grid,
                         _kernel_bisect_scalar))


def make_profiles(alphas, theta_hats, betas):
    """The same columns wrapped in a reference- and a numba-backed profile."""
    columns = (np.asarray(alphas, dtype=float),
               np.asarray(theta_hats, dtype=float),
               np.asarray(betas, dtype=float))
    return (ExponentialMaxMinProfile(*columns, backend=reference_backend()),
            ExponentialMaxMinProfile(*columns, backend=python_numba_backend()))


def assert_close(a: float, b: float) -> None:
    assert a == pytest.approx(b, rel=TOL, abs=TOL)


# --------------------------------------------------------------------------- #
# Fixed workloads, including every edge case the ISSUE names
# --------------------------------------------------------------------------- #

WORKLOADS = {
    "archetypes": lambda: archetype_population(),
    "random40": lambda: random_population(PopulationSpec(count=40), seed=11),
    "elastic_only": lambda: Population([
        ContentProvider(name=f"e{i}", alpha=0.5, theta_hat=1.0 + i,
                        beta=0.0, revenue_rate=0.5, utility_rate=1.0)
        for i in range(5)]),
    "stiff_betas": lambda: Population([
        ContentProvider(name=f"s{i}", alpha=0.2, theta_hat=0.5 * (i + 1),
                        beta=50.0, revenue_rate=0.5, utility_rate=1.0)
        for i in range(6)]),
    "tied_theta_hats": lambda: Population([
        ContentProvider(name=f"t{i}", alpha=1.0, theta_hat=2.0,
                        beta=float(i), revenue_rate=0.5, utility_rate=1.0)
        for i in range(4)]),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_carried_load_equivalence_on_workloads(workload):
    population = WORKLOADS[workload]()
    reference, numba_like = make_profiles(
        population.alphas, population.theta_hats, population.betas)
    caps = np.concatenate([
        np.linspace(0.0, 1.5 * reference.upper, 41),
        [1e-9, reference.upper, 10.0 * reference.upper]])
    ref_grid = reference.carried(caps)
    num_grid = numba_like.carried(caps)
    np.testing.assert_allclose(num_grid, ref_grid, rtol=TOL, atol=TOL)
    for cap in caps:
        assert_close(numba_like.carried_scalar(float(cap)),
                     reference.carried_scalar(float(cap)))


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_solve_cap_equivalence_on_workloads(workload):
    population = WORKLOADS[workload]()
    reference, numba_like = make_profiles(
        population.alphas, population.theta_hats, population.betas)
    load = reference.unconstrained_load
    for nu in (0.0, -1.0, 0.05 * load, 0.4 * load, 0.9 * load,
               load, 2.0 * load):
        ref_cap = reference.solve_cap(float(nu))
        num_cap = numba_like.solve_cap(float(nu))
        if math.isinf(ref_cap) or ref_cap == 0.0:
            # Uncongested / zero-capacity guards fire identically on both
            # paths (the numba override replicates them before the kernel).
            assert num_cap == ref_cap
        else:
            assert num_cap == pytest.approx(
                ref_cap, rel=TOL, abs=TOL * max(1.0, reference.upper))
            # Both caps must satisfy work conservation to the solver's own
            # residual tolerance (the fused kernel is a real bisection, not
            # merely close to the reference's answer).
            target = min(nu, load)
            assert abs(numba_like.carried_scalar(num_cap) - target) <= \
                1e-12 * max(1.0, target)


def test_empty_profile_edge_case():
    reference, numba_like = make_profiles([], [], [])
    assert numba_like.carried_scalar(1.0) == reference.carried_scalar(1.0) == 0.0
    assert math.isinf(numba_like.solve_cap(1.0))
    assert math.isinf(reference.solve_cap(1.0))


def test_nonpositive_caps_edge_case():
    reference, numba_like = make_profiles([1.0, 0.5], [1.0, 3.0], [2.0, 0.0])
    for cap in (0.0, -1.0):
        assert reference.carried_scalar(cap) == 0.0
        assert numba_like.carried_scalar(cap) == 0.0
    grid = np.array([-1.0, 0.0, 0.5])
    np.testing.assert_allclose(numba_like.carried(grid),
                               reference.carried(grid), rtol=TOL, atol=TOL)


# --------------------------------------------------------------------------- #
# Property tests: random columns and targets
# --------------------------------------------------------------------------- #

columns_st = st.integers(min_value=1, max_value=30).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(min_value=0.01, max_value=2.0),
                 min_size=n, max_size=n),
        st.lists(st.floats(min_value=0.05, max_value=20.0),
                 min_size=n, max_size=n),
        st.lists(st.floats(min_value=0.0, max_value=30.0),
                 min_size=n, max_size=n)))


@given(columns=columns_st,
       cap_fraction=st.floats(min_value=0.0, max_value=1.5))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_carried_scalar_property(columns, cap_fraction):
    reference, numba_like = make_profiles(*columns)
    cap = cap_fraction * reference.upper
    assert_close(numba_like.carried_scalar(cap),
                 reference.carried_scalar(cap))


@given(columns=columns_st,
       nu_fraction=st.floats(min_value=0.0, max_value=1.2))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_solve_cap_property(columns, nu_fraction):
    reference, numba_like = make_profiles(*columns)
    nu = nu_fraction * reference.unconstrained_load
    ref_cap = reference.solve_cap(float(nu))
    num_cap = numba_like.solve_cap(float(nu))
    if math.isinf(ref_cap) or math.isinf(num_cap):
        assert math.isinf(ref_cap) == math.isinf(num_cap)
    else:
        assert num_cap == pytest.approx(
            ref_cap, rel=1e-9, abs=1e-9 * max(1.0, reference.upper))


# --------------------------------------------------------------------------- #
# End-to-end: a numba-backed config through the full solver stack
# --------------------------------------------------------------------------- #

@pytest.fixture
def simulated_numba(monkeypatch):
    """Make get_backend('numba') resolve to the interpreted kernels."""
    backend = python_numba_backend()
    monkeypatch.setattr(backends_registry, "load_numba_backend",
                        lambda: backend)
    return SolverConfig(backend="numba")


@pytest.mark.parametrize("mechanism_factory", [
    MaxMinFairAllocation,
    ProportionalFairAllocation,
    lambda: WeightedFairAllocation({}, default_weight=2.0),
], ids=["maxmin", "proportional", "weighted"])
def test_rate_equilibrium_matches_reference_across_mechanisms(
        simulated_numba, mechanism_factory):
    population = random_population(PopulationSpec(count=30), seed=23)
    mechanism = mechanism_factory()
    load = population.unconstrained_per_capita_load
    for nu in (0.0, 0.3 * load, 0.8 * load, 1.5 * load):
        ref = solve_rate_equilibrium(population, nu, mechanism)
        alt = solve_rate_equilibrium(population, nu, mechanism,
                                     config=simulated_numba)
        assert alt.aggregate_rate == pytest.approx(
            ref.aggregate_rate, rel=TOL, abs=TOL)
        np.testing.assert_allclose(alt.thetas, ref.thetas,
                                   rtol=1e-9, atol=1e-9)


def test_monopoly_outcome_matches_reference(simulated_numba):
    from repro.core.monopoly import MonopolyGame
    from repro.core.strategy import ISPStrategy

    population = random_population(PopulationSpec(count=30), seed=29)
    strategy = ISPStrategy(kappa=0.8, price=0.35)
    ref = MonopolyGame(population, 100.0).outcome(strategy)
    alt = MonopolyGame(population, 100.0,
                       config=simulated_numba).outcome(strategy)
    assert alt.isp_surplus == pytest.approx(ref.isp_surplus,
                                            rel=TOL, abs=TOL)
    assert alt.consumer_surplus == pytest.approx(ref.consumer_surplus,
                                                 rel=TOL, abs=TOL)


def test_simulated_backend_has_its_own_profile_cache(simulated_numba):
    from repro.network.equilibrium import common_cap_profile

    population = archetype_population()
    mechanism = MaxMinFairAllocation()
    ref_profile = common_cap_profile(population, mechanism)
    alt_profile = common_cap_profile(population, mechanism,
                                     config=simulated_numba)
    # One cached profile per backend name — reference and numba entries
    # never alias.
    assert ref_profile is not alt_profile
    assert ref_profile is common_cap_profile(population, mechanism)
    assert alt_profile is common_cap_profile(population, mechanism,
                                             config=simulated_numba)
