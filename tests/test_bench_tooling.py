"""Tests for the benchmark summary / regression-comparison tooling."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"


def write_summary(path: pathlib.Path, timings: dict[str, float],
                  service: dict | None = None) -> None:
    benchmarks: dict[str, dict] = {name: {"seconds": seconds}
                                   for name, seconds in timings.items()}
    if service is not None:
        benchmarks["service"] = {"seconds": 1.0, "workloads": service}
    payload = {"schema": 1, "benchmarks": benchmarks}
    path.write_text(json.dumps(payload), encoding="utf-8")


def service_workload(p99_ms: float, throughput_rps: float) -> dict:
    return {"requests": 100, "concurrency": 10, "p50_ms": p99_ms / 2,
            "p99_ms": p99_ms, "throughput_rps": throughput_rps,
            "coalesce_rate": 0.8}


def run_compare(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SCRIPT), *args],
                          capture_output=True, text=True)


class TestBenchCompare:
    def test_ok_when_no_regression(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 10.0, "bench_b": 2.0})
        write_summary(current, {"bench_a": 9.0, "bench_b": 2.1})
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout or "improved" in result.stdout

    def test_fails_on_injected_regression(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 10.0, "bench_b": 2.0})
        # Synthetic regression: bench_b got 3x slower.
        write_summary(current, {"bench_a": 10.0, "bench_b": 6.0})
        result = run_compare(str(baseline), str(current), "--threshold", "1.25")
        assert result.returncode != 0
        assert "REGRESSION" in result.stdout

    def test_threshold_is_respected(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 10.0})
        write_summary(current, {"bench_a": 14.0})  # 1.4x
        assert run_compare(str(baseline), str(current),
                           "--threshold", "1.5").returncode == 0
        assert run_compare(str(baseline), str(current),
                           "--threshold", "1.3").returncode != 0

    def test_tiny_benchmarks_are_ignored(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_fast": 0.001})
        write_summary(current, {"bench_fast": 0.010})  # 10x but sub-threshold
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0

    def test_disjoint_benchmarks_do_not_fail(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_old": 5.0, "bench_both": 1.0})
        write_summary(current, {"bench_new": 5.0, "bench_both": 1.0})
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0
        assert "baseline-only" in result.stdout
        assert "new" in result.stdout

    def test_require_baseline_fails_on_missing_benchmark(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_old": 5.0, "bench_both": 1.0})
        write_summary(current, {"bench_both": 1.0})
        result = run_compare(str(baseline), str(current), "--require-baseline")
        # Distinct exit code: coverage loss, not a timing regression.
        assert result.returncode == 3
        assert "bench_old" in result.stderr

    def test_require_baseline_passes_when_all_present(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_both": 1.0})
        # Extra benchmarks in the current run are fine under the flag.
        write_summary(current, {"bench_both": 1.0, "bench_new": 2.0})
        result = run_compare(str(baseline), str(current), "--require-baseline")
        assert result.returncode == 0, result.stderr

    def test_regression_exit_code_takes_precedence(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_old": 5.0, "bench_both": 1.0})
        write_summary(current, {"bench_both": 3.0})
        result = run_compare(str(baseline), str(current), "--require-baseline")
        # Both failures apply; the timing regression (exit 1) wins so CI
        # logs point at the slowdown first.
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_accepts_flat_mapping_schema(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(json.dumps({"bench_a": 4.0}), encoding="utf-8")
        current.write_text(json.dumps({"bench_a": 4.1}), encoding="utf-8")
        assert run_compare(str(baseline), str(current)).returncode == 0

    def test_unreadable_file_is_a_usage_error(self, tmp_path):
        result = run_compare(str(tmp_path / "missing.json"),
                             str(tmp_path / "missing2.json"))
        assert result.returncode != 0


class TestServiceGate:
    def test_section_skipped_when_absent_from_both(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0})
        write_summary(current, {"bench_a": 1.0})
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0
        assert "section skipped" in result.stdout

    def test_section_skipped_when_absent_from_one_side(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"hot": service_workload(5.0, 800.0)})
        write_summary(current, {"bench_a": 1.0})
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0
        assert "no entry in current summary" in result.stdout

    def test_ok_when_service_metrics_hold(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"hot": service_workload(5.0, 800.0),
                               "cold": service_workload(40.0, 100.0)})
        write_summary(current, {"bench_a": 1.0},
                      service={"hot": service_workload(5.5, 780.0),
                               "cold": service_workload(38.0, 110.0)})
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0, result.stdout
        assert "service workloads:" in result.stdout

    def test_p99_regression_fails(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"hot": service_workload(5.0, 800.0)})
        write_summary(current, {"bench_a": 1.0},
                      service={"hot": service_workload(12.0, 800.0)})
        result = run_compare(str(baseline), str(current),
                             "--threshold", "1.5")
        assert result.returncode == 1
        assert "REGRESSION (p99" in result.stdout

    def test_throughput_regression_fails(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"hot": service_workload(5.0, 800.0)})
        write_summary(current, {"bench_a": 1.0},
                      service={"hot": service_workload(5.0, 300.0)})
        result = run_compare(str(baseline), str(current),
                             "--threshold", "1.5")
        assert result.returncode == 1
        assert "REGRESSION (throughput" in result.stdout

    def test_service_threshold_overrides_global(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"hot": service_workload(5.0, 800.0)})
        # p99 doubled: fails at the default 1.25 but passes a looser
        # service-specific threshold (tail latencies are noisy in CI).
        write_summary(current, {"bench_a": 1.0},
                      service={"hot": service_workload(10.0, 800.0)})
        assert run_compare(str(baseline), str(current)).returncode == 1
        assert run_compare(str(baseline), str(current),
                           "--service-threshold", "3.0").returncode == 0

    def test_sub_millisecond_p99_noise_ignored(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"hot": service_workload(0.10, 800.0)})
        # 5x p99 growth, but both sides are below --service-min-ms.
        write_summary(current, {"bench_a": 1.0},
                      service={"hot": service_workload(0.50, 800.0)})
        assert run_compare(str(baseline), str(current)).returncode == 0
        assert run_compare(str(baseline), str(current),
                           "--service-min-ms", "0.05").returncode == 1

    def test_disjoint_service_workloads_do_not_fail(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_summary(baseline, {"bench_a": 1.0},
                      service={"old": service_workload(5.0, 800.0)})
        write_summary(current, {"bench_a": 1.0},
                      service={"new": service_workload(5.0, 800.0)})
        result = run_compare(str(baseline), str(current))
        assert result.returncode == 0
        assert "baseline-only" in result.stdout


class TestSummaryEmission:
    def test_conftest_writes_summary(self, tmp_path, monkeypatch):
        """The harness's sessionfinish hook writes the schema we compare."""
        import importlib.util
        conftest_path = (pathlib.Path(__file__).resolve().parent.parent
                         / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest",
                                                      conftest_path)
        bench_conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_conftest)
        monkeypatch.setattr(bench_conftest, "SUMMARY_PATH",
                            tmp_path / "BENCH_summary.json")
        monkeypatch.setattr(bench_conftest, "_BENCH_TIMINGS",
                            {"bench_x": 1.25})
        monkeypatch.setattr(bench_conftest, "_BENCH_CACHE_STATS",
                            {"bench_x": {"equilibria": {"hits": 3}}})
        bench_conftest.pytest_sessionfinish(session=None, exitstatus=0)
        payload = json.loads((tmp_path / "BENCH_summary.json").read_text())
        assert payload["schema"] == 1
        assert payload["benchmarks"]["bench_x"]["seconds"] == 1.25
        assert payload["benchmarks"]["bench_x"]["caches"] == {
            "equilibria": {"hits": 3}}

    def test_partial_run_merges_into_existing_summary(self, tmp_path,
                                                      monkeypatch):
        """A `-k`-filtered run must not drop the other benchmarks' timings."""
        import importlib.util
        conftest_path = (pathlib.Path(__file__).resolve().parent.parent
                         / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest_merge",
                                                      conftest_path)
        bench_conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_conftest)
        summary = tmp_path / "BENCH_summary.json"
        write_summary(summary, {"bench_old": 9.0, "bench_x": 5.0})
        monkeypatch.setattr(bench_conftest, "SUMMARY_PATH", summary)
        monkeypatch.setattr(bench_conftest, "_BENCH_TIMINGS",
                            {"bench_x": 1.25})
        bench_conftest.pytest_sessionfinish(session=None, exitstatus=0)
        payload = json.loads(summary.read_text())
        assert payload["benchmarks"]["bench_x"]["seconds"] == 1.25
        assert payload["benchmarks"]["bench_old"]["seconds"] == 9.0
