"""Tests for NetworkSystem (the (M, mu, N) triple) and service-class outcomes."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.network.link import BottleneckLink, ServiceClassSpec
from repro.network.system import NetworkSystem


class TestConstruction:
    def test_basic_quantities(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, consumers=1000.0,
                               link=BottleneckLink(2000.0))
        assert system.nu == pytest.approx(2.0)
        assert system.required_nu == pytest.approx(5.5)

    def test_from_per_capita(self, google_netflix_skype):
        system = NetworkSystem.from_per_capita(google_netflix_skype, nu=3.0)
        assert system.nu == pytest.approx(3.0)

    def test_invalid_consumers(self, google_netflix_skype):
        with pytest.raises(ModelValidationError):
            NetworkSystem(google_netflix_skype, consumers=0.0,
                          link=BottleneckLink(1.0))


class TestAxiom4Scaling:
    def test_scaled_system_has_same_equilibrium(self, google_netflix_skype):
        base = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(2000.0))
        scaled = base.scaled(7.5)
        assert scaled.nu == pytest.approx(base.nu)
        base_eq = base.equilibrium()
        scaled_eq = scaled.equilibrium()
        for a, b in zip(base_eq.thetas, scaled_eq.thetas):
            assert a == pytest.approx(b, rel=1e-9)
        assert base.per_capita_consumer_surplus() == pytest.approx(
            scaled.per_capita_consumer_surplus())

    def test_absolute_surplus_scales_linearly(self, google_netflix_skype):
        base = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(2000.0))
        scaled = base.scaled(2.0)
        assert scaled.consumer_surplus() == pytest.approx(
            2.0 * base.consumer_surplus(), rel=1e-9)

    def test_invalid_scale_factor(self, google_netflix_skype):
        base = NetworkSystem(google_netflix_skype, 10.0, BottleneckLink(20.0))
        with pytest.raises(ModelValidationError):
            base.scaled(-1.0)


class TestSubsystems:
    def test_subsystem_capacity_share(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(2000.0))
        subsystem = system.subsystem([0, 2], capacity_share=0.5)
        assert subsystem.nu == pytest.approx(1.0)
        assert len(subsystem.population) == 2

    def test_subsystem_invalid_share(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(2000.0))
        with pytest.raises(ModelValidationError):
            system.subsystem([0], capacity_share=1.5)

    def test_class_outcome(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(2000.0))
        spec = ServiceClassSpec("premium", capacity_share=0.5, price=0.3)
        outcome = system.class_outcome(spec, [1, 2])
        assert outcome.per_capita_capacity == pytest.approx(1.0)
        assert outcome.carried_rate <= 1.0 + 1e-9
        assert outcome.isp_revenue == pytest.approx(0.3 * outcome.carried_rate)
        assert outcome.consumer_surplus >= 0.0
        assert len(outcome.population) == 2

    def test_class_outcome_saturation_flag(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(1000.0))
        congested = system.class_outcome(
            ServiceClassSpec("premium", 0.2, 0.0), [0, 1, 2])
        assert congested.is_saturated
        roomy = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(3000.0))
        abundant = roomy.class_outcome(ServiceClassSpec("premium", 1.0, 0.0), [0])
        assert not abundant.is_saturated

    def test_zero_capacity_class_is_saturated(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 1000.0, BottleneckLink(1000.0))
        outcome = system.class_outcome(ServiceClassSpec("ordinary", 0.0, 0.0), [0])
        assert outcome.is_saturated
        assert outcome.carried_rate == pytest.approx(0.0)


class TestSurplus:
    def test_per_capita_vs_absolute(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 400.0, BottleneckLink(800.0))
        assert system.consumer_surplus() == pytest.approx(
            400.0 * system.per_capita_consumer_surplus())

    def test_repr_mentions_mechanism(self, google_netflix_skype):
        system = NetworkSystem(google_netflix_skype, 10.0, BottleneckLink(20.0))
        assert "MaxMinFairAllocation" in repr(system)
