"""Tests for the rate-allocation mechanisms (Axioms 1-4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConvergenceError, ModelValidationError
from repro.network.allocation import (
    AlphaFairAllocation,
    MaxMinFairAllocation,
    ProportionalFairAllocation,
    ProportionalToDemandAllocation,
    StrictPriorityAllocation,
    WeightedFairAllocation,
    fixed_point_allocation,
)
from repro.network.provider import ContentProvider, Population

MECHANISMS = [
    MaxMinFairAllocation(),
    WeightedFairAllocation(weights={"elastic": 2.0}),
    ProportionalToDemandAllocation(),
    AlphaFairAllocation(alpha=1.0),
    AlphaFairAllocation(alpha=2.0, per_user=True),
    ProportionalFairAllocation(),
    StrictPriorityAllocation(priority_order=["streaming", "elastic"]),
]


def unit_demands(population):
    return np.ones(len(population))


class TestCommonBehaviour:
    @pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: type(m).__name__)
    def test_feasibility_axiom1(self, mechanism, two_provider_population):
        thetas = mechanism.allocate(two_provider_population,
                                    unit_demands(two_provider_population), nu=1.0)
        assert np.all(thetas <= two_provider_population.theta_hats + 1e-9)
        assert np.all(thetas >= -1e-12)

    @pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: type(m).__name__)
    def test_work_conservation_congested(self, mechanism, two_provider_population):
        nu = 1.0  # unconstrained load is 3.0, so the link is congested
        demands = unit_demands(two_provider_population)
        thetas = mechanism.allocate(two_provider_population, demands, nu)
        carried = float(np.sum(two_provider_population.alphas * demands * thetas))
        assert carried == pytest.approx(nu, rel=1e-6)

    @pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: type(m).__name__)
    def test_work_conservation_uncongested(self, mechanism, two_provider_population):
        demands = unit_demands(two_provider_population)
        thetas = mechanism.allocate(two_provider_population, demands, nu=100.0)
        np.testing.assert_allclose(thetas, two_provider_population.theta_hats)

    @pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: type(m).__name__)
    def test_monotone_in_capacity(self, mechanism, small_random_population):
        demands = unit_demands(small_random_population)
        previous = None
        for nu in (0.5, 1.0, 2.0, 5.0, 20.0):
            thetas = mechanism.allocate(small_random_population, demands, nu)
            if previous is not None:
                assert np.all(thetas >= previous - 1e-8)
            previous = thetas

    @pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: type(m).__name__)
    def test_zero_capacity(self, mechanism, two_provider_population):
        demands = unit_demands(two_provider_population)
        thetas = mechanism.allocate(two_provider_population, demands, nu=0.0)
        carried = float(np.sum(two_provider_population.alphas * demands * thetas))
        assert carried == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: type(m).__name__)
    def test_empty_population(self, mechanism):
        thetas = mechanism.allocate(Population([]), [], nu=1.0)
        assert thetas.shape == (0,)

    def test_invalid_demand_shape(self, two_provider_population):
        with pytest.raises(ModelValidationError):
            MaxMinFairAllocation().allocate(two_provider_population, [1.0], nu=1.0)

    def test_invalid_demand_values(self, two_provider_population):
        with pytest.raises(ModelValidationError):
            MaxMinFairAllocation().allocate(two_provider_population, [1.5, 0.5], nu=1.0)

    def test_negative_capacity_rejected(self, two_provider_population):
        with pytest.raises(ModelValidationError):
            MaxMinFairAllocation().allocate(
                two_provider_population, [1.0, 1.0], nu=-1.0)


class TestMaxMinFair:
    def test_equal_caps_under_congestion(self, google_netflix_skype):
        demands = unit_demands(google_netflix_skype)
        thetas = MaxMinFairAllocation().allocate(google_netflix_skype, demands, nu=1.0)
        # Under heavy congestion no CP reaches theta_hat, so all get the cap.
        assert thetas[0] == pytest.approx(thetas[1], rel=1e-6)
        assert thetas[1] == pytest.approx(thetas[2], rel=1e-6)

    def test_small_flows_saturate_first(self, google_netflix_skype):
        demands = unit_demands(google_netflix_skype)
        thetas = MaxMinFairAllocation().allocate(google_netflix_skype, demands, nu=4.0)
        names = google_netflix_skype.names
        theta = dict(zip(names, thetas))
        # Google (theta_hat = 1) saturates, Netflix (theta_hat = 10) does not.
        assert theta["google"] == pytest.approx(1.0, rel=1e-6)
        assert theta["netflix"] < 10.0

    def test_partial_demand_reduces_carried_load(self, two_provider_population):
        mechanism = MaxMinFairAllocation()
        full = mechanism.allocate(two_provider_population, [1.0, 1.0], nu=1.0)
        half = mechanism.allocate(two_provider_population, [0.5, 0.5], nu=1.0)
        # With only half the users active each active user gets more.
        assert np.all(half >= full - 1e-9)


class TestWeightedFair:
    def test_weights_bias_allocation(self, two_provider_population):
        favour_elastic = WeightedFairAllocation(weights={"elastic": 4.0})
        thetas = favour_elastic.allocate(two_provider_population, [1.0, 1.0], nu=1.0)
        neutral = MaxMinFairAllocation().allocate(
            two_provider_population, [1.0, 1.0], nu=1.0)
        elastic_index = two_provider_population.index_of("elastic")
        streaming_index = two_provider_population.index_of("streaming")
        assert thetas[elastic_index] >= neutral[elastic_index] - 1e-9
        assert thetas[streaming_index] <= neutral[streaming_index] + 1e-9

    def test_invalid_weight_rejected(self):
        with pytest.raises(ModelValidationError):
            WeightedFairAllocation(weights={"a": 0.0})
        with pytest.raises(ModelValidationError):
            WeightedFairAllocation(weights={}, default_weight=-1.0)


class TestProportionalToDemand:
    def test_common_fraction(self, two_provider_population):
        thetas = ProportionalToDemandAllocation().allocate(
            two_provider_population, [1.0, 1.0], nu=1.5)
        omegas = thetas / two_provider_population.theta_hats
        assert omegas[0] == pytest.approx(omegas[1], rel=1e-6)


class TestAlphaFair:
    def test_per_user_matches_maxmin(self, small_random_population):
        demands = unit_demands(small_random_population)
        per_user = AlphaFairAllocation(alpha=2.0, per_user=True).allocate(
            small_random_population, demands, nu=2.0)
        maxmin = MaxMinFairAllocation().allocate(
            small_random_population, demands, nu=2.0)
        np.testing.assert_allclose(per_user, maxmin, rtol=1e-9)

    def test_aggregate_fairness_ignores_popularity(self):
        population = Population([
            ContentProvider(name="popular", alpha=1.0, theta_hat=1.0, beta=0.0),
            ContentProvider(name="niche", alpha=0.1, theta_hat=1.0, beta=0.0),
        ])
        thetas = AlphaFairAllocation(alpha=1.0).allocate(population, [1.0, 1.0], nu=0.2)
        aggregates = population.alphas * thetas
        # Aggregate-level fairness splits capacity equally across providers.
        assert aggregates[0] == pytest.approx(aggregates[1], rel=1e-6)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ModelValidationError):
            AlphaFairAllocation(alpha=0.0)


class TestStrictPriority:
    def test_priority_order_respected(self, two_provider_population):
        mechanism = StrictPriorityAllocation(priority_order=["streaming", "elastic"])
        thetas = mechanism.allocate(two_provider_population, [1.0, 1.0], nu=1.0)
        streaming_index = two_provider_population.index_of("streaming")
        elastic_index = two_provider_population.index_of("elastic")
        # Streaming's unconstrained per-capita load is 2.0 > nu, so it takes
        # everything and the elastic provider is starved.
        assert thetas[elastic_index] == pytest.approx(0.0, abs=1e-9)
        assert thetas[streaming_index] == pytest.approx(2.0, rel=1e-6)

    def test_default_order_is_population_order(self, two_provider_population):
        mechanism = StrictPriorityAllocation()
        thetas = mechanism.allocate(two_provider_population, [1.0, 1.0], nu=1.0)
        # elastic comes first in the population, load 1.0 == nu -> it saturates.
        assert thetas[0] == pytest.approx(1.0, rel=1e-6)
        assert thetas[1] == pytest.approx(0.0, abs=1e-9)


class TestFixedPointAllocation:
    def test_matches_cap_solver_for_maxmin(self, google_netflix_skype):
        from repro.network.equilibrium import solve_rate_equilibrium

        nu = 2.0
        reference = solve_rate_equilibrium(google_netflix_skype, nu,
                                           MaxMinFairAllocation())
        iterated = fixed_point_allocation(MaxMinFairAllocation(),
                                          google_netflix_skype, nu)
        np.testing.assert_allclose(iterated, reference.thetas, rtol=1e-4, atol=1e-6)

    def test_invalid_damping(self, google_netflix_skype):
        with pytest.raises(ModelValidationError):
            fixed_point_allocation(MaxMinFairAllocation(), google_netflix_skype,
                                   1.0, damping=0.0)

    def test_non_convergence_raises(self, google_netflix_skype):
        with pytest.raises(ConvergenceError):
            fixed_point_allocation(MaxMinFairAllocation(), google_netflix_skype,
                                   1.0, max_iterations=1, tolerance=1e-15)
