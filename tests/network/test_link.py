"""Tests for the bottleneck-link and service-class value objects."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.network.link import (
    ORDINARY_CLASS,
    PREMIUM_CLASS,
    BottleneckLink,
    ServiceClassSpec,
    TwoClassLink,
)


class TestBottleneckLink:
    def test_per_capita(self):
        link = BottleneckLink(capacity=1000.0)
        assert link.per_capita(consumers=500.0) == pytest.approx(2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ModelValidationError):
            BottleneckLink(capacity=-1.0)
        with pytest.raises(ModelValidationError):
            BottleneckLink(capacity=float("nan"))

    def test_per_capita_requires_positive_consumers(self):
        with pytest.raises(ModelValidationError):
            BottleneckLink(10.0).per_capita(0.0)

    def test_scaled(self):
        link = BottleneckLink(10.0).scaled(3.0)
        assert link.capacity == pytest.approx(30.0)
        with pytest.raises(ModelValidationError):
            BottleneckLink(10.0).scaled(0.0)


class TestServiceClassSpec:
    def test_capacity_computations(self):
        spec = ServiceClassSpec(PREMIUM_CLASS, capacity_share=0.25, price=0.5)
        assert spec.capacity(BottleneckLink(100.0)) == pytest.approx(25.0)
        assert spec.per_capita_capacity(8.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            ServiceClassSpec("", 0.5, 0.0)
        with pytest.raises(ModelValidationError):
            ServiceClassSpec("x", 1.5, 0.0)
        with pytest.raises(ModelValidationError):
            ServiceClassSpec("x", 0.5, -0.1)
        with pytest.raises(ModelValidationError):
            ServiceClassSpec("x", 0.5, 0.1).per_capita_capacity(-1.0)


class TestTwoClassLink:
    def test_split(self):
        link = TwoClassLink(BottleneckLink(100.0), kappa=0.3, premium_price=0.4)
        assert link.ordinary.name == ORDINARY_CLASS
        assert link.premium.name == PREMIUM_CLASS
        assert link.ordinary.capacity_share == pytest.approx(0.7)
        assert link.premium.capacity_share == pytest.approx(0.3)
        assert link.premium.price == pytest.approx(0.4)
        assert link.ordinary.price == 0.0
        assert len(link.classes) == 2

    def test_neutrality(self):
        base = BottleneckLink(10.0)
        assert TwoClassLink(base, kappa=0.0, premium_price=0.5).is_neutral
        assert TwoClassLink(base, kappa=0.5, premium_price=0.0).is_neutral
        assert not TwoClassLink(base, kappa=0.5, premium_price=0.5).is_neutral

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            TwoClassLink(BottleneckLink(10.0), kappa=1.5, premium_price=0.0)
        with pytest.raises(ModelValidationError):
            TwoClassLink(BottleneckLink(10.0), kappa=0.5, premium_price=-1.0)
