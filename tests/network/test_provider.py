"""Tests for the content-provider model and population container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelValidationError
from repro.network.demand import LinearDemand, UnitDemand
from repro.network.provider import ContentProvider, Population


def make_cp(name="cp", alpha=0.5, theta_hat=2.0, beta=1.0, revenue=0.4, utility=1.5):
    return ContentProvider(name=name, alpha=alpha, theta_hat=theta_hat, beta=beta,
                           revenue_rate=revenue, utility_rate=utility)


class TestContentProviderValidation:
    def test_valid_provider(self):
        cp = make_cp()
        assert cp.alpha == 0.5
        assert cp.demand is not None

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ModelValidationError):
            make_cp(alpha=alpha)

    @pytest.mark.parametrize("theta_hat", [0.0, -1.0, float("inf")])
    def test_invalid_theta_hat(self, theta_hat):
        with pytest.raises(ModelValidationError):
            make_cp(theta_hat=theta_hat)

    def test_invalid_beta(self):
        with pytest.raises(ModelValidationError):
            make_cp(beta=-0.5)

    def test_invalid_revenue(self):
        with pytest.raises(ModelValidationError):
            make_cp(revenue=-1.0)

    def test_invalid_utility(self):
        with pytest.raises(ModelValidationError):
            make_cp(utility=-2.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelValidationError):
            make_cp(name="")

    def test_custom_demand_must_match_theta_hat(self):
        with pytest.raises(ModelValidationError):
            ContentProvider(name="x", alpha=0.5, theta_hat=2.0,
                            demand=UnitDemand(theta_hat=3.0))

    def test_custom_demand_accepted(self):
        cp = ContentProvider(name="x", alpha=0.5, theta_hat=2.0,
                             demand=LinearDemand(theta_hat=2.0))
        assert cp.demand_at(1.0) == pytest.approx(0.5)


class TestContentProviderDerivedQuantities:
    def test_unconstrained_per_capita_rate(self):
        cp = make_cp(alpha=0.5, theta_hat=2.0)
        assert cp.unconstrained_per_capita_rate == pytest.approx(1.0)

    def test_rho_caps_at_theta_hat(self):
        cp = make_cp(beta=0.0, theta_hat=2.0)
        assert cp.rho(5.0) == pytest.approx(2.0)

    def test_per_capita_rate(self):
        cp = make_cp(alpha=0.5, theta_hat=2.0, beta=0.0)
        assert cp.per_capita_rate(2.0) == pytest.approx(1.0)

    def test_throughput_scales_with_consumers(self):
        cp = make_cp(alpha=0.5, theta_hat=2.0, beta=0.0)
        assert cp.throughput(2.0, consumers=100.0) == pytest.approx(100.0)
        with pytest.raises(ModelValidationError):
            cp.throughput(2.0, consumers=-1.0)

    def test_utility_ordinary_and_premium(self):
        cp = make_cp(revenue=0.8)
        rate = 0.5
        assert cp.utility(rate, consumers=10.0) == pytest.approx(0.8 * 0.5 * 10.0)
        assert cp.utility(rate, consumers=10.0, premium_price=0.3) == pytest.approx(
            0.5 * 0.5 * 10.0)

    def test_with_utility_and_revenue_rate(self):
        cp = make_cp()
        assert cp.with_utility_rate(9.0).utility_rate == 9.0
        assert cp.with_revenue_rate(0.9).revenue_rate == 0.9
        # originals untouched (frozen dataclass copies)
        assert cp.utility_rate == 1.5
        assert cp.revenue_rate == 0.4


class TestPopulation:
    def test_unique_names_required(self):
        with pytest.raises(ModelValidationError):
            Population([make_cp(name="a"), make_cp(name="a")])

    def test_sequence_protocol(self, two_provider_population):
        assert len(two_provider_population) == 2
        assert two_provider_population[0].name == "elastic"
        assert two_provider_population[0] in two_provider_population
        assert [cp.name for cp in two_provider_population] == ["elastic", "streaming"]

    def test_slicing_returns_population(self, two_provider_population):
        sliced = two_provider_population[:1]
        assert isinstance(sliced, Population)
        assert len(sliced) == 1

    def test_equality_and_hash(self, two_provider_population):
        clone = Population(list(two_provider_population))
        assert clone == two_provider_population
        assert hash(clone) == hash(two_provider_population)
        assert two_provider_population != Population([make_cp()])

    def test_vectorised_accessors(self, two_provider_population):
        np.testing.assert_allclose(two_provider_population.alphas, [1.0, 0.5])
        np.testing.assert_allclose(two_provider_population.theta_hats, [1.0, 4.0])
        np.testing.assert_allclose(two_provider_population.betas, [0.0, 2.0])
        np.testing.assert_allclose(two_provider_population.revenue_rates, [0.8, 0.4])
        np.testing.assert_allclose(two_provider_population.utility_rates, [1.0, 3.0])

    def test_unconstrained_load(self, two_provider_population):
        assert two_provider_population.unconstrained_per_capita_load == pytest.approx(
            1.0 * 1.0 + 0.5 * 4.0)

    def test_subset(self, two_provider_population):
        subset = two_provider_population.subset([1])
        assert len(subset) == 1
        assert subset[0].name == "streaming"
        with pytest.raises(ModelValidationError):
            two_provider_population.subset([5])

    def test_subset_deduplicates_and_sorts(self, two_provider_population):
        subset = two_provider_population.subset([1, 0, 1])
        assert subset.names == ("elastic", "streaming")

    def test_index_of(self, two_provider_population):
        assert two_provider_population.index_of("streaming") == 1
        with pytest.raises(KeyError):
            two_provider_population.index_of("missing")

    def test_with_utility_rates(self, two_provider_population):
        updated = two_provider_population.with_utility_rates([7.0, 8.0])
        assert updated.utility_rates.tolist() == [7.0, 8.0]
        with pytest.raises(ModelValidationError):
            two_provider_population.with_utility_rates([1.0])

    def test_sorted_by_revenue(self, two_provider_population):
        ordered = two_provider_population.sorted_by_revenue()
        assert ordered[0].name == "elastic"
        ascending = two_provider_population.sorted_by_revenue(descending=False)
        assert ascending[0].name == "streaming"

    def test_describe(self, two_provider_population):
        summary = two_provider_population.describe()
        assert summary["count"] == 2
        assert summary["unconstrained_per_capita_load"] == pytest.approx(3.0)

    def test_describe_empty(self):
        assert Population([]).describe()["count"] == 0


class TestVectorisedDemand:
    def test_matches_scalar_evaluation(self, small_random_population):
        thetas = small_random_population.theta_hats * 0.4
        vectorised = small_random_population.demands_at(thetas)
        scalar = np.array([cp.demand_at(theta)
                           for cp, theta in zip(small_random_population, thetas)])
        np.testing.assert_allclose(vectorised, scalar, rtol=1e-12, atol=1e-12)

    def test_zero_throughput_limits(self, two_provider_population):
        demands = two_provider_population.demands_at(np.zeros(2))
        # beta = 0 provider keeps demand 1, beta > 0 provider drops to 0.
        np.testing.assert_allclose(demands, [1.0, 0.0])

    def test_above_theta_hat_clamps(self, two_provider_population):
        demands = two_provider_population.demands_at(np.array([10.0, 10.0]))
        np.testing.assert_allclose(demands, [1.0, 1.0])

    def test_shape_mismatch_rejected(self, two_provider_population):
        with pytest.raises(ModelValidationError):
            two_provider_population.demands_at(np.zeros(3))

    def test_fallback_for_non_exponential_demand(self):
        population = Population([
            ContentProvider(name="custom", alpha=0.5, theta_hat=2.0,
                            demand=LinearDemand(theta_hat=2.0)),
            ContentProvider(name="expo", alpha=0.5, theta_hat=2.0, beta=1.0),
        ])
        demands = population.demands_at(np.array([1.0, 1.0]))
        assert demands[0] == pytest.approx(0.5)
        assert demands[1] == pytest.approx(np.exp(-1.0))


class TestColumnarPopulation:
    """The structure-of-arrays backing store and its view semantics."""

    def columns(self):
        alphas = np.array([0.5, 0.9, 0.2])
        theta_hats = np.array([2.0, 1.0, 3.0])
        betas = np.array([1.0, 0.0, 4.0])
        revenues = np.array([0.4, 0.8, 0.1])
        utilities = np.array([1.5, 0.5, 2.5])
        return alphas, theta_hats, betas, revenues, utilities

    def test_from_columns_equals_object_construction(self):
        alphas, theta_hats, betas, revenues, utilities = self.columns()
        columnar = Population.from_columns(
            alphas, theta_hats, betas=betas, revenue_rates=revenues,
            utility_rates=utilities, names=("a", "b", "c"))
        objectful = Population([
            ContentProvider(name=name, alpha=alphas[i], theta_hat=theta_hats[i],
                            beta=betas[i], revenue_rate=revenues[i],
                            utility_rate=utilities[i])
            for i, name in enumerate(("a", "b", "c"))
        ])
        assert columnar == objectful
        assert hash(columnar) == hash(objectful)
        assert columnar.fingerprint() == objectful.fingerprint()

    def test_from_columns_defaults(self):
        population = Population.from_columns([0.5, 0.6], [1.0, 2.0])
        np.testing.assert_array_equal(population.betas, [1.0, 1.0])
        np.testing.assert_array_equal(population.revenue_rates, [0.0, 0.0])
        np.testing.assert_array_equal(population.utility_rates, [0.0, 0.0])

    def test_from_columns_does_not_alias_caller_arrays(self):
        alphas = np.array([0.5, 0.6])
        population = Population.from_columns(alphas, [1.0, 2.0])
        alphas[0] = 0.9
        assert population.alphas[0] == 0.5
        with pytest.raises(ValueError):
            population.alphas[0] = 0.7  # read-only view

    @pytest.mark.parametrize("kwargs", [
        {"alphas": [0.0, 0.5], "theta_hats": [1.0, 1.0]},   # alpha not in (0,1]
        {"alphas": [1.5, 0.5], "theta_hats": [1.0, 1.0]},
        {"alphas": [0.5, 0.5], "theta_hats": [0.0, 1.0]},   # theta not positive
        {"alphas": [0.5, 0.5], "theta_hats": [1.0, np.inf]},
        {"alphas": [0.5], "theta_hats": [1.0, 1.0]},        # length mismatch
    ])
    def test_from_columns_validation(self, kwargs):
        with pytest.raises(ModelValidationError):
            Population.from_columns(**kwargs)

    def test_lazy_names_from_prefix(self):
        population = Population.from_columns([0.5, 0.6], [1.0, 2.0],
                                             name_prefix="prov")
        assert population.names == ("prov-0000", "prov-0001")
        assert population[1].name == "prov-0001"
        assert population.index_of("prov-0000") == 0

    def test_provider_view_identity_is_cached(self):
        population = Population.from_columns([0.5, 0.6], [1.0, 2.0])
        assert population[0] is population[0]
        assert isinstance(population[0], ContentProvider)

    def test_fingerprint_tracks_column_values_not_names(self):
        base = Population.from_columns([0.5, 0.6], [1.0, 2.0])
        renamed = Population.from_columns([0.5, 0.6], [1.0, 2.0],
                                          names=("x", "y"))
        perturbed = Population.from_columns([0.5, 0.6], [1.0, 2.000001])
        # Hash/fingerprint key the solver caches: value-based over columns.
        assert renamed.fingerprint() == base.fingerprint()
        assert hash(renamed) == hash(base)
        assert perturbed.fingerprint() != base.fingerprint()
        # Equality still distinguishes names (it is the stricter relation).
        assert renamed != base
        assert base == Population.from_columns([0.5, 0.6], [1.0, 2.0])

    def test_subset_view_matches_object_subset(self):
        alphas, theta_hats, betas, revenues, utilities = self.columns()
        columnar = Population.from_columns(
            alphas, theta_hats, betas=betas, revenue_rates=revenues,
            utility_rates=utilities, names=("a", "b", "c"))
        view = columnar.subset([2, 0])
        rebuilt = Population([columnar[0], columnar[2]])
        assert view == rebuilt
        assert view.names == ("a", "c")
        np.testing.assert_array_equal(view.alphas, [0.5, 0.2])

    def test_sorted_by_revenue_view(self):
        alphas, theta_hats, betas, revenues, utilities = self.columns()
        population = Population.from_columns(
            alphas, theta_hats, betas=betas, revenue_rates=revenues,
            utility_rates=utilities)
        ordered = population.sorted_by_revenue()
        assert list(ordered.revenue_rates) == sorted(revenues, reverse=True)

    def test_with_utility_rates_shares_columns(self):
        population = Population.from_columns([0.5, 0.6], [1.0, 2.0])
        updated = population.with_utility_rates([3.0, 4.0])
        assert updated.alphas is population.alphas
        np.testing.assert_array_equal(updated.utility_rates, [3.0, 4.0])
        assert updated != population

    def test_exponential_parameters_straight_from_columns(self):
        population = Population.from_columns([0.5, 0.6], [1.0, 2.0],
                                             betas=[0.5, 3.0])
        parameters = population.exponential_parameters
        assert parameters is not None
        theta_hats, betas = parameters
        assert theta_hats is population.theta_hats
        assert betas is population.betas
