"""Tests for the demand-function families (Assumption 1 of the paper)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ModelValidationError
from repro.network.demand import (
    ConstantElasticityDemand,
    ExponentialSensitivityDemand,
    LinearDemand,
    PiecewiseLinearDemand,
    SigmoidDemand,
    StepDemand,
    UnitDemand,
    demand_family,
    sample_demand_curve,
    validate_demand_function,
)

ALL_FAMILIES = [
    ExponentialSensitivityDemand(theta_hat=2.0, beta=3.0),
    ExponentialSensitivityDemand(theta_hat=1.0, beta=0.0),
    LinearDemand(theta_hat=5.0, floor=0.2),
    StepDemand(theta_hat=1.0, threshold=0.5, width=0.1),
    UnitDemand(theta_hat=3.0),
    SigmoidDemand(theta_hat=1.0, midpoint=0.4, steepness=8.0),
    PiecewiseLinearDemand(theta_hat=2.0, points=[(0.0, 0.1), (0.5, 0.6), (1.0, 1.0)]),
    ConstantElasticityDemand(theta_hat=4.0, elasticity=2.0),
]


class TestAssumptionOne:
    """Every shipped family must satisfy Assumption 1."""

    @pytest.mark.parametrize("demand", ALL_FAMILIES,
                             ids=lambda d: type(d).__name__)
    def test_validate_passes(self, demand):
        validate_demand_function(demand)

    @pytest.mark.parametrize("demand", ALL_FAMILIES,
                             ids=lambda d: type(d).__name__)
    def test_endpoint_is_one(self, demand):
        assert demand(demand.theta_hat) == pytest.approx(1.0)

    @pytest.mark.parametrize("demand", ALL_FAMILIES,
                             ids=lambda d: type(d).__name__)
    def test_above_theta_hat_clamps_to_one(self, demand):
        assert demand(demand.theta_hat * 10.0) == 1.0

    @pytest.mark.parametrize("demand", ALL_FAMILIES,
                             ids=lambda d: type(d).__name__)
    def test_non_decreasing_on_grid(self, demand):
        previous = -1.0
        for k in range(101):
            value = demand(demand.theta_hat * k / 100)
            assert value >= previous - 1e-12
            previous = value

    @pytest.mark.parametrize("demand", ALL_FAMILIES,
                             ids=lambda d: type(d).__name__)
    def test_range_is_unit_interval(self, demand):
        for k in range(0, 101, 7):
            value = demand(demand.theta_hat * k / 100)
            assert 0.0 <= value <= 1.0


class TestExponentialSensitivity:
    def test_matches_equation_three(self):
        demand = ExponentialSensitivityDemand(theta_hat=10.0, beta=3.0)
        theta = 5.0
        expected = math.exp(-3.0 * (10.0 / 5.0 - 1.0))
        assert demand(theta) == pytest.approx(expected)

    def test_zero_beta_is_unit_demand(self):
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=0.0)
        assert demand(0.01) == pytest.approx(1.0)
        assert demand.demand_at_zero() == 1.0

    def test_zero_throughput_limit(self):
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=2.0)
        assert demand(0.0) == 0.0

    def test_large_beta_drops_sharply(self):
        """Paper observation: beta=5 roughly halves demand at a 10% drop."""
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=5.0)
        assert 0.4 <= demand(0.9) <= 0.7

    def test_small_beta_is_flat(self):
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=0.1)
        assert demand(0.5) > 0.9

    def test_higher_beta_means_lower_demand(self):
        low = ExponentialSensitivityDemand(theta_hat=1.0, beta=0.5)
        high = ExponentialSensitivityDemand(theta_hat=1.0, beta=5.0)
        for omega in (0.2, 0.5, 0.8):
            assert high(omega) < low(omega)

    def test_negative_beta_rejected(self):
        with pytest.raises(ModelValidationError):
            ExponentialSensitivityDemand(theta_hat=1.0, beta=-1.0)

    def test_invalid_theta_hat_rejected(self):
        with pytest.raises(ModelValidationError):
            ExponentialSensitivityDemand(theta_hat=0.0, beta=1.0)
        with pytest.raises(ModelValidationError):
            ExponentialSensitivityDemand(theta_hat=float("nan"), beta=1.0)

    def test_nan_throughput_rejected(self):
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=1.0)
        with pytest.raises(ModelValidationError):
            demand(float("nan"))

    def test_demand_family_builder(self):
        family = demand_family(1.0, [0.1, 1.0, 10.0])
        assert [d.beta for d in family] == [0.1, 1.0, 10.0]
        assert all(d.theta_hat == 1.0 for d in family)


class TestOtherFamilies:
    def test_linear_demand_interpolates(self):
        demand = LinearDemand(theta_hat=2.0, floor=0.5)
        assert demand(0.0) == pytest.approx(0.5)
        assert demand(1.0) == pytest.approx(0.75)
        assert demand(2.0) == pytest.approx(1.0)

    def test_linear_demand_invalid_floor(self):
        with pytest.raises(ModelValidationError):
            LinearDemand(theta_hat=1.0, floor=1.5)

    def test_unit_demand_everywhere_one(self):
        demand = UnitDemand(theta_hat=2.0)
        assert demand(0.0) == 1.0
        assert demand(1.0) == 1.0

    def test_step_demand_threshold(self):
        demand = StepDemand(theta_hat=1.0, threshold=0.5, width=0.1)
        assert demand(0.3) == pytest.approx(0.0)
        assert demand(0.55) == pytest.approx(1.0)
        # Middle of the smoothing band.
        assert 0.0 < demand(0.45) < 1.0

    def test_step_demand_invalid_parameters(self):
        with pytest.raises(ModelValidationError):
            StepDemand(theta_hat=1.0, threshold=0.0)
        with pytest.raises(ModelValidationError):
            StepDemand(theta_hat=1.0, threshold=0.5, width=0.9)

    def test_sigmoid_midpoint_and_steepness_validation(self):
        with pytest.raises(ModelValidationError):
            SigmoidDemand(theta_hat=1.0, midpoint=1.5)
        with pytest.raises(ModelValidationError):
            SigmoidDemand(theta_hat=1.0, steepness=0.0)

    def test_piecewise_linear_requires_valid_breakpoints(self):
        with pytest.raises(ModelValidationError):
            PiecewiseLinearDemand(theta_hat=1.0, points=[(0.0, 0.5)])
        with pytest.raises(ModelValidationError):
            PiecewiseLinearDemand(theta_hat=1.0, points=[(0.1, 0.0), (1.0, 1.0)])
        with pytest.raises(ModelValidationError):
            PiecewiseLinearDemand(theta_hat=1.0,
                                  points=[(0.0, 0.9), (0.5, 0.3), (1.0, 1.0)])

    def test_piecewise_linear_interpolation(self):
        demand = PiecewiseLinearDemand(
            theta_hat=1.0, points=[(0.0, 0.0), (0.5, 0.8), (1.0, 1.0)])
        assert demand(0.25) == pytest.approx(0.4)
        assert demand(0.75) == pytest.approx(0.9)

    def test_constant_elasticity(self):
        demand = ConstantElasticityDemand(theta_hat=2.0, elasticity=2.0)
        assert demand(1.0) == pytest.approx(0.25)
        zero_elasticity = ConstantElasticityDemand(theta_hat=2.0, elasticity=0.0)
        assert zero_elasticity(0.1) == 1.0

    def test_offered_load_caps_at_theta_hat(self):
        demand = UnitDemand(theta_hat=2.0)
        assert demand.offered_load(5.0) == pytest.approx(2.0)


class TestValidation:
    def test_validator_rejects_decreasing_function(self):
        class Decreasing(ExponentialSensitivityDemand):
            def evaluate(self, theta):
                return 1.0 - 0.5 * theta / self.theta_hat

            def demand_at_zero(self):
                return 1.0

        with pytest.raises(ModelValidationError):
            validate_demand_function(Decreasing(theta_hat=1.0, beta=1.0))

    def test_validator_rejects_discontinuous_function(self):
        class Jumpy(UnitDemand):
            def evaluate(self, theta):
                return 0.0 if theta < 0.5 * self.theta_hat else 1.0

            def demand_at_zero(self):
                return 0.0

        with pytest.raises(ModelValidationError):
            validate_demand_function(Jumpy(theta_hat=1.0))

    def test_validator_rejects_step_in_second_interval(self):
        # The second grid interval has a looser jump threshold (continuous
        # steep demands legitimately jump ~0.251 there) but a genuine step
        # discontinuity must still be caught.
        class EarlyJump(UnitDemand):
            def evaluate(self, theta):
                return 0.4 if theta < 1.5 / 256 else 1.0

            def demand_at_zero(self):
                return 0.4

        with pytest.raises(ModelValidationError, match="jumps"):
            validate_demand_function(EarlyJump(theta_hat=1.0))

    def test_validator_accepts_steep_continuous_exponential(self):
        # Regression: beta ~= 0.0059 makes the Equation-(3) demand rise by
        # ~0.2507 over the second grid interval — continuous, must pass.
        validate_demand_function(
            ExponentialSensitivityDemand(theta_hat=1.0, beta=0.005859375))

    def test_validator_needs_enough_samples(self):
        with pytest.raises(ModelValidationError):
            validate_demand_function(UnitDemand(1.0), samples=2)


class TestSampling:
    def test_sample_demand_curve_endpoints(self):
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=2.0)
        samples = sample_demand_curve(demand, points=11)
        assert len(samples) == 11
        assert samples[0].omega == 0.0
        assert samples[-1].omega == 1.0
        assert samples[-1].demand == pytest.approx(1.0)

    def test_sample_demand_curve_requires_two_points(self):
        with pytest.raises(ModelValidationError):
            sample_demand_curve(UnitDemand(1.0), points=1)

    def test_throughput_fraction_matches_direct_call(self):
        demand = ExponentialSensitivityDemand(theta_hat=4.0, beta=1.0)
        assert demand.throughput_fraction(0.5) == pytest.approx(demand(2.0))
