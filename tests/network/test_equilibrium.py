"""Tests for the rate-equilibrium solver (Theorem 1, Lemma 1, Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelValidationError
from repro.network.allocation import (
    AlphaFairAllocation,
    MaxMinFairAllocation,
    StrictPriorityAllocation,
    WeightedFairAllocation,
)
from repro.network.equilibrium import solve_rate_equilibrium
from repro.network.provider import Population


class TestBasicProperties:
    def test_uncongested_gives_unconstrained_throughput(self, google_netflix_skype):
        load = google_netflix_skype.unconstrained_per_capita_load
        equilibrium = solve_rate_equilibrium(google_netflix_skype, load * 2)
        np.testing.assert_allclose(equilibrium.thetas,
                                   google_netflix_skype.theta_hats)
        np.testing.assert_allclose(equilibrium.demands, 1.0)
        assert not equilibrium.is_congested
        assert equilibrium.common_cap == float("inf")

    def test_congested_carries_exactly_capacity(self, google_netflix_skype):
        nu = 2.0
        equilibrium = solve_rate_equilibrium(google_netflix_skype, nu)
        assert equilibrium.aggregate_rate == pytest.approx(nu, rel=1e-6)
        assert equilibrium.is_congested
        assert equilibrium.utilization == pytest.approx(1.0, rel=1e-6)

    def test_zero_capacity(self, google_netflix_skype):
        equilibrium = solve_rate_equilibrium(google_netflix_skype, 0.0)
        np.testing.assert_allclose(equilibrium.thetas, 0.0)
        assert equilibrium.aggregate_rate == 0.0
        assert equilibrium.utilization == 0.0
        assert equilibrium.common_cap == 0.0

    def test_empty_population(self):
        equilibrium = solve_rate_equilibrium(Population([]), 1.0)
        assert equilibrium.aggregate_rate == 0.0
        assert equilibrium.consumer_surplus() == 0.0

    def test_negative_capacity_rejected(self, google_netflix_skype):
        with pytest.raises(ModelValidationError):
            solve_rate_equilibrium(google_netflix_skype, -1.0)

    def test_default_mechanism_is_maxmin(self, google_netflix_skype):
        equilibrium = solve_rate_equilibrium(google_netflix_skype, 2.0)
        assert equilibrium.mechanism_name == "MaxMinFairAllocation"

    def test_feasibility(self, small_random_population):
        equilibrium = solve_rate_equilibrium(small_random_population, 1.0)
        assert np.all(equilibrium.thetas
                      <= small_random_population.theta_hats + 1e-9)
        assert np.all(equilibrium.demands >= 0.0)
        assert np.all(equilibrium.demands <= 1.0)


class TestTheorem1Uniqueness:
    """The equilibrium is a true fixed point and is insensitive to the solver path."""

    def test_fixed_point_property(self, small_random_population):
        mechanism = MaxMinFairAllocation()
        nu = 2.0
        equilibrium = solve_rate_equilibrium(small_random_population, nu, mechanism)
        # Re-allocating with the equilibrium demands reproduces the thetas.
        reallocated = mechanism.allocate(small_random_population,
                                         equilibrium.demands, nu)
        np.testing.assert_allclose(reallocated, equilibrium.thetas,
                                   rtol=1e-6, atol=1e-9)

    def test_demands_consistent_with_thetas(self, small_random_population):
        equilibrium = solve_rate_equilibrium(small_random_population, 2.0)
        recomputed = small_random_population.demands_at(equilibrium.thetas)
        np.testing.assert_allclose(recomputed, equilibrium.demands,
                                   rtol=1e-9, atol=1e-12)

    def test_generic_solver_agrees_with_cap_solver(self, google_netflix_skype):
        """The damped fixed-point path reaches the same (unique) equilibrium."""
        nu = 2.5
        cap_based = solve_rate_equilibrium(google_netflix_skype, nu,
                                           MaxMinFairAllocation())
        generic = solve_rate_equilibrium(google_netflix_skype, nu,
                                         AlphaFairAllocation(per_user=True))
        np.testing.assert_allclose(generic.thetas, cap_based.thetas,
                                   rtol=1e-4, atol=1e-6)


class TestLemma1Monotonicity:
    def test_thetas_monotone_in_nu(self, small_random_population):
        previous = None
        for nu in np.linspace(0.1, 15.0, 12):
            equilibrium = solve_rate_equilibrium(small_random_population, float(nu))
            if previous is not None:
                assert np.all(equilibrium.thetas >= previous - 1e-8)
            previous = equilibrium.thetas

    def test_aggregate_rate_equals_min_rule(self, small_random_population):
        """Axiom 2 at equilibrium: lambda_N = min(nu, sum lambda_hat)."""
        load = small_random_population.unconstrained_per_capita_load
        for nu in (0.5, load / 2, load, load * 2):
            equilibrium = solve_rate_equilibrium(small_random_population, float(nu))
            assert equilibrium.aggregate_rate == pytest.approx(
                min(nu, load), rel=1e-6)


class TestTheorem2Surplus:
    def test_surplus_non_decreasing_in_nu(self, small_random_population):
        previous = -1.0
        for nu in np.linspace(0.1, 15.0, 12):
            phi = solve_rate_equilibrium(small_random_population,
                                         float(nu)).consumer_surplus()
            assert phi >= previous - 1e-9
            previous = phi

    def test_surplus_strictly_increasing_while_congested(self,
                                                         small_random_population):
        load = small_random_population.unconstrained_per_capita_load
        phi_low = solve_rate_equilibrium(small_random_population,
                                         load * 0.2).consumer_surplus()
        phi_high = solve_rate_equilibrium(small_random_population,
                                          load * 0.8).consumer_surplus()
        assert phi_high > phi_low

    def test_surplus_saturates_at_unconstrained_load(self, small_random_population):
        load = small_random_population.unconstrained_per_capita_load
        phi_exact = solve_rate_equilibrium(small_random_population,
                                           load).consumer_surplus()
        phi_more = solve_rate_equilibrium(small_random_population,
                                          load * 3).consumer_surplus()
        assert phi_more == pytest.approx(phi_exact, rel=1e-6)

    def test_surplus_matches_definition(self, two_provider_population):
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0)
        manual = float(np.sum(two_provider_population.utility_rates
                              * equilibrium.per_capita_rates))
        assert equilibrium.consumer_surplus() == pytest.approx(manual)


class TestDerivedAccessors:
    def test_rhos_and_per_capita_rates(self, two_provider_population):
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0)
        np.testing.assert_allclose(equilibrium.rhos,
                                   equilibrium.demands * equilibrium.thetas)
        np.testing.assert_allclose(
            equilibrium.per_capita_rates,
            two_provider_population.alphas * equilibrium.rhos)
        assert equilibrium.provider_rate(0) == pytest.approx(
            float(equilibrium.per_capita_rates[0]))
        assert equilibrium.provider_rho(1) == pytest.approx(
            float(equilibrium.rhos[1]))

    def test_omegas(self, two_provider_population):
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0)
        np.testing.assert_allclose(
            equilibrium.omegas,
            equilibrium.thetas / two_provider_population.theta_hats)

    def test_premium_revenue(self, two_provider_population):
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0)
        assert equilibrium.premium_revenue(0.5) == pytest.approx(
            0.5 * equilibrium.aggregate_rate)
        with pytest.raises(ModelValidationError):
            equilibrium.premium_revenue(-0.1)

    def test_throughput_by_name(self, two_provider_population):
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0)
        by_name = equilibrium.throughput_by_name()
        assert set(by_name) == {"elastic", "streaming"}

    def test_scaled_recovers_absolute_rates(self, two_provider_population):
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0)
        absolute = equilibrium.scaled(consumers=200.0)
        assert absolute["elastic"] == pytest.approx(
            200.0 * equilibrium.per_capita_rates[0])
        with pytest.raises(ModelValidationError):
            equilibrium.scaled(consumers=-1.0)


class TestAlternativeMechanisms:
    def test_weighted_fair_equilibrium(self, two_provider_population):
        mechanism = WeightedFairAllocation(weights={"streaming": 3.0})
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0, mechanism)
        assert equilibrium.aggregate_rate == pytest.approx(1.0, rel=1e-6)
        assert equilibrium.mechanism_name == "WeightedFairAllocation"

    def test_strict_priority_equilibrium(self, two_provider_population):
        mechanism = StrictPriorityAllocation(priority_order=["elastic", "streaming"])
        equilibrium = solve_rate_equilibrium(two_provider_population, 1.0, mechanism)
        # elastic (priority, load 1.0) takes everything at nu = 1.0.
        assert equilibrium.thetas[0] == pytest.approx(1.0, rel=1e-4)
        assert equilibrium.aggregate_rate == pytest.approx(1.0, rel=1e-4)

    def test_figure3_ordering(self, google_netflix_skype):
        """Google's demand saturates first, then Skype, then Netflix (Figure 3)."""

        def capacity_for_demand(name: str, level: float) -> float:
            index = google_netflix_skype.index_of(name)
            for nu in np.linspace(0.05, 6.0, 120):
                equilibrium = solve_rate_equilibrium(google_netflix_skype, float(nu))
                if equilibrium.demands[index] >= level:
                    return float(nu)
            return float("inf")

        google = capacity_for_demand("google", 0.9)
        skype = capacity_for_demand("skype", 0.9)
        netflix = capacity_for_demand("netflix", 0.9)
        assert google <= skype <= netflix
