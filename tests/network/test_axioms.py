"""Tests for the numerical axiom checker."""

from __future__ import annotations

import pytest

from repro.errors import AxiomViolationError, ModelValidationError
from repro.network.allocation import (
    AlphaFairAllocation,
    MaxMinFairAllocation,
    ProportionalToDemandAllocation,
    RateAllocationMechanism,
    StrictPriorityAllocation,
    WeightedFairAllocation,
)
from repro.network.axioms import check_axioms
from repro.network.provider import Population

COMPLIANT_MECHANISMS = [
    MaxMinFairAllocation(),
    WeightedFairAllocation(weights={"google": 2.0}),
    ProportionalToDemandAllocation(),
    AlphaFairAllocation(alpha=1.0),
    StrictPriorityAllocation(),
]


class TestCompliantMechanisms:
    @pytest.mark.parametrize("mechanism", COMPLIANT_MECHANISMS,
                             ids=lambda m: type(m).__name__)
    def test_archetypes(self, mechanism, google_netflix_skype):
        report = check_axioms(mechanism, google_netflix_skype)
        assert report.all_satisfied, report.violations

    def test_random_population(self, small_random_population):
        report = check_axioms(MaxMinFairAllocation(), small_random_population)
        assert report.all_satisfied, report.violations

    def test_raise_if_violated_noop_when_clean(self, google_netflix_skype):
        report = check_axioms(MaxMinFairAllocation(), google_netflix_skype)
        report.raise_if_violated()  # must not raise


class _GreedyNonWorkConserving(RateAllocationMechanism):
    """Deliberately broken mechanism: wastes half the capacity."""

    def allocate(self, population, demands, nu):
        return MaxMinFairAllocation().allocate(population, demands, nu / 2.0)


class _OverAllocating(RateAllocationMechanism):
    """Deliberately broken mechanism: exceeds unconstrained throughput."""

    def allocate(self, population, demands, nu):
        return population.theta_hats * 1.5


class _NonMonotone(RateAllocationMechanism):
    """Deliberately broken mechanism: allocation shrinks as capacity grows."""

    def allocate(self, population, demands, nu):
        load = population.unconstrained_per_capita_load
        if nu >= load:
            return population.theta_hats.copy()
        # Give less throughput at higher capacity (still feasible, still
        # "work conserving enough" to isolate the monotonicity failure).
        reversed_nu = max(load - nu, 0.0)
        return MaxMinFairAllocation().allocate(population, demands,
                                               min(reversed_nu, load))


class TestViolatingMechanisms:
    def test_work_conservation_violation_detected(self, google_netflix_skype):
        report = check_axioms(_GreedyNonWorkConserving(), google_netflix_skype)
        assert not report.work_conservation
        assert not report.all_satisfied
        assert any("Axiom2" in violation for violation in report.violations)

    def test_feasibility_violation_detected(self, google_netflix_skype):
        report = check_axioms(_OverAllocating(), google_netflix_skype)
        assert not report.feasibility

    def test_monotonicity_violation_detected(self, google_netflix_skype):
        report = check_axioms(_NonMonotone(), google_netflix_skype)
        assert not report.monotonicity

    def test_raise_if_violated(self, google_netflix_skype):
        report = check_axioms(_OverAllocating(), google_netflix_skype)
        with pytest.raises(AxiomViolationError):
            report.raise_if_violated()


class TestCheckerValidation:
    def test_empty_population_rejected(self):
        with pytest.raises(ModelValidationError):
            check_axioms(MaxMinFairAllocation(), Population([]))

    def test_negative_grid_rejected(self, google_netflix_skype):
        with pytest.raises(ModelValidationError):
            check_axioms(MaxMinFairAllocation(), google_netflix_skype,
                         nu_grid=[-1.0, 1.0])

    def test_custom_grid(self, google_netflix_skype):
        report = check_axioms(MaxMinFairAllocation(), google_netflix_skype,
                              nu_grid=[0.5, 1.0, 3.0, 10.0])
        assert report.all_satisfied

    def test_invalid_scale_factor_rejected(self, google_netflix_skype):
        with pytest.raises(ModelValidationError):
            check_axioms(MaxMinFairAllocation(), google_netflix_skype,
                         scale_factors=(0.0,))
