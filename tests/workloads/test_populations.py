"""Tests for the random population generators (the paper's 1000-CP workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelValidationError
from repro.workloads.populations import (
    DEFAULT_SEED,
    PopulationSpec,
    paper_population,
    random_population,
)


class TestPopulationSpec:
    def test_defaults_match_paper(self):
        spec = PopulationSpec()
        assert spec.count == 1000
        assert spec.alpha_range == (0.0, 1.0)
        assert spec.beta_range == (0.0, 10.0)
        assert spec.utility_model == "beta_correlated"

    def test_invalid_count(self):
        with pytest.raises(ModelValidationError):
            PopulationSpec(count=0)

    def test_invalid_range(self):
        with pytest.raises(ModelValidationError):
            PopulationSpec(beta_range=(5.0, 1.0))

    def test_invalid_utility_model(self):
        with pytest.raises(ModelValidationError):
            PopulationSpec(utility_model="bogus")


class TestRandomPopulation:
    def test_reproducible_with_seed(self):
        a = random_population(PopulationSpec(count=50), seed=3)
        b = random_population(PopulationSpec(count=50), seed=3)
        np.testing.assert_allclose(a.alphas, b.alphas)
        np.testing.assert_allclose(a.utility_rates, b.utility_rates)

    def test_different_seeds_differ(self):
        a = random_population(PopulationSpec(count=50), seed=3)
        b = random_population(PopulationSpec(count=50), seed=4)
        assert not np.allclose(a.alphas, b.alphas)

    def test_parameters_within_ranges(self):
        population = random_population(PopulationSpec(count=200), seed=5)
        assert np.all(population.alphas > 0.0)
        assert np.all(population.alphas <= 1.0)
        assert np.all(population.theta_hats > 0.0)
        assert np.all(population.theta_hats <= 1.0)
        assert np.all(population.betas >= 0.0)
        assert np.all(population.betas <= 10.0)
        assert np.all(population.revenue_rates >= 0.0)
        assert np.all(population.revenue_rates <= 1.0)

    def test_beta_correlated_utilities_bounded_by_beta(self):
        population = random_population(PopulationSpec(count=200), seed=5)
        assert np.all(population.utility_rates <= population.betas + 1e-12)

    def test_custom_generator(self):
        rng = np.random.default_rng(1)
        population = random_population(PopulationSpec(count=10), rng=rng)
        assert len(population) == 10

    def test_name_prefix(self):
        population = random_population(PopulationSpec(count=3), seed=1,
                                       name_prefix="prov")
        assert all(name.startswith("prov-") for name in population.names)


class TestPaperPopulation:
    def test_default_size_and_seed(self):
        population = paper_population(count=100)
        again = paper_population(count=100, seed=DEFAULT_SEED)
        np.testing.assert_allclose(population.alphas, again.alphas)

    def test_required_capacity_near_250_for_1000_cps(self):
        population = paper_population(count=1000)
        # E[alpha * theta_hat] = 0.25, so the saturation capacity is ~250.
        assert 230.0 <= population.unconstrained_per_capita_load <= 270.0

    def test_independent_utility_model_keeps_other_parameters(self):
        base = paper_population(count=100)
        appendix = paper_population(count=100, utility_model="independent")
        np.testing.assert_allclose(base.alphas, appendix.alphas)
        np.testing.assert_allclose(base.revenue_rates, appendix.revenue_rates)
        assert not np.allclose(base.utility_rates, appendix.utility_rates)

    def test_independent_utilities_not_bounded_by_beta(self):
        appendix = paper_population(count=500, utility_model="independent")
        assert np.any(appendix.utility_rates > appendix.betas)

    def test_invalid_utility_model(self):
        with pytest.raises(ModelValidationError):
            paper_population(count=10, utility_model="bogus")
