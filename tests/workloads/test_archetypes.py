"""Tests for the archetype content providers."""

from __future__ import annotations

import pytest

from repro.errors import ModelValidationError
from repro.workloads.archetypes import (
    archetype_mix,
    archetype_population,
    google_type,
    netflix_type,
    skype_type,
)


class TestArchetypes:
    def test_paper_parameters(self):
        google = google_type()
        netflix = netflix_type()
        skype = skype_type()
        assert (google.alpha, google.theta_hat, google.beta) == (1.0, 1.0, 0.1)
        assert (netflix.alpha, netflix.theta_hat, netflix.beta) == (0.3, 10.0, 3.0)
        assert (skype.alpha, skype.theta_hat, skype.beta) == (0.5, 3.0, 5.0)

    def test_sensitivity_ordering(self):
        assert google_type().beta < netflix_type().beta < skype_type().beta

    def test_custom_names_and_rates(self):
        cp = netflix_type(name="vod", revenue_rate=0.9, utility_rate=4.0)
        assert cp.name == "vod"
        assert cp.revenue_rate == 0.9
        assert cp.utility_rate == 4.0

    def test_archetype_population(self):
        population = archetype_population()
        assert population.names == ("google", "netflix", "skype")
        assert population.unconstrained_per_capita_load == pytest.approx(5.5)


class TestArchetypeMix:
    def test_counts(self):
        population = archetype_mix({"google": 2, "skype": 3})
        assert len(population) == 5
        assert sum(1 for n in population.names if n.startswith("google")) == 2
        assert sum(1 for n in population.names if n.startswith("skype")) == 3

    def test_rate_overrides(self):
        population = archetype_mix({"netflix": 2},
                                   revenue_rates={"netflix": 0.99},
                                   utility_rates={"netflix": 7.0})
        assert all(cp.revenue_rate == 0.99 for cp in population)
        assert all(cp.utility_rate == 7.0 for cp in population)

    def test_unknown_archetype_rejected(self):
        with pytest.raises(ModelValidationError):
            archetype_mix({"bittorrent": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(ModelValidationError):
            archetype_mix({"google": -1})

    def test_empty_mix_rejected(self):
        with pytest.raises(ModelValidationError):
            archetype_mix({"google": 0})
