"""Tests for the consumer-utility models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelValidationError
from repro.workloads.utility import (
    assign_utilities,
    beta_correlated_utilities,
    independent_utilities,
)


class TestBetaCorrelated:
    def test_bounded_by_beta(self):
        betas = np.array([0.5, 2.0, 10.0])
        utilities = beta_correlated_utilities(betas, seed=1)
        assert np.all(utilities >= 0.0)
        assert np.all(utilities <= betas)

    def test_reproducible(self):
        betas = [1.0, 2.0, 3.0]
        a = beta_correlated_utilities(betas, seed=2)
        b = beta_correlated_utilities(betas, seed=2)
        np.testing.assert_allclose(a, b)

    def test_negative_beta_rejected(self):
        with pytest.raises(ModelValidationError):
            beta_correlated_utilities([-1.0], seed=1)


class TestIndependent:
    def test_bounded_by_scale(self):
        utilities = independent_utilities(500, scale=10.0, seed=3)
        assert np.all(utilities >= 0.0)
        assert np.all(utilities <= 10.0)

    def test_count_and_validation(self):
        assert independent_utilities(0, seed=1).shape == (0,)
        with pytest.raises(ModelValidationError):
            independent_utilities(-1)
        with pytest.raises(ModelValidationError):
            independent_utilities(5, scale=-1.0)

    def test_two_level_uniform_is_not_plain_uniform(self):
        """U[0, U[0, 10]] concentrates more mass at small values than U[0, 10]."""
        utilities = independent_utilities(4000, scale=10.0, seed=4)
        assert np.mean(utilities) < 3.5  # plain U[0,10] would average ~5


class TestAssignUtilities:
    def test_beta_correlated_assignment(self, small_random_population):
        updated = assign_utilities(small_random_population, "beta_correlated", seed=5)
        assert np.all(updated.utility_rates <= small_random_population.betas + 1e-12)
        # other fields untouched
        np.testing.assert_allclose(updated.alphas, small_random_population.alphas)

    def test_independent_assignment(self, small_random_population):
        updated = assign_utilities(small_random_population, "independent", seed=5,
                                   scale=4.0)
        assert np.all(updated.utility_rates <= 4.0)

    def test_invalid_model(self, small_random_population):
        with pytest.raises(ModelValidationError):
            assign_utilities(small_random_population, "bogus")
