#!/usr/bin/env python
"""The Public Option in action: market discipline without regulation.

Reproduces the Section IV-A storyline on a 300-CP workload: a non-neutral
ISP competes with a Public Option ISP for consumers.  The example

* sweeps the non-neutral ISP's premium price and reports its market share,
  revenue and the system consumer surplus (Figure 7's shape);
* searches the ISP's strategy grid for the market-share-optimal strategy
  and shows it is also (nearly) the consumer-surplus-optimal one
  (Theorem 5);
* varies the Public Option's capacity share to illustrate the paper's
  "safety net" discussion — even a small Public Option disciplines the
  incumbent.

Run with ``python examples/public_option_duopoly.py``.
"""

from __future__ import annotations

import numpy as np

from repro import DuopolyGame, ISPStrategy, paper_population, strategy_grid


def main() -> None:
    population = paper_population(count=300)
    load = population.unconstrained_per_capita_load
    nu = 0.6 * load
    print(f"{len(population)} CPs, total per-capita capacity nu = {nu:.1f} "
          f"(saturation at {load:.1f})")

    # ------------------------------------------------------------------ #
    # Price sweep against an equal-capacity Public Option (Figure 7).
    # ------------------------------------------------------------------ #
    duopoly = DuopolyGame(population, total_nu=nu, strategic_capacity_share=0.5)
    print("\n-- Non-neutral ISP vs Public Option: price sweep (kappa=1) --")
    print(f"{'price':>8} {'market share':>14} {'Psi_I':>10} {'Phi':>10}")
    for price in np.linspace(0.0, 1.0, 11):
        outcome = duopoly.outcome(ISPStrategy(1.0, float(price)))
        print(f"{price:>8.2f} {outcome.market_share:>14.3f} "
              f"{outcome.isp_surplus:>10.3f} {outcome.consumer_surplus:>10.3f}")

    # ------------------------------------------------------------------ #
    # Theorem 5: market-share optimum == consumer-surplus optimum.
    # ------------------------------------------------------------------ #
    grid = strategy_grid(kappas=(0.25, 0.5, 0.75, 1.0),
                         prices=(0.1, 0.3, 0.5, 0.7, 0.9),
                         include_public_option=True)
    report = duopoly.alignment_report(grid)
    best_share = report["market_share_optimum"]
    best_phi = report["surplus_optimum"]
    print("\n-- Theorem 5 check --")
    print(f"market-share-optimal strategy : {best_share.strategy_strategic.describe()}"
          f"  (m_I={best_share.market_share:.3f}, Phi={best_share.consumer_surplus:.2f})")
    print(f"surplus-optimal strategy      : {best_phi.strategy_strategic.describe()}"
          f"  (m_I={best_phi.market_share:.3f}, Phi={best_phi.consumer_surplus:.2f})")
    print(f"consumer-surplus shortfall of the selfish optimum: "
          f"{report['surplus_shortfall']:.4f}")

    # ------------------------------------------------------------------ #
    # How big does the Public Option need to be?
    # ------------------------------------------------------------------ #
    print("\n-- Varying the Public Option's capacity share --")
    aggressive = ISPStrategy(1.0, 0.8)   # a strategy that hurts consumers
    print(f"{'PO share':>10} {'incumbent m_I':>14} {'Phi':>10}")
    for po_share in (0.1, 0.25, 0.5):
        game = DuopolyGame(population, total_nu=nu,
                           strategic_capacity_share=1.0 - po_share)
        outcome = game.outcome(aggressive)
        print(f"{po_share:>10.2f} {outcome.market_share:>14.3f} "
              f"{outcome.consumer_surplus:>10.3f}")
    print("\nEven a small Public Option lets consumers walk away from an "
          "aggressive incumbent, which is what aligns the incumbent's "
          "incentives with consumer surplus.")


if __name__ == "__main__":
    main()
