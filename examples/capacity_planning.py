#!/usr/bin/env python
"""Capacity planning with heterogeneous application mixes.

A network-facing example that uses the substrate directly (rather than the
games): an operator wants to know how much last-mile capacity per subscriber
is needed so that each application class retains a target fraction of its
users, under different rate-allocation disciplines.

The workload mixes the paper's three archetypes (web search, streaming,
real-time communications) in configurable proportions; the example sweeps
the per-capita capacity and reports, for every mechanism, the capacity at
which each class's demand (fraction of retained users) first reaches 95%.

Run with ``python examples/capacity_planning.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    AlphaFairAllocation,
    MaxMinFairAllocation,
    WeightedFairAllocation,
    solve_rate_equilibrium,
)
from repro.network.allocation import StrictPriorityAllocation
from repro.workloads.archetypes import archetype_mix

TARGET_DEMAND = 0.95


def capacity_for_target(population, mechanism, name: str, nus) -> float:
    index = population.index_of(name)
    for nu in nus:
        equilibrium = solve_rate_equilibrium(population, float(nu), mechanism)
        if equilibrium.demands[index] >= TARGET_DEMAND:
            return float(nu)
    return float("nan")


def main() -> None:
    population = archetype_mix({"google": 4, "netflix": 2, "skype": 4})
    load = population.unconstrained_per_capita_load
    nus = np.linspace(0.05 * load, 1.2 * load, 120)
    print(f"Workload: {len(population)} provider aggregates, saturation at "
          f"nu* = {load:.2f} per subscriber")

    mechanisms = {
        "max-min fair (TCP-like)": MaxMinFairAllocation(),
        "proportional fair (per aggregate)": AlphaFairAllocation(alpha=1.0),
        "weighted fair (2x real-time)": WeightedFairAllocation(
            weights={name: 2.0 for name in population.names
                     if name.startswith("skype")}),
        "strict priority (streaming first)": StrictPriorityAllocation(
            priority_order=[name for name in population.names
                            if name.startswith("netflix")]),
    }

    classes = {"web search": "google-0", "streaming": "netflix-0",
               "real-time": "skype-0"}
    header = f"{'mechanism':<36}" + "".join(f"{label:>14}" for label in classes)
    print("\nPer-subscriber capacity needed for 95% retained demand:")
    print(header)
    print("-" * len(header))
    for label, mechanism in mechanisms.items():
        row = f"{label:<36}"
        for class_label, provider in classes.items():
            capacity = capacity_for_target(population, mechanism, provider, nus)
            row += f"{capacity:>14.2f}"
        print(row)

    print("\nReading: under max-min fairness the elastic search traffic is "
          "satisfied with very little capacity while streaming needs the "
          "most; priority and weighting shift the requirement between "
          "classes without changing the total (work conservation, Axiom 2).")


if __name__ == "__main__":
    main()
