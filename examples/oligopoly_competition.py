#!/usr/bin/env python
"""Oligopolistic competition: does the market need neutrality rules at all?

Reproduces the Section IV-B analysis on a 200-CP workload with three ISPs
of different sizes:

* Lemma 4 — when all ISPs use the same strategy, market shares track
  capacity shares, so ISPs grow by investing in capacity;
* Theorem 6 — an ISP's best response for market share is (nearly) a best
  response for consumer surplus;
* an iterated best-response search for a market-share Nash equilibrium over
  a small strategy grid, and the consumer surplus it delivers compared to
  enforced neutrality.

Run with ``python examples/oligopoly_competition.py``.
"""

from __future__ import annotations

from repro import (
    ISPStrategy,
    NEUTRAL_STRATEGY,
    OligopolyGame,
    paper_population,
    strategy_grid,
)


def main() -> None:
    population = paper_population(count=200)
    load = population.unconstrained_per_capita_load
    nu = 0.5 * load
    shares = {"cable-co": 0.5, "telco": 0.3, "fiber-startup": 0.2}
    game = OligopolyGame(population, total_nu=nu, capacity_shares=shares,
                         migration_iterations=150)
    print(f"{len(population)} CPs, nu = {nu:.1f}, capacity shares = {shares}")

    # ------------------------------------------------------------------ #
    # Lemma 4: homogeneous strategies -> proportional market shares.
    # ------------------------------------------------------------------ #
    strategy = ISPStrategy(kappa=1.0, price=0.3)
    report = game.verify_proportional_shares(strategy, tolerance=0.02)
    print("\n-- Lemma 4: homogeneous strategy", strategy.describe(), "--")
    print("capacity shares :", {k: round(v, 3) for k, v in shares.items()})
    print("market shares   :", {k: round(v, 3)
                                for k, v in report["market_shares"].items()})
    print("surplus equalisation gap at m=gamma:", f"{report['max_gap']:.2e}",
          "->", "Lemma 4 holds" if report["holds"] else "Lemma 4 VIOLATED")

    # ------------------------------------------------------------------ #
    # Theorem 6: best responses for share vs for surplus.
    # ------------------------------------------------------------------ #
    candidates = strategy_grid(kappas=(0.5, 1.0), prices=(0.2, 0.4, 0.6),
                               include_public_option=True)
    baseline = {name: strategy for name in shares}
    best_share, outcome_share, _ = game.best_response(
        "cable-co", baseline, candidates, objective="market_share")
    best_phi, outcome_phi, _ = game.best_response(
        "cable-co", baseline, candidates, objective="consumer_surplus")
    print("\n-- Theorem 6: cable-co's best responses --")
    print(f"for market share    : {best_share.describe()}  "
          f"(m={outcome_share.market_share('cable-co'):.3f}, "
          f"Phi={outcome_share.consumer_surplus:.2f})")
    print(f"for consumer surplus: {best_phi.describe()}  "
          f"(m={outcome_phi.market_share('cable-co'):.3f}, "
          f"Phi={outcome_phi.consumer_surplus:.2f})")

    # ------------------------------------------------------------------ #
    # Iterated best response to a (grid) Nash equilibrium.
    # ------------------------------------------------------------------ #
    profile, equilibrium, converged = game.find_nash_equilibrium(
        candidates, objective="market_share", max_rounds=3)
    print("\n-- Iterated best response (market share objective) --")
    for name, chosen in profile.items():
        print(f"  {name:>14}: {chosen.describe()}  "
              f"m={equilibrium.market_share(name):.3f}")
    print("converged to a grid Nash equilibrium:", converged)
    print(f"consumer surplus under competition : {equilibrium.consumer_surplus:.2f}")

    neutral = game.homogeneous_outcome(NEUTRAL_STRATEGY)
    print(f"consumer surplus under forced neutrality: {neutral.consumer_surplus:.2f}")
    print("\nCompetition keeps non-neutral ISPs aligned with consumers, so "
          "neutrality regulation adds little (and can even hurt) in a "
          "competitive market — the paper's Section IV conclusion.")


if __name__ == "__main__":
    main()
