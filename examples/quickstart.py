#!/usr/bin/env python
"""Quickstart: the three-party ecosystem model in a few lines.

This walks through the paper's building blocks on the three archetype
content providers (Google-, Netflix- and Skype-type):

1. solve the rate equilibrium of a neutral bottleneck link (Section II);
2. let a monopolistic ISP differentiate service with a premium class
   (Section III) and see who joins and what it does to consumer surplus;
3. introduce a Public Option ISP and watch the market split (Section IV-A).

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    DuopolyGame,
    ISPStrategy,
    MonopolyGame,
    archetype_population,
    solve_rate_equilibrium,
)


def main() -> None:
    population = archetype_population()
    print("Content providers:")
    for cp in population:
        print(f"  {cp.name:>8}: popularity={cp.alpha:.1f} "
              f"theta_hat={cp.theta_hat:.1f} beta={cp.beta:.1f} "
              f"v={cp.revenue_rate:.1f} phi={cp.utility_rate:.1f}")

    # ------------------------------------------------------------------ #
    # 1. Rate equilibrium on a neutral link (Theorem 1).
    # ------------------------------------------------------------------ #
    print("\n== Neutral link: rate equilibrium vs per-capita capacity ==")
    for nu in (1.0, 2.0, 4.0, 6.0):
        equilibrium = solve_rate_equilibrium(population, nu)
        rates = ", ".join(f"{name}={theta:.2f}"
                          for name, theta in equilibrium.throughput_by_name().items())
        print(f"  nu={nu:>4.1f}: theta = {rates}   "
              f"Phi={equilibrium.consumer_surplus():.3f}")

    # ------------------------------------------------------------------ #
    # 2. A monopolist sells a premium class (two-stage game, Section III).
    # ------------------------------------------------------------------ #
    print("\n== Monopolist with a premium class (kappa=1) ==")
    monopoly = MonopolyGame(population, nu=3.0)
    for price in (0.1, 0.3, 0.6):
        outcome = monopoly.outcome(ISPStrategy(kappa=1.0, price=price))
        premium = [name for name, side in
                   outcome.partition.assignment_by_name().items()
                   if side == "premium"]
        print(f"  c={price:.1f}: premium class = {premium or ['(empty)']} "
              f"Psi={outcome.isp_surplus:.3f} Phi={outcome.consumer_surplus:.3f}")
    neutral = monopoly.neutral_outcome()
    print(f"  neutral regulation:        Psi={neutral.isp_surplus:.3f} "
          f"Phi={neutral.consumer_surplus:.3f}")

    # ------------------------------------------------------------------ #
    # 3. Add a Public Option ISP (Section IV-A).
    # ------------------------------------------------------------------ #
    print("\n== Duopoly against a Public Option ISP ==")
    duopoly = DuopolyGame(population, total_nu=3.0, strategic_capacity_share=0.5)
    for price in (0.1, 0.3, 0.6):
        outcome = duopoly.outcome(ISPStrategy(kappa=1.0, price=price))
        print(f"  c={price:.1f}: market share of the non-neutral ISP "
              f"m_I={outcome.market_share:.2f}  Phi={outcome.consumer_surplus:.3f} "
              f"Psi_I={outcome.isp_surplus:.3f}")
    print("\nConsumers migrate away from harmful differentiation, so the "
          "non-neutral ISP's best move is the one that also maximises "
          "consumer surplus (Theorem 5).")


if __name__ == "__main__":
    main()
