#!/usr/bin/env python
"""SolverConfig: choosing a kernel backend and tuning solver tolerances.

Every layer of the stack — the Theorem-1 bisection, the CP partition game,
the migration equilibrium, the sweeps and the runner — accepts a single
frozen ``SolverConfig`` that bundles:

* ``backend``: which carried-load kernel to use (``"reference"`` — the
  exact numpy implementation, the numerical baseline of every golden
  artifact — or ``"numba"``, njit-compiled loops that agree with the
  reference to <= 1e-10 and fall back to it, with a warning, when numba
  is not installed);
* the solver tolerances that used to be hard-coded per layer
  (``migration_tolerance``, ``switching_tolerance``, ``surplus_tolerance``,
  ``bisection_tolerance``);
* ``cache_policy``: ``"shared"`` (the registered process-wide caches,
  entries keyed per config so backends never alias) or ``"bypass"``.

Run with ``python examples/solver_backends.py``.
"""

from __future__ import annotations

from repro import (
    ISPStrategy,
    MonopolyGame,
    SolverConfig,
    archetype_population,
    solve_rate_equilibrium,
    use_config,
)
from repro.backends import available_backends


def main() -> None:
    population = archetype_population()
    strategy = ISPStrategy(kappa=1.0, price=0.4)

    # ------------------------------------------------------------------ #
    # 1. The default config: reference backend, documented tolerances.
    # ------------------------------------------------------------------ #
    default = SolverConfig()
    print(f"backends on this machine: {available_backends()}")
    print(f"default config: {default}")

    # ------------------------------------------------------------------ #
    # 2. Explicit config= on any game or solver entry point.
    # ------------------------------------------------------------------ #
    config = SolverConfig(backend="numba")  # degrades gracefully w/o numba
    equilibrium = solve_rate_equilibrium(population, 4.0, config=config)
    outcome = MonopolyGame(population, 4.0, config=config).outcome(strategy)
    print(f"\nbackend {config.backend!r} resolved to "
          f"{config.effective_backend()!r}")
    print(f"aggregate rate at nu=4: {equilibrium.aggregate_rate:.6f}")
    print(f"monopoly Psi: {outcome.isp_surplus:.6f}")

    # ------------------------------------------------------------------ #
    # 3. Ambient config: experiment functions never mention the config,
    #    but everything constructed inside a use_config block inherits it.
    #    (This is how `repro-netneutrality run --backend numba` works.)
    # ------------------------------------------------------------------ #
    with use_config(SolverConfig(cache_policy="bypass")):
        bypass = MonopolyGame(population, 4.0).outcome(strategy)
    print(f"\nbypass-policy Psi matches: {bypass.isp_surplus == outcome.isp_surplus}")

    # ------------------------------------------------------------------ #
    # 4. Provenance: what gets stamped into artifacts and the manifest.
    # ------------------------------------------------------------------ #
    print("\nsolver provenance recorded by the runner:")
    for key, value in sorted(config.provenance().items()):
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
