#!/usr/bin/env python
"""Monopoly scenario: when does paid prioritisation hurt consumers?

Reproduces the Section III analysis on the paper's random CP workload
(scaled down to 300 CPs so the example runs in seconds):

* sweep the premium price under ``kappa = 1`` at scarce and abundant
  capacity (Figure 4's regimes);
* find the monopolist's revenue-optimal strategy over a grid and compare
  the resulting consumer surplus with strict neutral regulation and with
  a Public Option ISP (the paper's headline ordering).

Run with ``python examples/monopoly_regulation.py``.
"""

from __future__ import annotations

import numpy as np

from repro import MonopolyGame, compare_regimes, paper_population, strategy_grid


def price_sweep_report(game: MonopolyGame, label: str) -> None:
    print(f"\n-- Premium price sweep under kappa = 1 ({label}) --")
    print(f"{'price':>8} {'Psi':>10} {'Phi':>10} {'premium CPs':>12} {'saturated':>10}")
    for price in np.linspace(0.05, 0.95, 10):
        outcome = game.optimal_price([float(price)], kappa=1.0)
        print(f"{price:>8.2f} {outcome.isp_surplus:>10.3f} "
              f"{outcome.consumer_surplus:>10.3f} "
              f"{outcome.premium_provider_count:>12d} "
              f"{str(outcome.premium_saturated):>10}")


def main() -> None:
    population = paper_population(count=300)
    load = population.unconstrained_per_capita_load
    print(f"Population: {len(population)} CPs, saturation capacity "
          f"nu* = {load:.1f}")

    scarce = MonopolyGame(population, nu=0.25 * load)
    abundant = MonopolyGame(population, nu=0.85 * load)
    price_sweep_report(scarce, f"scarce capacity, nu={0.25 * load:.0f}")
    price_sweep_report(abundant, f"abundant capacity, nu={0.85 * load:.0f}")

    print("\n-- Regulatory regimes at abundant capacity --")
    grid = strategy_grid(kappas=(0.25, 0.5, 0.75, 1.0),
                         prices=(0.15, 0.3, 0.45, 0.6, 0.75))
    comparison = compare_regimes(population, 0.85 * load, grid)
    print(comparison.summary_table())
    ordering = "holds" if comparison.paper_ordering_holds() else "does NOT hold"
    print(f"\nPaper ordering (Public Option >= neutral >= unregulated): {ordering}")


if __name__ == "__main__":
    main()
