#!/usr/bin/env python
"""Load-generate against an equilibrium server and report latency/coalescing.

Usage::

    # Against an already-running server (e.g. `repro-netneutrality serve`):
    python scripts/service_loadgen.py --port 8787 --distribution hot \
        --requests 200 --concurrency 20

    # Self-contained: spin up an in-process server on an ephemeral port,
    # drive it, shut it down:
    python scripts/service_loadgen.py --in-process --distribution mixed

Prints one JSON report (throughput, p50/p99 latency in milliseconds, and
the scheduler's coalesce/fusion counters over exactly this run).  With
``--expect-coalescing`` the script exits 4 when no request coalesced —
CI's smoke check that the serving layer's cross-request sharing actually
engaged.  All request streams are deterministic; see
:mod:`repro.service.loadgen`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.loadgen import DISTRIBUTIONS, run_loadgen  # noqa: E402
from repro.service.server import EquilibriumServer  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Concurrent load generator for the equilibrium service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="port of the running server (default 8787)")
    parser.add_argument("--in-process", action="store_true",
                        help="start a private server on an ephemeral port "
                             "instead of connecting to --host/--port")
    parser.add_argument("--distribution", default="hot",
                        choices=DISTRIBUTIONS,
                        help="request-key distribution (default: hot)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--count", type=int, default=1000,
                        help="CP population size of every request")
    parser.add_argument("--mechanism", default="maxmin",
                        choices=("maxmin", "proportional_to_demand"))
    parser.add_argument("--detail", action="store_true",
                        help="request detail:true payloads (per-provider "
                             "matrices; HTTP/1.1 responses stream chunked)")
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="micro-batch window of the --in-process server")
    parser.add_argument("--naive", action="store_true",
                        help="run the --in-process server with batching and "
                             "coalescing disabled (baseline mode)")
    parser.add_argument("--expect-coalescing", action="store_true",
                        help="exit 4 when the run coalesced zero requests")
    return parser


async def _run(args: argparse.Namespace) -> dict:
    if args.in_process:
        server = EquilibriumServer(
            port=0, window_seconds=args.window_ms / 1000.0, naive=args.naive)
        await server.start()
        serve_task = asyncio.create_task(server.serve_until_closed())
        host, port = server.address
        try:
            return await run_loadgen(
                host, port, distribution=args.distribution,
                requests=args.requests, concurrency=args.concurrency,
                count=args.count, mechanism=args.mechanism,
                detail=args.detail)
        finally:
            await server.close()
            await serve_task
    return await run_loadgen(
        args.host, args.port, distribution=args.distribution,
        requests=args.requests, concurrency=args.concurrency,
        count=args.count, mechanism=args.mechanism, detail=args.detail)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.requests < 1 or args.concurrency < 1:
        print("error: --requests and --concurrency must be >= 1",
              file=sys.stderr)
        return 2
    try:
        report = asyncio.run(_run(args))
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach the server: {error}", file=sys.stderr)
        return 2
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.expect_coalescing and report["coalesced"] == 0:
        print("error: expected cross-request coalescing, but no request "
              "coalesced", file=sys.stderr)
        return 4
    return 0


if __name__ == "__main__":
    sys.exit(main())
