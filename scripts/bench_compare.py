#!/usr/bin/env python
"""Diff two ``BENCH_summary.json`` files and fail on performance regression.

Usage::

    python scripts/bench_compare.py baseline.json current.json \
        [--threshold 1.25] [--min-seconds 0.05]

Prints a per-benchmark table (baseline seconds, current seconds, ratio) and
exits non-zero when any benchmark slowed down by more than ``--threshold``
(a ratio: 1.25 means "25% slower fails").  Benchmarks faster than
``--min-seconds`` in both runs are ignored — their timings are noise.
Benchmarks present in only one file are reported but by default never fail
the check, so adding or retiring benchmarks does not break CI; pass
``--require-baseline`` to instead exit with status 3 when a baseline
benchmark is missing from the current run (a renamed or deleted benchmark
would otherwise silently drop out of the regression gate).

When both summaries carry the equilibrium server's nested ``service``
entry (written by ``benchmarks/bench_service.py``), its per-workload
latency/throughput metrics are gated too: p99 may not grow by more than
``--service-threshold`` (default: ``--threshold``) and throughput may not
shrink by more than the same factor.  p99 comparisons where both sides are
below ``--service-min-ms`` are ignored as noise, mirroring
``--min-seconds``.  Summaries without a ``service`` entry skip the section
cleanly — the serving gate never fails a run that did not measure serving.

The multi-process ``service_workers`` entry (hot-workload metrics keyed by
``--workers`` count) is gated the same way when both summaries carry it;
summaries from before the axis existed skip the section cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_timings(path: Path) -> dict[str, float]:
    """Per-benchmark wall times from a summary file.

    Accepts both the harness schema (``{"benchmarks": {name: {"seconds":
    s}}}``) and a flat ``{name: seconds}`` mapping, so hand-written
    baselines work too.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")
    entries = payload.get("benchmarks", payload) if isinstance(payload, dict) \
        else None
    if not isinstance(entries, dict):
        raise SystemExit(f"bench_compare: {path} is not a benchmark summary")
    timings: dict[str, float] = {}
    for name, value in entries.items():
        if name in ("schema", "caches", "note"):
            # Harness metadata, not benchmarks — a flat file copied from the
            # harness schema must not grow a fake benchmark named "schema".
            continue
        if isinstance(value, dict):
            value = value.get("seconds")
        if isinstance(value, (int, float)):
            timings[name] = float(value)
    return timings


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float, min_seconds: float) -> tuple[list[str], bool]:
    """Render the comparison table; returns (lines, any_regression)."""
    names = sorted(set(baseline) | set(current))
    width = max([len(name) for name in names] + [12])
    header = (f"{'benchmark':<{width}} {'baseline':>10} {'current':>10} "
              f"{'ratio':>8}  status")
    lines = [header, "-" * len(header)]
    regressed = False
    for name in names:
        before = baseline.get(name)
        after = current.get(name)
        if before is None or after is None:
            status = "baseline-only" if after is None else "new"
            shown = before if before is not None else after
            lines.append(f"{name:<{width}} "
                         f"{(before if before is not None else float('nan')):>10.3f} "
                         f"{(after if after is not None else float('nan')):>10.3f} "
                         f"{'':>8}  {status} ({shown:.3f}s)")
            continue
        ratio = after / before if before > 0 else float("inf")
        if max(before, after) < min_seconds:
            status = "ignored (below min-seconds)"
        elif ratio > threshold:
            status = f"REGRESSION (>{threshold:g}x)"
            regressed = True
        elif ratio < 1.0 / threshold:
            status = "improved"
        else:
            status = "ok"
        lines.append(f"{name:<{width}} {before:>10.3f} {after:>10.3f} "
                     f"{ratio:>8.3f}  {status}")
    return lines, regressed


def load_service_workloads(path: Path) -> dict[str, dict] | None:
    """The nested ``service`` entry's per-workload metrics, or ``None``.

    Returns ``None`` (the section is skipped, never failed) when the
    summary has no ``service`` benchmark or its shape predates the serving
    harness.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    entries = payload.get("benchmarks", payload)
    if not isinstance(entries, dict):
        return None
    entry = entries.get("service")
    if not isinstance(entry, dict):
        return None
    workloads = entry.get("workloads")
    if not isinstance(workloads, dict):
        return None
    return {name: metrics for name, metrics in workloads.items()
            if isinstance(metrics, dict)}


def load_worker_workloads(path: Path) -> dict[str, dict] | None:
    """The ``service_workers`` entry's per-worker-count metrics, or ``None``.

    Returns ``None`` when the summary predates the multi-process axis
    (older summaries have no ``service_workers`` benchmark) — the section
    is then skipped cleanly, exactly like the ``service`` section.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    entries = payload.get("benchmarks", payload)
    if not isinstance(entries, dict):
        return None
    entry = entries.get("service_workers")
    if not isinstance(entry, dict):
        return None
    workloads = entry.get("workloads_by_workers")
    if not isinstance(workloads, dict):
        return None
    return {name: metrics for name, metrics in workloads.items()
            if isinstance(metrics, dict)}


def compare_service(baseline: dict[str, dict], current: dict[str, dict],
                    threshold: float, min_ms: float
                    ) -> tuple[list[str], bool]:
    """Gate the service workloads' p99 latency and throughput.

    A workload regresses when its p99 grows by more than ``threshold`` (and
    at least one side is >= ``min_ms``), or its throughput shrinks by more
    than the same factor.  Workloads present on only one side are reported
    but never fail.
    """
    names = sorted(set(baseline) | set(current))
    width = max([len(name) for name in names] + [10])
    header = (f"{'workload':<{width}} {'p99 base':>10} {'p99 cur':>10} "
              f"{'rps base':>10} {'rps cur':>10}  status")
    lines = [header, "-" * len(header)]
    regressed = False
    for name in names:
        before = baseline.get(name)
        after = current.get(name)
        if before is None or after is None:
            status = "baseline-only" if after is None else "new"
            lines.append(f"{name:<{width}} {'':>10} {'':>10} {'':>10} "
                         f"{'':>10}  {status}")
            continue
        p99_before = float(before.get("p99_ms", 0.0))
        p99_after = float(after.get("p99_ms", 0.0))
        rps_before = float(before.get("throughput_rps", 0.0))
        rps_after = float(after.get("throughput_rps", 0.0))
        problems = []
        if max(p99_before, p99_after) >= min_ms:
            p99_ratio = (p99_after / p99_before if p99_before > 0
                         else float("inf"))
            if p99_ratio > threshold:
                problems.append(f"p99 {p99_ratio:.2f}x")
        if rps_before > 0 and rps_after < rps_before / threshold:
            problems.append(
                f"throughput {rps_after / rps_before:.2f}x")
        if problems:
            status = f"REGRESSION ({', '.join(problems)})"
            regressed = True
        else:
            status = "ok"
        lines.append(f"{name:<{width}} {p99_before:>10.2f} "
                     f"{p99_after:>10.2f} {rps_before:>10.1f} "
                     f"{rps_after:>10.1f}  {status}")
    return lines, regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regressed between two summaries.")
    parser.add_argument("baseline", type=Path,
                        help="BENCH_summary.json of the reference run")
    parser.add_argument("current", type=Path,
                        help="BENCH_summary.json of the run under test")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="failure ratio current/baseline (default 1.25)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore benchmarks faster than this in both runs")
    parser.add_argument("--require-baseline", action="store_true",
                        help="exit 3 when a baseline benchmark is missing "
                             "from the current run (default: report only)")
    parser.add_argument("--service-threshold", type=float, default=None,
                        help="failure ratio for the service entry's p99 "
                             "latency growth / throughput shrink (default: "
                             "--threshold)")
    parser.add_argument("--service-min-ms", type=float, default=1.0,
                        help="ignore service p99 comparisons where both "
                             "runs are below this many milliseconds "
                             "(default 1.0)")
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")
    service_threshold = (args.service_threshold
                         if args.service_threshold is not None
                         else args.threshold)
    if service_threshold <= 1.0:
        parser.error("--service-threshold must be > 1.0")
    baseline = load_timings(args.baseline)
    current = load_timings(args.current)
    lines, regressed = compare(baseline, current, args.threshold,
                               args.min_seconds)
    print("\n".join(lines))
    service_baseline = load_service_workloads(args.baseline)
    service_current = load_service_workloads(args.current)
    if service_baseline is not None and service_current is not None:
        service_lines, service_regressed = compare_service(
            service_baseline, service_current, service_threshold,
            args.service_min_ms)
        print("\nservice workloads:")
        print("\n".join(service_lines))
        regressed = regressed or service_regressed
    else:
        missing_side = ("both" if service_baseline is None
                        and service_current is None
                        else "baseline" if service_baseline is None
                        else "current")
        print(f"\nservice workloads: no entry in {missing_side} "
              "summary; section skipped")
    workers_baseline = load_worker_workloads(args.baseline)
    workers_current = load_worker_workloads(args.current)
    if workers_baseline is not None and workers_current is not None:
        workers_lines, workers_regressed = compare_service(
            workers_baseline, workers_current, service_threshold,
            args.service_min_ms)
        print("\nservice workers axis (hot workload by --workers):")
        print("\n".join(workers_lines))
        regressed = regressed or workers_regressed
    else:
        missing_side = ("both" if workers_baseline is None
                        and workers_current is None
                        else "baseline" if workers_baseline is None
                        else "current")
        print(f"\nservice workers axis: no entry in {missing_side} "
              "summary; section skipped")
    missing = sorted(set(baseline) - set(current))
    if regressed:
        print(f"\nFAIL: at least one benchmark slowed by more than "
              f"{args.threshold:g}x", file=sys.stderr)
        return 1
    if args.require_baseline and missing:
        # Distinct exit code: coverage loss, not a timing regression.
        print("\nFAIL: baseline benchmarks missing from the current run: "
              + ", ".join(missing), file=sys.stderr)
        return 3
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
