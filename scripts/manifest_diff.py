#!/usr/bin/env python
"""Diff two reproduce-all run manifests and fail on any mismatch.

Usage::

    python scripts/manifest_diff.py golden/manifest.json current/manifest.json

Prints a per-experiment table (golden hash, current hash, status) and exits
non-zero when any artifact hash, size or finding status differs, or when an
experiment is present in only one manifest.  Because reproduce-all's
artifact bytes are canonical, two manifests agree exactly when every
experiment produced byte-identical output — this is the CI check that the
sharded runner is deterministic across worker counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


#: Mirrors repro.runner.artifacts; kept in sync so this script stays
#: stdlib-only and runnable without PYTHONPATH (like bench_compare.py).
MANIFEST_KIND = "repro-netneutrality/run-manifest"
MANIFEST_SCHEMA_VERSION = 1


def load_manifest(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"manifest_diff: cannot read {path}: {error}")
    if not isinstance(payload, dict) or \
            payload.get("kind") != MANIFEST_KIND:
        raise SystemExit(f"manifest_diff: {path} is not a run manifest")
    if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise SystemExit(
            f"manifest_diff: {path} has unsupported manifest schema "
            f"{payload.get('schema')!r} (this tool reads version "
            f"{MANIFEST_SCHEMA_VERSION})")
    experiments = payload.get("experiments")
    if not isinstance(experiments, dict):
        raise SystemExit(f"manifest_diff: {path} has no experiments table")
    for name, entry in experiments.items():
        if not isinstance(entry, dict) or not isinstance(
                entry.get("sha256"), str):
            raise SystemExit(
                f"manifest_diff: {path}: experiment {name!r} lacks a "
                "sha256 digest")
    return payload


def compare(golden: dict, current: dict) -> tuple[list[str], bool]:
    """Render the comparison table; returns (lines, any_mismatch)."""
    golden_entries = golden["experiments"]
    current_entries = current["experiments"]
    names = sorted(set(golden_entries) | set(current_entries))
    width = max([len(name) for name in names] + [10])
    header = f"{'experiment':<{width}} {'golden':>12} {'current':>12}  status"
    lines = [header, "-" * len(header)]
    mismatch = golden.get("scale") != current.get("scale")
    if mismatch:
        lines.append(f"scale mismatch: {golden.get('scale')!r} != "
                     f"{current.get('scale')!r}")
    if golden.get("solver") != current.get("solver"):
        # Comparing runs from different solver backends (or tolerance
        # settings) is apples-to-oranges even when the hashes happen to
        # agree — flag it exactly like a scale mismatch.
        lines.append(f"solver mismatch: {golden.get('solver')!r} != "
                     f"{current.get('solver')!r}")
        mismatch = True
    for name in names:
        before = golden_entries.get(name)
        after = current_entries.get(name)
        if before is None or after is None:
            status = "golden-only" if after is None else "current-only"
            lines.append(f"{name:<{width}} {'':>12} {'':>12}  {status}")
            mismatch = True
            continue
        short_before = before["sha256"][:12]
        short_after = after["sha256"][:12]
        if before["sha256"] != after["sha256"]:
            status = "HASH MISMATCH"
            mismatch = True
        elif before.get("failed_findings") != after.get("failed_findings"):
            status = "FINDINGS MISMATCH"
            mismatch = True
        else:
            status = "ok"
        lines.append(f"{name:<{width}} {short_before:>12} {short_after:>12}"
                     f"  {status}")
    return lines, mismatch


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when two reproduce-all manifests differ.")
    parser.add_argument("golden", type=Path,
                        help="manifest.json of the reference run")
    parser.add_argument("current", type=Path,
                        help="manifest.json of the run under test")
    args = parser.parse_args(argv)
    golden = load_manifest(args.golden)
    current = load_manifest(args.current)
    lines, mismatch = compare(golden, current)
    print("\n".join(lines))
    if mismatch:
        print("\nFAIL: manifests differ", file=sys.stderr)
        return 1
    print("\nOK: manifests agree on every artifact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
