"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that legacy (non-PEP-517) editable installs — ``pip install -e .`` in
offline environments without the ``wheel`` package — keep working.
"""

from setuptools import setup

setup()
