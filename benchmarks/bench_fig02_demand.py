"""FIG2 — demand curves ``d_i(omega_i)`` for a range of sensitivities (Figure 2)."""

from __future__ import annotations

from conftest import run_once

from repro.simulation import experiments


def test_fig02_demand_curves(benchmark, record_report):
    result = run_once(benchmark, experiments.figure2_demand_curves,
                      betas=(0.1, 0.5, 1.0, 3.0, 5.0, 10.0), points=201)
    record_report(result)
    # Paper shape: beta=5 roughly halves demand at a 10% throughput drop,
    # while beta=0.1 barely reacts.
    assert result.findings["beta5_halved_by_10pct_drop"]
    assert result.findings["low_beta_insensitive"]
