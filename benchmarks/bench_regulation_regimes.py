"""REG — the paper's headline ordering of regulatory regimes.

Unregulated monopoly <= network-neutral regulation <= Public Option for the
monopoly side, with oligopolistic competition delivering (at least) as much
consumer surplus as neutral regulation.
"""

from __future__ import annotations

from conftest import run_once

from repro.simulation import experiments


def test_regulation_regimes(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.regulation_regimes,
                      population=paper_cps, nu=200.0,
                      kappas=(0.5, 1.0), prices=(0.2, 0.45, 0.7))
    record_report(result)
    assert result.findings["paper_ordering_holds"]
    ranking = result.findings["ranking"]
    assert ranking[-1] in ("unregulated_monopoly", "neutral_monopoly")
