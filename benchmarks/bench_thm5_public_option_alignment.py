"""THM5 — against a Public Option, market share and consumer surplus align (Theorem 5)."""

from __future__ import annotations

from conftest import run_once

from repro.simulation import experiments


def test_thm5_public_option_alignment(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.theorem5_public_option_alignment,
                      population=paper_cps, nu=150.0,
                      kappas=(0.5, 0.75, 1.0),
                      prices=(0.1, 0.3, 0.5, 0.7, 0.9))
    record_report(result)
    assert result.findings["theorem5_holds_within_tolerance"]
