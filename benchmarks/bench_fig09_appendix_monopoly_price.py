"""FIG9 — appendix: Figure 4 with phi independent of beta (Figure 9)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

PRICES = tuple(np.round(np.linspace(0.0, 1.0, 21), 6))
NUS = (20.0, 50.0, 100.0, 150.0, 200.0)


def test_fig09_appendix_monopoly_price(benchmark, record_report,
                                       paper_cps_appendix):
    result = run_once(benchmark, experiments.figure9_appendix_monopoly_price,
                      population=paper_cps_appendix, nus=NUS, prices=PRICES,
                      kappa=1.0)
    record_report(result)
    # The appendix finds the same qualitative regimes with the independent
    # utility model as with the beta-correlated one.
    assert result.findings["psi_linear_small_c"]
    assert result.findings["monopoly_misaligned_when_capacity_abundant"]
