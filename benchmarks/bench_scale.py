"""SCALE — columnar population core from 10^3 to 10^6 content providers.

The ROADMAP's north star is an equilibrium solver that handles millions of
CPs; this sweep measures how the columnar structure-of-arrays core scales.
For each population size it times

* the columnar population build (``Population.from_columns`` straight from
  the random draws — no per-CP objects);
* one max-min + Eq-(3) rate equilibrium solve (Theorem 1 bisection over
  the sorted-``theta_hat`` prefix profile) at a mid-load capacity;
* a capacity-grid ``solve_caps`` pass (the batched kernel behind the
  sweep layer), whose memory is kept flat in the grid size by the
  element-bounded chunking of ``CommonCapProfile._carried_bounded``.

Per-size wall times and peak RSS are recorded into ``BENCH_summary.json``
under the ``scale`` key, so the scaling curve is tracked PR over PR next to
the experiment timings.  Set ``REPRO_BENCH_SCALE_MAX_CPS`` to cap the
largest population (CI smoke lanes use a smaller ceiling).
"""

from __future__ import annotations

import os
import resource

import numpy as np

from conftest import record_extra, run_once

from repro.backends import get_backend, numba_available
from repro.network.allocation import MaxMinFairAllocation
from repro.network.equilibrium import (
    ExponentialMaxMinProfile,
    common_cap_profile,
    solve_rate_equilibrium,
)
from repro.workloads.populations import PopulationSpec, random_population

#: Population sizes swept (log-spaced decades), capped by the environment.
_SIZES = (1_000, 10_000, 100_000, 1_000_000)
#: Capacity-grid length for the batched solve; memory must stay flat in it.
_GRID_POINTS = 64


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: ru_maxrss KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _sizes() -> tuple[int, ...]:
    ceiling = int(os.environ.get("REPRO_BENCH_SCALE_MAX_CPS", _SIZES[-1]))
    return tuple(size for size in _SIZES if size <= ceiling) or _SIZES[:1]


def _backend_axis(population, nu: float) -> dict:
    """Per-backend scalar solve times at this population size.

    Each backend gets its own profile (reference- and numba-backed profiles
    never alias) and a warm-up solve before the timed one, so the numba
    entry measures the compiled kernel, not JIT compilation.  When numba is
    not installed only the reference entry carries timings and the numba
    entry records ``available: false`` — the summary schema is identical
    either way, which keeps ``bench_compare`` diffs meaningful across
    machines with and without the accelerator.
    """
    import time

    axis: dict = {}
    caps: dict[str, float] = {}
    for name in ("reference", "numba"):
        available = name == "reference" or numba_available()
        entry: dict = {"available": available}
        if available:
            profile = ExponentialMaxMinProfile(
                population.alphas, population.theta_hats, population.betas,
                backend=get_backend(name))
            profile.solve_cap(nu)  # warm-up (JIT compile + cache fills)
            start = time.perf_counter()
            caps[name] = profile.solve_cap(nu)
            entry["solve_cap_seconds"] = time.perf_counter() - start
            entry["cap"] = caps[name]
        axis[name] = entry
    if "numba" in caps:
        # The backend contract: both kernels solve the same equation to
        # <= 1e-10 (absolute + relative).
        scale = max(1.0, abs(caps["reference"]))
        assert abs(caps["numba"] - caps["reference"]) <= 1e-10 * scale
    return axis


def _scaling_sweep() -> dict:
    import time

    points = []
    for size in _sizes():
        start = time.perf_counter()
        population = random_population(PopulationSpec(count=size), seed=97)
        build_seconds = time.perf_counter() - start

        load = population.unconstrained_per_capita_load
        nu = 0.5 * load

        start = time.perf_counter()
        equilibrium = solve_rate_equilibrium(population, nu)
        solve_seconds = time.perf_counter() - start

        # Capacity-axis kernel: one multi-target bisection for the whole
        # grid.  Only the (G,) cap vector is materialised — the carried-load
        # evaluations are chunked to a bounded element count, which keeps
        # peak memory flat in the grid length even at 10^6 CPs.
        nu_grid = np.linspace(0.05 * load, 1.2 * load, _GRID_POINTS)
        profile = common_cap_profile(population, MaxMinFairAllocation())
        start = time.perf_counter()
        caps = profile.solve_caps(nu_grid)
        grid_seconds = time.perf_counter() - start

        points.append({
            "cps": size,
            "build_seconds": build_seconds,
            "solve_seconds": solve_seconds,
            "grid_seconds": grid_seconds,
            "grid_points": _GRID_POINTS,
            "common_cap": equilibrium.common_cap,
            "peak_rss_mb": _peak_rss_mb(),
            "backends": _backend_axis(population, nu),
        })
        # Work conservation sanity at every size: the congested solve
        # carries exactly nu (the batch shares the same kernel).
        assert abs(equilibrium.aggregate_rate - nu) <= 1e-9 * max(1.0, nu)
        assert len(caps) == _GRID_POINTS and np.all(np.isfinite(caps[:1]))
    return {"points": points}


def test_scale_columnar_core(benchmark):
    summary = run_once(benchmark, _scaling_sweep)
    record_extra("test_scale_columnar_core", {"scale": summary["points"]})
    largest = summary["points"][-1]
    # The ISSUE's bar: a 10^6-CP max-min + Eq-(3) equilibrium in
    # single-digit seconds (scaled pro rata when the ceiling is lowered).
    assert largest["solve_seconds"] < 10.0
    # Memory flat in grid size: the 64-point batched pass must not blow the
    # peak RSS past the columnar build + a bounded chunk (generous 4x).
    sizes = [point["cps"] for point in summary["points"]]
    assert sizes == sorted(sizes)
