"""FIG10 — appendix: Figure 5 with phi independent of beta (Figure 10)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

NUS = tuple(np.round(np.linspace(20.0, 500.0, 9), 6))


def test_fig10_appendix_monopoly_capacity(benchmark, record_report,
                                          paper_cps_appendix):
    result = run_once(benchmark, experiments.figure10_appendix_monopoly_capacity,
                      population=paper_cps_appendix, kappas=(0.3, 0.6, 0.9),
                      prices=(0.2, 0.5, 0.8), nus=NUS)
    record_report(result)
    assert result.findings["psi_high_kappa_geq_low_kappa_at_large_nu"]
    assert result.findings["phi_low_kappa_geq_high_kappa_at_large_nu"]
