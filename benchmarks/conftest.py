"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or checks one of its
analytic claims) on the paper's 1000-CP workload, runs it exactly once via
``benchmark.pedantic`` (the experiments are deterministic, so repeated
timing rounds would only waste time) and writes the full plain-text report
— tables plus qualitative findings — to ``benchmarks/reports/<id>.txt`` so
the results can be inspected and diffed against the golden artifacts
committed under ``tests/runner/golden/`` (see ARTIFACTS.md).

After every run the harness also writes a machine-readable
``benchmarks/BENCH_summary.json`` with the wall time and solver-cache hit
rates of each benchmark that ran; ``scripts/bench_compare.py`` diffs two
such summaries and fails above a configurable regression threshold, so the
performance trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.cache import all_cache_stats, clear_all_caches
from repro.simulation.results import ExperimentResult
from repro.workloads.populations import paper_population

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
SUMMARY_PATH = pathlib.Path(__file__).parent / "BENCH_summary.json"

#: Wall time (seconds) of every benchmark executed in this session.
_BENCH_TIMINGS: dict[str, float] = {}
#: Solver-cache statistics captured right after each benchmark.  The caches
#: are cleared before every benchmark, so these are per-benchmark numbers.
_BENCH_CACHE_STATS: dict[str, dict] = {}
#: Extra per-benchmark metrics (e.g. the scaling sweep's per-size wall
#: times and peak RSS) merged verbatim into the summary entry.
_BENCH_EXTRA: dict[str, dict] = {}


def record_extra(name: str, payload: dict) -> None:
    """Attach additional JSON-serialisable metrics to a benchmark's entry."""
    _BENCH_EXTRA.setdefault(name, {}).update(payload)


def record_benchmark(name: str, seconds: float,
                     extra: dict | None = None) -> None:
    """Record a summary entry under an explicit name.

    For harness code that measures itself (the serving benchmark times
    whole concurrent workloads, not one function call) and wants a stable
    summary key like ``"service"`` instead of a pytest node name.
    """
    _BENCH_TIMINGS[name] = seconds
    _BENCH_CACHE_STATS[name] = all_cache_stats()
    if extra:
        record_extra(name, extra)


@pytest.fixture(autouse=True)
def _cold_solver_caches():
    """Start every benchmark with cold solver caches.

    The equilibrium/class-cap/partition caches are module-global, so without
    this a benchmark's timing would depend on which benchmarks ran before it
    in the session — `pytest -k fig07` and a full run would disagree, making
    the bench_compare regression gate order-dependent.  Clearing also resets
    the hit/miss counters, which makes the recorded cache statistics
    per-benchmark.
    """
    clear_all_caches()
    yield


@pytest.fixture(scope="session")
def paper_cps():
    """The paper's main-text workload: 1000 CPs, phi ~ U[0, beta]."""
    return paper_population(count=1000, utility_model="beta_correlated")


@pytest.fixture(scope="session")
def paper_cps_appendix():
    """The appendix workload: same CPs, phi ~ U[0, U[0, 10]] independent of beta."""
    return paper_population(count=1000, utility_model="independent")


@pytest.fixture(scope="session")
def record_report():
    """Write an experiment's report to ``benchmarks/reports/<id>.txt``."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _record(result: ExperimentResult) -> ExperimentResult:
        path = REPORT_DIR / f"{result.experiment_id.lower()}.txt"
        path.write_text(result.report(max_rows=25) + "\n", encoding="utf-8")
        return result

    return _record


def run_once(benchmark, function, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Also records the wall time and the benchmark's own solver-cache hit
    rates into the session's ``BENCH_summary.json`` entry.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(function, kwargs=kwargs, rounds=1, iterations=1,
                                warmup_rounds=0)
    elapsed = time.perf_counter() - start
    name = getattr(benchmark, "name", None) or function.__name__
    # Prefer pytest-benchmark's own measurement when available (it excludes
    # the fixture machinery); fall back to the perf_counter envelope.
    try:
        elapsed = float(benchmark.stats.stats.mean)
    except AttributeError:
        pass
    _BENCH_TIMINGS[name] = elapsed
    _BENCH_CACHE_STATS[name] = all_cache_stats()
    return result


def pytest_sessionfinish(session, exitstatus):
    """Emit the machine-readable per-benchmark timing summary.

    Entries are merged into any existing summary rather than replacing it,
    so a partial run (``-k fig04``, or a session where a later benchmark
    errors out) updates only the benchmarks that actually ran — the
    regression gate keeps seeing the others' last known timings instead of
    silently losing them.
    """
    if not _BENCH_TIMINGS:
        return
    benchmarks: dict[str, dict] = {}
    try:
        existing = json.loads(SUMMARY_PATH.read_text(encoding="utf-8"))
        if isinstance(existing, dict) and isinstance(existing.get("benchmarks"),
                                                     dict):
            benchmarks.update(existing["benchmarks"])
    except (OSError, ValueError):
        pass
    for name, seconds in _BENCH_TIMINGS.items():
        entry: dict = {"seconds": seconds}
        stats = _BENCH_CACHE_STATS.get(name)
        if stats is not None:
            entry["caches"] = stats
        extra = _BENCH_EXTRA.get(name)
        if extra is not None:
            entry.update(extra)
        benchmarks[name] = entry
    payload = {
        "schema": 1,
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    SUMMARY_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
