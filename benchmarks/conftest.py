"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or checks one of its
analytic claims) on the paper's 1000-CP workload, runs it exactly once via
``benchmark.pedantic`` (the experiments are deterministic, so repeated
timing rounds would only waste time) and writes the full plain-text report
— tables plus qualitative findings — to ``benchmarks/reports/<id>.txt`` so
the results can be inspected and compared against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.simulation.results import ExperimentResult
from repro.workloads.populations import paper_population

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def paper_cps():
    """The paper's main-text workload: 1000 CPs, phi ~ U[0, beta]."""
    return paper_population(count=1000, utility_model="beta_correlated")


@pytest.fixture(scope="session")
def paper_cps_appendix():
    """The appendix workload: same CPs, phi ~ U[0, U[0, 10]] independent of beta."""
    return paper_population(count=1000, utility_model="independent")


@pytest.fixture(scope="session")
def record_report():
    """Write an experiment's report to ``benchmarks/reports/<id>.txt``."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _record(result: ExperimentResult) -> ExperimentResult:
        path = REPORT_DIR / f"{result.experiment_id.lower()}.txt"
        path.write_text(result.report(max_rows=25) + "\n", encoding="utf-8")
        return result

    return _record


def run_once(benchmark, function, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
