"""THM4 — kappa = 1 dominates smaller premium capacity shares (Theorem 4)."""

from __future__ import annotations

from conftest import run_once

from repro.simulation import experiments


def test_thm4_kappa_dominance(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.theorem4_kappa_dominance,
                      population=paper_cps, nus=(50.0, 150.0, 300.0),
                      prices=(0.2, 0.5, 0.8), kappas=(0.25, 0.5, 0.75, 1.0))
    record_report(result)
    assert result.findings["kappa_one_dominates_everywhere"]
