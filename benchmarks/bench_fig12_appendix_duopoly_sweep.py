"""FIG12 — appendix: Figure 8 with phi independent of beta (Figure 12)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

NUS = tuple(np.round(np.linspace(25.0, 500.0, 9), 6))


def test_fig12_appendix_duopoly_capacity(benchmark, record_report,
                                         paper_cps_appendix):
    result = run_once(benchmark, experiments.figure12_appendix_duopoly_capacity,
                      population=paper_cps_appendix, kappas=(0.3, 0.9),
                      prices=(0.2, 0.8), nus=NUS)
    record_report(result)
    assert result.findings["strategic_isp_capped_near_half_at_large_nu"]
    assert result.findings["phi_insensitive_to_strategy"]
