"""LEM4 — homogeneous strategies give market shares proportional to capacity (Lemma 4)."""

from __future__ import annotations

from conftest import run_once

from repro.core.strategy import ISPStrategy
from repro.simulation import experiments


def test_lemma4_proportional_shares(benchmark, record_report):
    result = run_once(benchmark, experiments.lemma4_proportional_shares,
                      nu=150.0,
                      capacity_shares={"ISP-A": 0.5, "ISP-B": 0.3, "ISP-C": 0.2},
                      strategy=ISPStrategy(0.6, 0.4), count=300)
    record_report(result)
    assert result.findings["lemma4_holds"]
