"""FIG11 — appendix: Figure 7 with phi independent of beta (Figure 11)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

PRICES = tuple(np.round(np.linspace(0.0, 1.0, 11), 6))
NUS = (20.0, 100.0, 200.0)


def test_fig11_appendix_duopoly_price(benchmark, record_report,
                                      paper_cps_appendix):
    result = run_once(benchmark, experiments.figure11_appendix_duopoly_price,
                      population=paper_cps_appendix, nus=NUS, prices=PRICES,
                      kappa=1.0)
    record_report(result)
    assert result.findings["phi_stays_positive_at_c1"]
    assert result.findings["psi_drops_to_zero_at_c1"]
