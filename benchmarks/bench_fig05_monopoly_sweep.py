"""FIG5 — monopoly surplus vs capacity for a (kappa, c) strategy grid (Figure 5)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

NUS = tuple(np.round(np.linspace(20.0, 500.0, 9), 6))


def test_fig05_monopoly_capacity(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.figure5_monopoly_capacity,
                      population=paper_cps, kappas=(0.3, 0.6, 0.9),
                      prices=(0.2, 0.5, 0.8), nus=NUS)
    record_report(result)
    # Paper shapes at abundant capacity: larger kappa keeps revenue up but
    # lowers consumer surplus; small-kappa revenue vanishes once the ordinary
    # class alone can serve all demand; Phi's downward jumps (epsilon of
    # Equation 9) stay small relative to the surplus level.
    assert result.findings["psi_high_kappa_geq_low_kappa_at_large_nu"]
    assert result.findings["phi_low_kappa_geq_high_kappa_at_large_nu"]
    assert result.findings["psi_low_kappa_vanishes_at_large_nu"]
