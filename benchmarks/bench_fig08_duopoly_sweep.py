"""FIG8 — duopoly vs Public Option: surplus and market share vs capacity (Figure 8)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

NUS = tuple(np.round(np.linspace(25.0, 500.0, 9), 6))


def test_fig08_duopoly_capacity(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.figure8_duopoly_capacity,
                      population=paper_cps, kappas=(0.3, 0.9),
                      prices=(0.2, 0.8), nus=NUS)
    record_report(result)
    # Paper shapes: with abundant capacity the strategic ISP cannot push its
    # share much beyond one half, and consumer surplus is nearly insensitive
    # to its strategy.
    assert result.findings["strategic_isp_capped_near_half_at_large_nu"]
    assert result.findings["phi_insensitive_to_strategy"]
