"""FIG3 — archetype throughput/demand under max-min fairness (Figure 3)."""

from __future__ import annotations

from conftest import run_once

from repro.simulation import experiments


def test_fig03_maxmin_throughput(benchmark, record_report):
    result = run_once(benchmark, experiments.figure3_maxmin_throughput)
    record_report(result)
    # Paper shape: Google-type demand saturates first, then Skype-type,
    # with Netflix-type last.
    assert result.findings["google_saturates_before_skype_before_netflix"]
