"""THM6 — market-share best responses are epsilon-best for consumer surplus (Theorem 6)."""

from __future__ import annotations

from conftest import run_once

from repro.simulation import experiments


def test_thm6_alignment(benchmark, record_report):
    result = run_once(benchmark, experiments.theorem6_alignment,
                      nu=150.0, capacity_shares={"ISP-A": 0.5, "ISP-B": 0.5},
                      kappas=(0.5, 1.0), prices=(0.2, 0.5, 0.8), count=300)
    record_report(result)
    assert result.findings["theorem6_bound_holds"]
