"""FIG7 — duopoly vs Public Option: market share and surplus vs price (Figure 7)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

PRICES = tuple(np.round(np.linspace(0.0, 1.0, 11), 6))
NUS = (20.0, 100.0, 200.0)


def test_fig07_duopoly_price(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.figure7_duopoly_price,
                      population=paper_cps, nus=NUS, prices=PRICES, kappa=1.0)
    record_report(result)
    # Paper shapes: the market share rises with the price while the premium
    # class stays saturated and then collapses; consumer surplus never drops
    # to zero (the Public Option is the safety net); the strategic ISP's
    # revenue vanishes at prohibitive prices.
    assert result.findings["share_collapses_after_peak"]
    assert result.findings["phi_stays_positive_at_c1"]
    assert result.findings["psi_drops_to_zero_at_c1"]
