"""FIG4 — monopoly surplus vs premium price under kappa = 1 (Figure 4)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.simulation import experiments

PRICES = tuple(np.round(np.linspace(0.0, 1.0, 21), 6))
NUS = (20.0, 50.0, 100.0, 150.0, 200.0)


def test_fig04_monopoly_price(benchmark, record_report, paper_cps):
    result = run_once(benchmark, experiments.figure4_monopoly_price,
                      population=paper_cps, nus=NUS, prices=PRICES, kappa=1.0)
    record_report(result)
    # Regime 1: Psi grows linearly (Psi = c * nu) while capacity is saturated.
    assert result.findings["psi_linear_small_c"]
    # Regime 2/3: at abundant capacity the revenue-optimal price sits where
    # consumer surplus has already fallen from its maximum (misalignment),
    # and a prohibitive price collapses the ISP's revenue.
    assert result.findings["monopoly_misaligned_when_capacity_abundant"]
    assert result.findings["psi_collapses_at_high_c"]
