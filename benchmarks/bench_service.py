"""SERVICE — concurrent serving workloads through the equilibrium server.

Spins up in-process :class:`~repro.service.server.EquilibriumServer`
instances on ephemeral ports and replays deterministic request streams
(see :mod:`repro.service.loadgen`) across three key distributions:

* ``hot``   — identical requests: in-flight coalescing should collapse a
  thundering herd to one engine solve per batch window;
* ``cold``  — per-request unique grids: no coalescing, but micro-batching
  still fuses compatible grids into union solves;
* ``mixed`` — 80% hot / 20% cold, the realistic in-between;
* ``naive_hot`` — the hot workload against a ``naive=True`` server (one
  ``solve_rate_equilibria`` per request, no windows, no coalescing, no
  warm caches): the baseline that prices the serving layer.

Throughput, p50/p99 latency and the coalesce rate of every workload are
recorded in ``BENCH_summary.json`` under the nested ``service`` entry that
``scripts/bench_compare.py`` gates, together with the headline
``speedup_hot_vs_naive`` ratio.  The ISSUE's acceptance bar is asserted
here: the coalescing/batched server must beat the naive baseline by >= 3x
on the hot-key workload of the same benchmark run.

Two further axes run against real ``serve`` subprocesses: the ``workers``
axis (``service_workers`` entry) measures hot-key throughput at
``--workers 1`` vs ``--workers 4`` over one ``SO_REUSEPORT`` port and
asserts >= 1.8x scaling on machines with >= 4 cores, and the streaming
axis (``service_streaming``) pins the peak RSS of a server streaming
10^5-CP ``detail: true`` responses to < 2x a no-detail baseline.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from conftest import record_benchmark

from repro.service.loadgen import run_loadgen
from repro.service.server import EquilibriumServer

#: Workload shape: enough concurrent identical requests for coalescing to
#: dominate, small enough to keep the whole benchmark in seconds.
_REQUESTS = 240
_CONCURRENCY = 40
_POPULATION_COUNT = 1000
_WINDOW_SECONDS = 0.002

#: The multi-process axis: hot throughput at 1 worker vs this many.
_SCALE_WORKERS = 4
#: CP count of the streaming-RSS comparison; large enough that a buffered
#: ``detail: true`` body would visibly move the server's peak RSS.
_STREAM_COUNT = 100_000

_BANNER = re.compile(r"serving on http://([\d.]+):(\d+)")


class _ServerProcess:
    """A ``repro-netneutrality serve`` subprocess on an ephemeral port.

    Out-of-process on purpose: the worker-scaling axis needs real separate
    processes, and the streaming-RSS axis needs a clean per-server peak-RSS
    reading (``VmHWM`` of an in-process server would be polluted by the
    benchmark harness itself).
    """

    def __init__(self, *args: str) -> None:
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True, cwd=str(root))
        assert self.process.stdout is not None
        banner = self.process.stdout.readline()
        match = _BANNER.search(banner)
        if match is None:
            self.process.kill()
            raise RuntimeError(f"no serving banner, got {banner!r}")
        self.host, self.port = match.group(1), int(match.group(2))

    def peak_rss_bytes(self) -> int:
        """The server process's high-water RSS (``VmHWM``) in bytes."""
        status = Path(f"/proc/{self.process.pid}/status").read_text()
        match = re.search(r"VmHWM:\s+(\d+)\s*kB", status)
        if match is None:  # pragma: no cover - Linux always reports VmHWM
            raise RuntimeError("no VmHWM in /proc status")
        return int(match.group(1)) * 1024

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - drain hang
            self.process.kill()
            self.process.wait()
            return -9


async def _run_workload(distribution: str, *, naive: bool) -> dict:
    """One workload against a fresh in-process server on an ephemeral port.

    A fresh server (and the autouse cold-caches fixture) means every
    workload starts with cold solver caches — the hot workload's speedup
    comes from coalescing/batching plus the warmth *it* creates, not from
    a predecessor's leftovers.
    """
    server = EquilibriumServer(port=0, window_seconds=_WINDOW_SECONDS,
                               naive=naive)
    await server.start()
    serve_task = asyncio.create_task(server.serve_until_closed())
    host, port = server.address
    try:
        return await run_loadgen(
            host, port, distribution=distribution, requests=_REQUESTS,
            concurrency=_CONCURRENCY, count=_POPULATION_COUNT)
    finally:
        await server.close()
        await serve_task


def test_service_serving_workloads():
    from repro.cache import clear_all_caches

    workloads: dict[str, dict] = {}
    started = time.perf_counter()
    for name, distribution, naive in (
            ("hot", "hot", False),
            ("cold", "cold", False),
            ("mixed", "mixed", False),
            ("naive_hot", "hot", True)):
        clear_all_caches()  # cold start for every workload, incl. the naive
        workloads[name] = asyncio.run(_run_workload(distribution,
                                                    naive=naive))
    elapsed = time.perf_counter() - started

    speedup = (workloads["naive_hot"]["seconds"]
               / workloads["hot"]["seconds"])
    record_benchmark("service", elapsed, extra={
        "workloads": workloads,
        "speedup_hot_vs_naive": speedup,
        "window_seconds": _WINDOW_SECONDS,
        "population_count": _POPULATION_COUNT,
    })

    # The serving layer's reason to exist, measured in this same run:
    # coalescing + micro-batching beat one-solve-per-request by >= 3x on
    # the hot-key workload.
    assert speedup >= 3.0, (
        f"hot workload only {speedup:.2f}x faster than the naive baseline")
    # Coalescing must actually engage on hot keys...
    assert workloads["hot"]["coalesced"] > 0
    assert workloads["hot"]["coalesce_rate"] > 0.5
    # ...and by construction cannot engage on cold keys.
    assert workloads["cold"]["coalesced"] == 0
    # Micro-batching fuses cold compatible grids into union solves.
    assert workloads["cold"]["engine_solves"] < _REQUESTS
    # Every request of every workload succeeded.
    assert all(w["errors"] == 0 for w in workloads.values())


def test_service_worker_scaling():
    """The ``workers`` axis: hot throughput at ``--workers 1`` vs 4.

    Real ``serve`` subprocesses sharing one port via ``SO_REUSEPORT``.
    The >= 1.8x scaling bar only means anything when the machine has cores
    for the workers to scale onto, so it is asserted on >= 4-core runners
    and recorded (honestly) everywhere else.
    """
    by_workers: dict[str, dict] = {}
    started = time.perf_counter()
    for workers in (1, _SCALE_WORKERS):
        server = _ServerProcess("--workers", str(workers))
        try:
            report = asyncio.run(run_loadgen(
                server.host, server.port, distribution="hot",
                requests=_REQUESTS, concurrency=_CONCURRENCY,
                count=_POPULATION_COUNT))
        finally:
            exit_code = server.stop()
        assert exit_code == 0, f"--workers {workers} exited {exit_code}"
        assert report["errors"] == 0
        by_workers[str(workers)] = report
    elapsed = time.perf_counter() - started

    speedup = (by_workers[str(_SCALE_WORKERS)]["throughput_rps"]
               / by_workers["1"]["throughput_rps"])
    cores = os.cpu_count() or 1
    record_benchmark("service_workers", elapsed, extra={
        "workloads_by_workers": by_workers,
        "speedup_hot_throughput": speedup,
        "scale_workers": _SCALE_WORKERS,
        "cpu_cores": cores,
    })
    if cores >= _SCALE_WORKERS:
        assert speedup >= 1.8, (
            f"--workers {_SCALE_WORKERS} only {speedup:.2f}x the hot "
            f"throughput of --workers 1 on a {cores}-core machine")


def test_service_streaming_rss():
    """Streamed ``detail: true`` responses must not balloon the server.

    Two fresh single-worker subprocess servers solve the same 10^5-CP
    workload; one answers plain requests, the other streams full
    per-provider detail (~tens of MB of JSON per response).  Chunked
    streaming keeps the peak RSS (``VmHWM``) of the detail server below
    2x the no-detail baseline — a fully-buffered body would not.
    """
    peaks: dict[str, int] = {}
    reports: dict[str, dict] = {}
    started = time.perf_counter()
    for name, detail in (("plain", False), ("detail_stream", True)):
        server = _ServerProcess("--workers", "1")
        try:
            reports[name] = asyncio.run(run_loadgen(
                server.host, server.port, distribution="hot", requests=4,
                concurrency=2, count=_STREAM_COUNT, detail=detail))
            peaks[name] = server.peak_rss_bytes()
        finally:
            exit_code = server.stop()
        assert exit_code == 0
        assert reports[name]["errors"] == 0
    elapsed = time.perf_counter() - started

    ratio = peaks["detail_stream"] / peaks["plain"]
    record_benchmark("service_streaming", elapsed, extra={
        "population_count": _STREAM_COUNT,
        "peak_rss_bytes": peaks,
        "detail_vs_plain_rss_ratio": ratio,
        "p99_ms": {name: report["p99_ms"]
                   for name, report in reports.items()},
    })
    assert ratio < 2.0, (
        f"streamed detail responses drove peak RSS to {ratio:.2f}x the "
        f"no-detail baseline")
