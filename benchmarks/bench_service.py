"""SERVICE — concurrent serving workloads through the equilibrium server.

Spins up in-process :class:`~repro.service.server.EquilibriumServer`
instances on ephemeral ports and replays deterministic request streams
(see :mod:`repro.service.loadgen`) across three key distributions:

* ``hot``   — identical requests: in-flight coalescing should collapse a
  thundering herd to one engine solve per batch window;
* ``cold``  — per-request unique grids: no coalescing, but micro-batching
  still fuses compatible grids into union solves;
* ``mixed`` — 80% hot / 20% cold, the realistic in-between;
* ``naive_hot`` — the hot workload against a ``naive=True`` server (one
  ``solve_rate_equilibria`` per request, no windows, no coalescing, no
  warm caches): the baseline that prices the serving layer.

Throughput, p50/p99 latency and the coalesce rate of every workload are
recorded in ``BENCH_summary.json`` under the nested ``service`` entry that
``scripts/bench_compare.py`` gates, together with the headline
``speedup_hot_vs_naive`` ratio.  The ISSUE's acceptance bar is asserted
here: the coalescing/batched server must beat the naive baseline by >= 3x
on the hot-key workload of the same benchmark run.
"""

from __future__ import annotations

import asyncio
import time

from conftest import record_benchmark

from repro.service.loadgen import run_loadgen
from repro.service.server import EquilibriumServer

#: Workload shape: enough concurrent identical requests for coalescing to
#: dominate, small enough to keep the whole benchmark in seconds.
_REQUESTS = 240
_CONCURRENCY = 40
_POPULATION_COUNT = 1000
_WINDOW_SECONDS = 0.002


async def _run_workload(distribution: str, *, naive: bool) -> dict:
    """One workload against a fresh in-process server on an ephemeral port.

    A fresh server (and the autouse cold-caches fixture) means every
    workload starts with cold solver caches — the hot workload's speedup
    comes from coalescing/batching plus the warmth *it* creates, not from
    a predecessor's leftovers.
    """
    server = EquilibriumServer(port=0, window_seconds=_WINDOW_SECONDS,
                               naive=naive)
    await server.start()
    serve_task = asyncio.create_task(server.serve_until_closed())
    host, port = server.address
    try:
        return await run_loadgen(
            host, port, distribution=distribution, requests=_REQUESTS,
            concurrency=_CONCURRENCY, count=_POPULATION_COUNT)
    finally:
        await server.close()
        await serve_task


def test_service_serving_workloads():
    from repro.cache import clear_all_caches

    workloads: dict[str, dict] = {}
    started = time.perf_counter()
    for name, distribution, naive in (
            ("hot", "hot", False),
            ("cold", "cold", False),
            ("mixed", "mixed", False),
            ("naive_hot", "hot", True)):
        clear_all_caches()  # cold start for every workload, incl. the naive
        workloads[name] = asyncio.run(_run_workload(distribution,
                                                    naive=naive))
    elapsed = time.perf_counter() - started

    speedup = (workloads["naive_hot"]["seconds"]
               / workloads["hot"]["seconds"])
    record_benchmark("service", elapsed, extra={
        "workloads": workloads,
        "speedup_hot_vs_naive": speedup,
        "window_seconds": _WINDOW_SECONDS,
        "population_count": _POPULATION_COUNT,
    })

    # The serving layer's reason to exist, measured in this same run:
    # coalescing + micro-batching beat one-solve-per-request by >= 3x on
    # the hot-key workload.
    assert speedup >= 3.0, (
        f"hot workload only {speedup:.2f}x faster than the naive baseline")
    # Coalescing must actually engage on hot keys...
    assert workloads["hot"]["coalesced"] > 0
    assert workloads["hot"]["coalesce_rate"] > 0.5
    # ...and by construction cannot engage on cold keys.
    assert workloads["cold"]["coalesced"] == 0
    # Micro-batching fuses cold compatible grids into union solves.
    assert workloads["cold"]["engine_solves"] < _REQUESTS
    # Every request of every workload succeeded.
    assert all(w["errors"] == 0 for w in workloads.values())
