"""Cross-request micro-batching and in-flight coalescing.

The serving hot path: requests arriving within a short window that share a
``(population fingerprint, mechanism key, config.cache_key())`` batch key
are fused into **one** ``warm_equilibrium_cache`` call over the union of
their nu-grids and fanned back out, so k concurrent what-if queries against
one population cost one vectorised multi-target bisection (and leave the
shared LRU caches warm for every later request).  Identical in-flight
requests — same batch key *and* same grid — are coalesced onto a single
awaitable future, so a thundering herd of equal queries costs one solve.

Solves run on a small thread-pool executor, never on the event loop: the
loop keeps reading sockets (and filling the next batch window) while a
bisection runs.  That is why :class:`repro.cache.LRUCache` is lock-guarded
— the executor threads and any concurrent batches share the caches.

Scheduling uses only the event loop's monotonic clock
(``loop.call_later``); wall-clock time never enters the scheduler or any
payload derived from it (rule RL003 covers this package).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.backends.config import SolverConfig, resolve_config
from repro.network.allocation import RateAllocationMechanism
from repro.network.equilibrium import mechanism_cache_key
from repro.network.provider import Population
from repro.simulation.batch import (
    BatchRateEquilibrium,
    solve_rate_equilibria,
    warm_equilibrium_cache,
)

__all__ = ["MicroBatchScheduler", "DEFAULT_WINDOW_SECONDS"]

#: Default micro-batch window: long enough to fuse a concurrent burst,
#: short enough to be invisible next to a bisection.
DEFAULT_WINDOW_SECONDS = 0.002

_BatchKey = Tuple[Hashable, ...]
_SolveKey = Tuple[_BatchKey, Tuple[float, ...]]
#: What a request's future resolves to: its own grid-shaped batch plus the
#: size of the fused batch it rode in (1 = solved alone).
_Outcome = Tuple[BatchRateEquilibrium, int]


@dataclass
class _PendingEntry:
    nus: Tuple[float, ...]
    future: "asyncio.Future[_Outcome]"


@dataclass
class _PendingBatch:
    population: Population
    mechanism: Optional[RateAllocationMechanism]
    config: SolverConfig
    entries: List[_PendingEntry] = field(default_factory=list)


class MicroBatchScheduler:
    """Fuses and coalesces concurrent equilibrium solves (see module doc).

    ``naive=True`` disables every serving-layer optimisation — no window,
    no fusion, no coalescing, no warm-cache reuse: each request runs its own
    ``solve_rate_equilibria`` on the executor.  The benchmark suite uses it
    as the one-solve-per-request baseline.
    """

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS, *,
                 naive: bool = False, max_solver_threads: int = 1) -> None:
        if window_seconds < 0.0:
            raise ValueError("window_seconds must be >= 0")
        if max_solver_threads < 1:
            raise ValueError("max_solver_threads must be >= 1")
        self.window_seconds = window_seconds
        self.naive = naive
        self.max_solver_threads = max_solver_threads
        self._executor = ThreadPoolExecutor(
            max_workers=max_solver_threads,
            thread_name_prefix="repro-solver")
        self._pending: Dict[_BatchKey, _PendingBatch] = {}
        self._timers: Dict[_BatchKey, asyncio.TimerHandle] = {}
        self._inflight: Dict[_SolveKey, "asyncio.Future[_Outcome]"] = {}
        self._tasks: Set["asyncio.Task[None]"] = set()
        # Counters (all monotonic; exposed through /stats).
        self.requests = 0
        self.requested_points = 0
        self.coalesced = 0
        self.batches = 0
        self.batched_requests = 0
        self.fused_requests = 0
        self.union_points = 0
        self.engine_solves = 0
        self.errors = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    async def solve(self, population: Population, nus: Tuple[float, ...],
                    mechanism: Optional[RateAllocationMechanism],
                    config: Optional[SolverConfig] = None
                    ) -> Tuple[BatchRateEquilibrium, int, bool]:
        """One request's equilibria: ``(batch, fused_batch_size, coalesced)``.

        The returned batch covers exactly ``nus`` in request order and is
        bit-identical (reference backend) to a direct
        ``solve_rate_equilibria(population, nus, mechanism, config)`` call.
        """
        config = resolve_config(config)
        nus = tuple(float(nu) for nu in nus)
        self.requests += 1
        self.requested_points += len(nus)
        if self.naive:
            batch, size = await self._solve_naive(population, nus, mechanism,
                                                  config)
            return batch, size, False
        batch_key: _BatchKey = (population.fingerprint(),
                                mechanism_cache_key(mechanism),
                                config.cache_key())
        solve_key: _SolveKey = (batch_key, nus)
        existing = self._inflight.get(solve_key)
        if existing is not None:
            self.coalesced += 1
            batch, size = await _wait(existing)
            return batch, size, True
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[_Outcome]" = loop.create_future()
        self._inflight[solve_key] = future
        future.add_done_callback(
            lambda _done, key=solve_key: self._inflight.pop(key, None))
        pending = self._pending.get(batch_key)
        if pending is None:
            pending = _PendingBatch(population=population,
                                    mechanism=mechanism, config=config)
            self._pending[batch_key] = pending
            self._timers[batch_key] = loop.call_later(
                self.window_seconds, self._start_flush, batch_key)
        pending.entries.append(_PendingEntry(nus=nus, future=future))
        batch, size = await _wait(future)
        return batch, size, False

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters for the ``/stats`` endpoint."""
        coalescable = self.requests if self.requests else 1
        return {
            "window_seconds": self.window_seconds,
            "naive": self.naive,
            "solver_threads": self.max_solver_threads,
            "requests": self.requests,
            "requested_points": self.requested_points,
            "coalesced": self.coalesced,
            "coalesce_rate": self.coalesced / coalescable,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "fused_requests": self.fused_requests,
            "union_points": self.union_points,
            "engine_solves": self.engine_solves,
            "errors": self.errors,
        }

    async def drain(self) -> None:
        """Flush every pending batch now and wait for in-flight solves."""
        for batch_key in list(self._pending):
            timer = self._timers.pop(batch_key, None)
            if timer is not None:
                timer.cancel()
            self._start_flush(batch_key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Drain outstanding work and release the executor threads."""
        await self.drain()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    async def _solve_naive(self, population: Population,
                           nus: Tuple[float, ...],
                           mechanism: Optional[RateAllocationMechanism],
                           config: SolverConfig) -> _Outcome:
        loop = asyncio.get_running_loop()
        self.engine_solves += 1
        try:
            batch = await loop.run_in_executor(
                self._executor,
                partial(solve_rate_equilibria, population, nus, mechanism,
                        config))
        except Exception:
            self.errors += 1
            raise
        return batch, 1

    def _start_flush(self, batch_key: _BatchKey) -> None:
        self._timers.pop(batch_key, None)
        if batch_key not in self._pending:
            return
        task = asyncio.ensure_future(self._flush(batch_key))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _flush(self, batch_key: _BatchKey) -> None:
        pending = self._pending.pop(batch_key, None)
        if pending is None or not pending.entries:
            return
        entries = pending.entries
        self.batches += 1
        self.batched_requests += len(entries)
        if len(entries) > 1:
            self.fused_requests += len(entries)
        union = sorted({nu for entry in entries for nu in entry.nus})
        self.union_points += len(union)
        self.engine_solves += 1
        loop = asyncio.get_running_loop()
        try:
            solved = await loop.run_in_executor(
                self._executor,
                partial(warm_equilibrium_cache, pending.population, union,
                        pending.mechanism, config=pending.config))
        except Exception as error:
            self.errors += 1
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(error)
            return
        index_of = {nu: index for index, nu in enumerate(union)}
        for entry in entries:
            if entry.future.done():  # pragma: no cover - cancelled client
                continue
            entry.future.set_result(
                (_narrow(solved, entry.nus, index_of), len(entries)))


def _narrow(union: BatchRateEquilibrium, nus: Tuple[float, ...],
            index_of: Dict[float, int]) -> BatchRateEquilibrium:
    """One request's rows of the union batch, in the request's grid order.

    Fancy indexing copies the rows, so per-request results never alias the
    union arrays (or each other); the row *values* are bit-identical to a
    direct solve of the same grid because the multi-target bisection treats
    every grid point independently.
    """
    indices = np.asarray([index_of[nu] for nu in nus], dtype=np.intp)
    return BatchRateEquilibrium(
        population=union.population,
        nus=union.nus[indices],
        thetas=union.thetas[indices],
        demands=union.demands[indices],
        common_caps=union.common_caps[indices],
        mechanism_name=union.mechanism_name)


async def _wait(future: "asyncio.Future[_Outcome]") -> _Outcome:
    """Await a shared future without cancelling it if this waiter dies."""
    return await asyncio.shield(future)
