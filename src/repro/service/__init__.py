"""Equilibrium-as-a-service: the long-lived asyncio solver server.

The serving layer turns the batch equilibrium engine into a network
service with cross-request performance structure:

* :mod:`repro.service.protocol` — the strict JSON request/response schema
  (documented in ARTIFACTS.md) and the population registry.
* :mod:`repro.service.scheduler` — micro-batching (union-grid fusion of
  concurrent compatible requests) and in-flight coalescing of identical
  requests; solves run on executor threads against the shared, lock-guarded
  LRU caches, which become warm cross-request state.
* :mod:`repro.service.server` — the minimal stdlib HTTP/1.1 front end
  (``POST /solve``, ``GET /stats``, ``GET /healthz``) behind
  ``repro-netneutrality serve``.
* :mod:`repro.service.client` — a matching asyncio client used by the
  tests and ``scripts/service_loadgen.py``.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    MECHANISM_NAMES,
    RequestError,
    SolveRequest,
    build_solve_response,
    error_payload,
    parse_solve_request,
)
from repro.service.scheduler import DEFAULT_WINDOW_SECONDS, MicroBatchScheduler
from repro.service.server import EquilibriumServer

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "EquilibriumServer",
    "MECHANISM_NAMES",
    "MicroBatchScheduler",
    "RequestError",
    "ServiceClient",
    "SolveRequest",
    "build_solve_response",
    "error_payload",
    "parse_solve_request",
]
