"""A minimal asyncio client for the equilibrium service.

Stdlib only, like the server: one persistent keep-alive connection per
client, JSON in / JSON out.  Used by the serving-layer tests and the load
generator; external callers can use any HTTP client (the wire format is
plain HTTP/1.1 + JSON).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServiceClient", "ServiceResponse"]

#: What every request resolves to: ``(http status, decoded JSON payload)``.
ServiceResponse = Tuple[int, Dict[str, Any]]


class ServiceClient:
    """One keep-alive HTTP/1.1 connection to an :class:`EquilibriumServer`.

    Not safe for concurrent use from multiple tasks — HTTP/1.1 pipelining
    is deliberately out of scope.  Open one client per concurrent caller
    (the load generator does exactly that).
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port)

    async def close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def solve(self, payload: Dict[str, Any]) -> ServiceResponse:
        """``POST /solve`` with ``payload`` as the JSON body."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return await self.request("POST", "/solve", body)

    async def stats(self) -> ServiceResponse:
        """``GET /stats``."""
        return await self.request("GET", "/stats")

    async def healthz(self) -> ServiceResponse:
        """``GET /healthz``."""
        return await self.request("GET", "/healthz")

    async def request(self, method: str, path: str,
                      body: bytes = b"") -> ServiceResponse:
        """One round trip; reconnects once if the server closed the socket."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self._host}:{self._port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> ServiceResponse:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length = 0
        close_after = False
        chunked = False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("connection closed inside headers")
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "transfer-encoding":
                chunked = value.strip().lower() == "chunked"
            elif name == "connection" and value.strip().lower() == "close":
                close_after = True
        if chunked:
            raw = await self._read_chunked_body()
        else:
            raw = await self._reader.readexactly(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8"))
        if close_after:
            await self.close()
        if not isinstance(payload, dict):
            raise ConnectionError(f"non-object response payload: {payload!r}")
        return status, payload

    async def _read_chunked_body(self) -> bytes:
        """Decode a ``Transfer-Encoding: chunked`` body (streamed detail
        responses) into one buffer."""
        assert self._reader is not None
        pieces: list[bytes] = []
        while True:
            size_line = await self._reader.readline()
            if not size_line:
                raise ConnectionError("connection closed inside chunked body")
            try:
                size = int(size_line.strip().split(b";", 1)[0], 16)
            except ValueError:
                raise ConnectionError(
                    f"malformed chunk size {size_line!r}") from None
            if size == 0:
                # Trailer section: read through the blank terminator line.
                while True:
                    trailer = await self._reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                return b"".join(pieces)
            pieces.append(await self._reader.readexactly(size))
            separator = await self._reader.readexactly(2)
            if separator != b"\r\n":
                raise ConnectionError("missing CRLF after chunk")
