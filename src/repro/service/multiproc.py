"""Multi-process equilibrium serving: shared-nothing workers on one port.

``repro-netneutrality serve --workers N`` forks ``N`` worker processes that
all accept on the same TCP port.  Each worker is a complete single-process
server — its own event loop, :class:`~repro.service.scheduler.MicroBatchScheduler`,
solver thread pool and (copy-on-write, therefore effectively private) LRU
caches — so workers share *nothing* at runtime and scale across cores
without locks.  Kernel-level connection distribution comes from
``SO_REUSEPORT``: every worker binds its own listening socket to the one
``(host, port)`` and the kernel spreads incoming connections across them.
Platforms without ``SO_REUSEPORT`` fall back to one parent-bound listening
socket inherited through ``fork`` by every worker (all workers accept on
the shared socket instead).

Coordination is deliberately minimal:

* **Startup** — each worker binds its listeners (the shared port plus a
  private *direct* listener on an ephemeral port), reports readiness over a
  pipe, and waits; once every worker is up, the parent broadcasts the full
  worker directory and the workers start accepting.  The parent prints the
  ``serving on ...`` line only after the whole group is ready.
* **Stats** — ``GET /stats`` on the shared port lands on an arbitrary
  worker, which fans ``/stats?scope=local`` out to every peer's direct
  address and answers with the merged view (aggregate counters at the top
  level — so single-process consumers like the load generator keep working
  unchanged — plus a ``workers`` list with each worker's own payload).
* **Shutdown** — SIGTERM/SIGINT to the parent forwards SIGTERM to every
  worker; each worker drains gracefully (stops accepting, wakes idle
  keep-alive readers, finishes in-flight solves) and exits 0; the parent
  reaps the group and exits 0 only when every worker drained cleanly.

Served bytes are bit-identical to a single-process server (and therefore
to direct ``solve_rate_equilibria`` calls) for any worker count: workers
run the very same serving stack, and the solver caches they warm privately
can only ever hold values that recomputation would reproduce bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import sys
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Tuple

from repro.backends.config import SolverConfig

__all__ = ["WorkerSettings", "serve_multiprocess", "merge_worker_stats",
           "bind_reuseport"]

#: Seconds the parent waits for one worker's readiness report.
_READY_TIMEOUT_SECONDS = 30.0
#: Seconds the parent waits for a worker to drain after SIGTERM before
#: escalating to SIGKILL.
_DRAIN_TIMEOUT_SECONDS = 20.0
#: Parent supervision poll interval while the group is serving.
_POLL_SECONDS = 0.2

#: ``/stats`` counters that are configuration, not activity — merged by
#: taking the first worker's value instead of summing.
_CONFIG_STAT_KEYS = frozenset({
    "window_seconds", "naive", "maxsize", "max_bytes", "ttl_seconds",
    "schema", "solver_threads",
})


@dataclass(frozen=True)
class WorkerSettings:
    """Everything one worker needs to run its serving loop."""

    host: str
    port: int
    window_seconds: float
    naive: bool
    max_solver_threads: int
    config: Optional[SolverConfig]
    max_requests: Optional[int]
    idle_timeout: Optional[float]


def bind_reuseport(host: str, port: int) -> Optional[socket.socket]:
    """A TCP socket bound to ``(host, port)`` with ``SO_REUSEPORT`` set,
    or ``None`` when the platform does not support the option."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return None
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _worker_main(index: int, settings: WorkerSettings,
                 inherited: Optional[socket.socket],
                 conn: Connection) -> None:
    """One worker process: serve until drained, exit 0 on a clean drain."""
    import asyncio

    from repro.cache import clear_all_caches

    # Fork copies whatever the parent had resident; start cold so every
    # worker's caches hold only what *it* served.
    clear_all_caches()
    try:
        exit_code = asyncio.run(_worker_serve(index, settings, inherited,
                                              conn))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        exit_code = 0
    sys.exit(exit_code)


async def _worker_serve(index: int, settings: WorkerSettings,
                        inherited: Optional[socket.socket],
                        conn: Connection) -> int:
    import asyncio

    from repro.service.server import EquilibriumServer

    if inherited is None:
        shared = bind_reuseport(settings.host, settings.port)
        if shared is None:  # pragma: no cover - parent checked already
            raise RuntimeError("SO_REUSEPORT unavailable and no inherited "
                               "socket was passed")
        shared.listen(128)
    else:
        shared = inherited
    server = EquilibriumServer(
        settings.host, settings.port,
        window_seconds=settings.window_seconds,
        naive=settings.naive,
        max_solver_threads=settings.max_solver_threads,
        config=settings.config,
        max_requests=settings.max_requests,
        idle_timeout=settings.idle_timeout,
        worker_index=index)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, server.request_shutdown)
    direct_host, direct_port = await server.start_direct()
    # Report readiness, then wait for the whole group's directory before
    # accepting: the first request a worker sees must already find the
    # merged-stats fan-out wired up.
    conn.send(("ready", index, direct_host, direct_port))
    message = conn.recv()
    if message[0] != "peers":  # pragma: no cover - parent protocol fixed
        raise RuntimeError(f"unexpected control message {message!r}")
    server.set_peers([tuple(peer) for peer in message[1]])
    conn.close()
    await server.start(sock=shared)
    await server.serve_until_closed()
    return 0


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
def serve_multiprocess(settings: WorkerSettings, workers: int) -> int:
    """Run ``workers`` shared-nothing serving processes; block until done.

    Returns the process exit code: 0 when every worker drained cleanly
    after SIGTERM/SIGINT (or its ``--max-requests`` bound), non-zero when
    any worker died unexpectedly or had to be killed.
    """
    if workers < 2:
        raise ValueError("serve_multiprocess needs workers >= 2")
    context = multiprocessing.get_context("fork")

    # Resolve the port up front (port 0 must mean ONE ephemeral port shared
    # by the whole group, not one per worker) and decide the acceptor
    # strategy. The placeholder REUSEPORT socket stays bound until every
    # worker has bound its own, so the port cannot be stolen in between.
    placeholder: Optional[socket.socket] = None
    inherited: Optional[socket.socket] = None
    try:
        placeholder = bind_reuseport(settings.host, settings.port)
    except OSError:
        placeholder = None
        raise
    if placeholder is not None:
        resolved_port = int(placeholder.getsockname()[1])
    else:  # no SO_REUSEPORT: bind once here, workers inherit via fork
        inherited = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        inherited.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        inherited.bind((settings.host, settings.port))
        inherited.listen(128)
        resolved_port = int(inherited.getsockname()[1])
    settings = WorkerSettings(
        host=settings.host, port=resolved_port,
        window_seconds=settings.window_seconds, naive=settings.naive,
        max_solver_threads=settings.max_solver_threads,
        config=settings.config, max_requests=settings.max_requests,
        idle_timeout=settings.idle_timeout)

    processes: List[multiprocessing.process.BaseProcess] = []
    pipes: List[Connection] = []
    try:
        for index in range(workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(index, settings, inherited, child_conn),
                name=f"repro-serve-{index}")
            process.start()
            child_conn.close()
            processes.append(process)
            pipes.append(parent_conn)
        peers = _collect_ready(pipes, processes)
        for conn in pipes:
            conn.send(("peers", peers))
            conn.close()
    except Exception as error:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=_DRAIN_TIMEOUT_SECONDS)
        print(f"error: multi-process serve failed to start: {error}",
              file=sys.stderr)
        return 1
    finally:
        if placeholder is not None:
            placeholder.close()
        if inherited is not None:
            inherited.close()

    print(f"serving on http://{settings.host}:{resolved_port} "
          f"({workers} workers, window {settings.window_seconds * 1000.0:g} "
          f"ms, {'naive' if settings.naive else 'micro-batching'})",
          flush=True)
    return _supervise(processes)


def _collect_ready(pipes: List[Connection],
                   processes: List[multiprocessing.process.BaseProcess]
                   ) -> List[Tuple[int, str, int]]:
    """Wait for every worker's readiness report; return the directory."""
    peers: List[Tuple[int, str, int]] = []
    for position, conn in enumerate(pipes):
        if not conn.poll(_READY_TIMEOUT_SECONDS):
            raise RuntimeError(
                f"worker {position} did not report ready within "
                f"{_READY_TIMEOUT_SECONDS:g}s "
                f"(alive={processes[position].is_alive()})")
        message = conn.recv()
        if message[0] != "ready":  # pragma: no cover - worker protocol fixed
            raise RuntimeError(f"unexpected control message {message!r}")
        _tag, index, host, port = message
        peers.append((int(index), str(host), int(port)))
    return sorted(peers)


def _supervise(processes: List[multiprocessing.process.BaseProcess]) -> int:
    """Forward shutdown signals, reap workers, aggregate exit codes."""
    shutting_down = False

    def forward(signum: int, _frame: Any) -> None:
        nonlocal shutting_down
        shutting_down = True
        for process in processes:
            if process.is_alive() and process.pid is not None:
                os.kill(process.pid, signal.SIGTERM)

    previous = {signum: signal.signal(signum, forward)
                for signum in (signal.SIGTERM, signal.SIGINT)}
    try:
        while True:
            alive = [process for process in processes if process.is_alive()]
            if not alive:
                break
            if not shutting_down and len(alive) < len(processes):
                # A worker died without a shutdown being requested: take
                # the rest down rather than limping along under capacity.
                shutting_down = True
                for process in alive:
                    if process.pid is not None:
                        os.kill(process.pid, signal.SIGTERM)
            alive[0].join(timeout=_POLL_SECONDS)
        exit_codes: List[int] = []
        for process in processes:
            process.join(timeout=_DRAIN_TIMEOUT_SECONDS)
            if process.is_alive():  # pragma: no cover - drain hang
                process.kill()
                process.join()
                exit_codes.append(1)
            else:
                exit_codes.append(abs(int(process.exitcode or 0)))
        return max(exit_codes)
    finally:
        for signum, handler in sorted(previous.items()):
            signal.signal(signum, handler)


# --------------------------------------------------------------------------- #
# Stats merging (pure, tested without processes)
# --------------------------------------------------------------------------- #
def merge_worker_stats(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-worker ``/stats`` payloads into the multi-worker view.

    The top level keeps the single-process shape — ``server``,
    ``scheduler`` and ``caches`` hold counters *summed* across reachable
    workers (configuration values like ``window_seconds`` or ``maxsize``
    are taken from the first worker; rates are recomputed from the summed
    numerators/denominators) — and ``workers`` lists every worker's own
    payload, ordered by worker index.
    """
    reachable = [payload for payload in payloads
                 if not payload.get("unreachable")]
    merged: Dict[str, Any] = {
        "schema": 1,
        "workers": sorted(payloads,
                          key=lambda p: p.get("worker", {}).get("index", -1)),
        "worker_count": len(payloads),
        "unreachable_workers": len(payloads) - len(reachable),
    }
    merged["server"] = _sum_counters(
        [payload.get("server", {}) for payload in reachable])
    scheduler = _sum_counters(
        [payload.get("scheduler", {}) for payload in reachable])
    requests = scheduler.get("requests", 0)
    if isinstance(requests, (int, float)) and requests:
        scheduler["coalesce_rate"] = scheduler.get("coalesced", 0) / requests
    merged["scheduler"] = scheduler
    cache_names = sorted({name for payload in reachable
                          for name in payload.get("caches", {})})
    merged["caches"] = {
        name: _merge_cache_stats(
            [payload["caches"][name] for payload in reachable
             if name in payload.get("caches", {})])
        for name in cache_names
    }
    return merged


def _sum_counters(blocks: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum numeric counters across workers; config keys take the first."""
    merged: Dict[str, Any] = {}
    for block in blocks:
        for key in sorted(block):
            value = block[key]
            if key in _CONFIG_STAT_KEYS or isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
            else:
                current = merged.get(key, 0)
                merged[key] = (current if isinstance(current, (int, float))
                               else 0) + value
    return merged


def _merge_cache_stats(blocks: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-cache merge: summed counters, recomputed hit rate."""
    merged = _sum_counters(blocks)
    merged.pop("hit_rate", None)
    hits = merged.get("hits", 0)
    misses = merged.get("misses", 0)
    total = (hits if isinstance(hits, (int, float)) else 0) + (
        misses if isinstance(misses, (int, float)) else 0)
    merged["hit_rate"] = (hits / total) if total else 0.0
    return merged
