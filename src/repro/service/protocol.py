"""Request/response schema of the equilibrium service (see ARTIFACTS.md).

A ``POST /solve`` body is a JSON object::

    {
      "population":  {"count": 1000, "seed": 20111106,
                      "utility_model": "beta_correlated"},
      # ... or, instead of "population", a fingerprint of a population this
      # server has already resolved:
      "fingerprint": "9f3a...",
      "mechanism":   "maxmin",            # or "proportional_to_demand"
      "nus":         [50.0, 100.0],       # per-capita capacity grid
      "price":       1.5,                 # optional: premium_revenues series
      "detail":      true,                # optional: per-provider matrices
      "config":      {"backend": "reference"}   # optional SolverConfig fields
    }

and the response echoes the request identity plus the equilibrium series
(grid axis first) and the solver provenance.  By default the series are
the per-grid-point aggregate curves (``aggregate_rates``,
``utilizations``, ``consumer_surpluses``, optional ``premium_revenues``);
``"detail": true`` additionally ships the per-provider ``(G, n)`` matrices
(``thetas``, ``demands``, ``per_capita_rates``), which at the paper's
1000-CP workload are ~200 KB of JSON per response and therefore opt-in.
Parsing is strict: unknown
fields, non-finite grids and malformed specs raise :class:`RequestError`,
which the server maps to a structured 4xx-style JSON error without tearing
the connection down.

Populations are resolved through a registered LRU cache
(``service_populations``): repeated requests for the same spec reuse the
columnar population (and therefore every equilibrium cached against its
fingerprint), and each resolved population is indexed by fingerprint so
follow-up requests can address it without re-sending the spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.backends.config import SolverConfig, resolve_config
from repro.cache import LRUCache
from repro.errors import ModelValidationError
from repro.network.allocation import (
    MaxMinFairAllocation,
    ProportionalToDemandAllocation,
    RateAllocationMechanism,
)
from repro.network.provider import Population
from repro.simulation.batch import BatchRateEquilibrium
from repro.workloads.populations import DEFAULT_SEED, paper_population

__all__ = [
    "RequestError",
    "SolveRequest",
    "MECHANISM_NAMES",
    "parse_solve_request",
    "build_solve_response",
    "solve_response_chunks",
    "error_payload",
]

#: Mechanism names accepted on the wire.  Both are value-keyed
#: (parameter-free) mechanisms, so equal names share solver-cache entries.
MECHANISM_NAMES: Tuple[str, ...] = ("maxmin", "proportional_to_demand")

_MECHANISMS: Dict[str, RateAllocationMechanism] = {
    "maxmin": MaxMinFairAllocation(),
    "proportional_to_demand": ProportionalToDemandAllocation(),
}

#: SolverConfig fields a request may override.
_CONFIG_FIELDS = frozenset({
    "backend", "migration_tolerance", "switching_tolerance",
    "surplus_tolerance", "bisection_tolerance", "cache_policy",
})

_REQUEST_FIELDS = frozenset({
    "population", "fingerprint", "mechanism", "nus", "price", "detail",
    "config",
})
_POPULATION_FIELDS = frozenset({"count", "seed", "utility_model"})

#: Request-size guards: a grid or population far past the paper's scales is
#: a malformed request, not a workload.
MAX_GRID_POINTS = 4096
MAX_POPULATION_COUNT = 1_000_000

#: Resolved populations, keyed by spec and by fingerprint.  Warm
#: cross-request state like the solver caches; population construction is
#: solver-independent, so the key carries no backend/tolerance axis.
_POPULATION_CACHE = LRUCache(maxsize=64, name="service_populations")


class RequestError(Exception):
    """A malformed request, mapped to a structured 4xx-style response."""

    def __init__(self, code: str, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status


@dataclass(frozen=True)
class SolveRequest:
    """A validated ``/solve`` request, ready for the scheduler."""

    population: Population
    mechanism_name: str
    mechanism: RateAllocationMechanism
    nus: Tuple[float, ...]
    price: Optional[float]
    detail: bool
    config: SolverConfig


def _require_mapping(value: Any, label: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise RequestError("bad_request", f"{label} must be a JSON object")
    return value


def _check_fields(payload: Mapping[str, Any], allowed: frozenset[str],
                  label: str) -> None:
    unknown = sorted(str(key) for key in payload if str(key) not in allowed)
    if unknown:
        raise RequestError(
            "unknown_field",
            f"unknown {label} field(s): {', '.join(unknown)}; "
            f"expected a subset of {{{', '.join(sorted(allowed))}}}")


def _parse_population_spec(spec: Mapping[str, Any]) -> Population:
    _check_fields(spec, _POPULATION_FIELDS, "population")
    count = spec.get("count", 1000)
    seed = spec.get("seed", DEFAULT_SEED)
    utility_model = spec.get("utility_model", "beta_correlated")
    if not isinstance(count, int) or isinstance(count, bool):
        raise RequestError("bad_population", "population.count must be an "
                           "integer")
    if count <= 0 or count > MAX_POPULATION_COUNT:
        raise RequestError(
            "bad_population",
            f"population.count must be in [1, {MAX_POPULATION_COUNT}], "
            f"got {count}")
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise RequestError("bad_population", "population.seed must be a "
                           "non-negative integer")
    if utility_model not in ("beta_correlated", "independent"):
        raise RequestError(
            "bad_population",
            "population.utility_model must be 'beta_correlated' or "
            f"'independent', got {utility_model!r}")
    key = ("spec", count, seed, utility_model)

    def build() -> Population:
        return paper_population(count=count, seed=seed,
                                utility_model=utility_model)

    population = _POPULATION_CACHE.get_or_compute(key, build)  # repro-lint: disable=RL001 — population construction is solver-independent; the key is the full spec, with no backend/tolerance axis to alias
    assert isinstance(population, Population)
    # Index by fingerprint too, so follow-up requests can address the
    # population without re-sending the spec.
    _POPULATION_CACHE.put(("fingerprint", population.fingerprint().hex()),  # repro-lint: disable=RL001 — same solver-independent registry as above
                          population)
    return population


def _resolve_fingerprint(fingerprint: Any) -> Population:
    if not isinstance(fingerprint, str) or not fingerprint:
        raise RequestError("bad_fingerprint",
                           "fingerprint must be a non-empty hex string")
    population = _POPULATION_CACHE.get(("fingerprint", fingerprint.lower()))  # repro-lint: disable=RL001 — same solver-independent registry as above
    if population is None:
        raise RequestError(
            "unknown_fingerprint",
            f"no population with fingerprint {fingerprint!r} is resident on "
            "this server; send the population spec instead", status=404)
    assert isinstance(population, Population)
    return population


def _parse_nus(raw: Any) -> Tuple[float, ...]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise RequestError("bad_grid", "nus must be a non-empty JSON array "
                           "of per-capita capacities")
    if len(raw) > MAX_GRID_POINTS:
        raise RequestError("bad_grid", f"nus has {len(raw)} points; the "
                           f"server caps grids at {MAX_GRID_POINTS}")
    nus = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError("bad_grid", "nus entries must be numbers")
        nu = float(value)
        if not np.isfinite(nu) or nu < 0.0:
            raise RequestError("bad_grid", "per-capita capacities must all "
                               "be finite and >= 0")
        nus.append(nu)
    return tuple(nus)


def _parse_config(raw: Any) -> SolverConfig:
    if raw is None:
        return resolve_config(None)
    payload = _require_mapping(raw, "config")
    _check_fields(payload, _CONFIG_FIELDS, "config")
    base = resolve_config(None)
    fields: Dict[str, Any] = {
        "backend": base.backend,
        "migration_tolerance": base.migration_tolerance,
        "switching_tolerance": base.switching_tolerance,
        "surplus_tolerance": base.surplus_tolerance,
        "bisection_tolerance": base.bisection_tolerance,
        "cache_policy": base.cache_policy,
    }
    fields.update(payload)
    try:
        return SolverConfig(**fields)
    except ModelValidationError as error:
        raise RequestError("bad_config", str(error)) from error
    except TypeError as error:
        raise RequestError("bad_config", str(error)) from error


def parse_solve_request(payload: Any) -> SolveRequest:
    """Validate a decoded ``/solve`` JSON body into a :class:`SolveRequest`."""
    body = _require_mapping(payload, "request body")
    _check_fields(body, _REQUEST_FIELDS, "request")
    has_spec = "population" in body
    has_fingerprint = "fingerprint" in body
    if has_spec == has_fingerprint:
        raise RequestError(
            "bad_request",
            "exactly one of 'population' (a spec object) or 'fingerprint' "
            "(of a resident population) is required")
    if has_spec:
        population = _parse_population_spec(
            _require_mapping(body["population"], "population"))
    else:
        population = _resolve_fingerprint(body["fingerprint"])
    mechanism_name = body.get("mechanism", "maxmin")
    if mechanism_name not in _MECHANISMS:
        raise RequestError(
            "bad_mechanism",
            f"unknown mechanism {mechanism_name!r}; expected one of "
            f"{{{', '.join(MECHANISM_NAMES)}}}")
    if "nus" not in body:
        raise RequestError("bad_grid", "the request must carry a 'nus' grid")
    nus = _parse_nus(body["nus"])
    price_raw = body.get("price")
    price: Optional[float] = None
    if price_raw is not None:
        if isinstance(price_raw, bool) or not isinstance(price_raw,
                                                         (int, float)):
            raise RequestError("bad_price", "price must be a number")
        price = float(price_raw)
        if not np.isfinite(price) or price < 0.0:
            raise RequestError("bad_price",
                               "price must be finite and >= 0")
    detail = body.get("detail", False)
    if not isinstance(detail, bool):
        raise RequestError("bad_request", "detail must be a boolean")
    config = _parse_config(body.get("config"))
    return SolveRequest(population=population, mechanism_name=mechanism_name,
                        mechanism=_MECHANISMS[mechanism_name], nus=nus,
                        price=price, detail=detail, config=config)


def build_solve_response(request: SolveRequest, batch: BatchRateEquilibrium,
                         *, coalesced: bool, batch_size: int
                         ) -> Dict[str, Any]:
    """The JSON payload served for ``request`` from its solved ``batch``.

    The series mirror :class:`~repro.simulation.batch.BatchRateEquilibrium`
    exactly (grid axis first) and are bit-identical to a direct
    ``solve_rate_equilibria`` call for the same request under the reference
    backend.  The default ``series`` block carries the per-grid-point
    aggregate curves; ``detail`` requests additionally get the per-provider
    ``(G, n)`` matrices under ``providers``.  Solver provenance (effective
    backend + the full cache key) is echoed so clients can attribute every
    number.
    """
    response = _response_base(request, batch, coalesced=coalesced,
                              batch_size=batch_size)
    if request.detail:
        response["providers"] = {
            "thetas": batch.thetas.tolist(),
            "demands": batch.demands.tolist(),
            "per_capita_rates": batch.per_capita_rates.tolist(),
        }
    return response


def _response_base(request: SolveRequest, batch: BatchRateEquilibrium, *,
                   coalesced: bool, batch_size: int) -> Dict[str, Any]:
    """The response payload without the per-provider ``providers`` block."""
    series: Dict[str, Any] = {
        "aggregate_rates": batch.aggregate_rates.tolist(),
        "utilizations": batch.utilizations.tolist(),
        "consumer_surpluses": batch.consumer_surpluses().tolist(),
    }
    if request.price is not None:
        series["premium_revenues"] = (
            batch.premium_revenues(request.price).tolist())
    return {
        "schema": 1,
        "fingerprint": request.population.fingerprint().hex(),
        "mechanism": request.mechanism_name,
        "nus": list(batch.nus.tolist()),
        "series": series,
        "solver": {
            "backend": request.config.effective_backend(),
            "backend_requested": request.config.backend,
            "cache_key": list(request.config.cache_key()),
        },
        "served": {"coalesced": coalesced, "batch_size": batch_size},
    }


def _provider_row(batch: BatchRateEquilibrium, name: str,
                  index: int) -> Any:
    """One grid point's per-provider series, materialised lazily.

    ``per_capita_rates`` is recomputed per row from the equilibrium arrays
    instead of through the ``(G, n)`` property so the streaming path never
    holds a full derived matrix.
    """
    if name == "thetas":
        return batch.thetas[index].tolist()
    if name == "demands":
        return batch.demands[index].tolist()
    # Same association order as the (G, n) property — alphas * (d * theta),
    # via the rhos intermediate — so streamed bytes match the buffered body.
    row = (batch.population.alphas
           * (batch.demands[index] * batch.thetas[index]))
    return row.tolist()


#: ``providers`` sub-keys in canonical (sorted) order — the streaming
#: serializer emits keys sorted, exactly like ``json.dumps(sort_keys=True)``.
_PROVIDER_MATRICES: Tuple[str, ...] = ("demands", "per_capita_rates",
                                       "thetas")


def solve_response_chunks(request: SolveRequest, batch: BatchRateEquilibrium,
                          *, coalesced: bool, batch_size: int
                          ) -> Iterator[bytes]:
    """The ``detail: true`` response as incrementally-serialised fragments.

    Yields UTF-8 fragments whose concatenation is **byte-identical** to
    ``json.dumps(build_solve_response(...), sort_keys=True)`` for the same
    request — the streamed and buffered wire bodies are the same JSON
    document.  The per-provider ``(G, n)`` matrices are serialised one grid
    row at a time, so the peak resident footprint of a response is one
    row's Python list plus its JSON string instead of three full matrices;
    the server writes each fragment as one HTTP chunk and drains the
    transport between fragments (bounded buffering at the socket too).
    """
    base = _response_base(request, batch, coalesced=coalesced,
                          batch_size=batch_size)
    # Canonical key order splits around "providers": fingerprint, mechanism,
    # nus < providers < schema, series, served, solver.
    head_keys = ("fingerprint", "mechanism", "nus")
    tail_keys = ("schema", "series", "served", "solver")
    head = {key: base[key] for key in head_keys}
    tail = {key: base[key] for key in tail_keys}
    # json.dumps(head) == '{...}'; strip the closing brace and splice the
    # streamed providers object in at its sorted position.
    yield (json.dumps(head, sort_keys=True)[:-1]
           + ', "providers": {').encode("utf-8")
    grid_points = len(batch.nus)
    for matrix_index, name in enumerate(_PROVIDER_MATRICES):
        prefix = "" if matrix_index == 0 else ", "
        yield f'{prefix}"{name}": ['.encode("utf-8")
        for row_index in range(grid_points):
            row = json.dumps(_provider_row(batch, name, row_index),
                             sort_keys=True)
            yield (row if row_index == 0 else ", " + row).encode("utf-8")
        yield b"]"
    yield ("}, " + json.dumps(tail, sort_keys=True)[1:]).encode("utf-8")


def error_payload(code: str, message: str) -> Dict[str, Any]:
    """The canonical error body (also used for 404/405/500 responses)."""
    return {"schema": 1, "error": {"code": code, "message": message}}
