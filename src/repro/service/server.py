"""Equilibrium-as-a-service: a long-lived asyncio HTTP/1.1 server.

Stdlib only — a deliberately small HTTP/1.1 implementation over asyncio
streams (request line + headers + ``Content-Length`` body, keep-alive),
enough for the JSON API and the load generator without new runtime deps.

Endpoints:

* ``POST /solve``   — solve an equilibrium request (see
  :mod:`repro.service.protocol` and ARTIFACTS.md for the schema).
* ``GET  /stats``   — solver-cache statistics (``all_cache_stats()``) plus
  the scheduler's coalescing / batch-fusion counters.
* ``GET  /healthz`` — liveness probe.

Malformed requests are answered with a structured JSON error and the
configured 4xx status; the connection (and the server) stays up.  Requests
are dispatched concurrently — each connection's reader keeps going while
solves run — which is what gives the micro-batch window its cross-request
reach.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.backends.config import SolverConfig
from repro.cache import all_cache_stats
from repro.errors import ModelValidationError
from repro.service.protocol import (
    RequestError,
    build_solve_response,
    error_payload,
    parse_solve_request,
)
from repro.service.scheduler import DEFAULT_WINDOW_SECONDS, MicroBatchScheduler

__all__ = ["EquilibriumServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; far above any sane grid, far below a DoS.
MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 64

_STATUS_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpViolation(Exception):
    """A protocol-level violation; the connection is closed after replying."""


class EquilibriumServer:
    """The serving loop around a :class:`MicroBatchScheduler`.

    ``config`` is the default :class:`SolverConfig` used for requests that
    carry no ``config`` field (the CLI's ``--backend`` flag lands here);
    ``naive=True`` turns off batching/coalescing for baseline measurements.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 naive: bool = False,
                 max_solver_threads: int = 1,
                 config: Optional[SolverConfig] = None,
                 max_requests: Optional[int] = None) -> None:
        self._host = host
        self._port = port
        self._config = config
        self._max_requests = max_requests
        self.scheduler = MicroBatchScheduler(
            window_seconds, naive=naive,
            max_solver_threads=max_solver_threads)
        self._server: Optional[asyncio.base_events.Server] = None
        self._closing = asyncio.Event()
        self.requests_total = 0
        self.solve_requests = 0
        self.request_errors = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def serve_until_closed(self) -> None:
        """Serve until :meth:`close` is called (or max_requests is hit)."""
        if self._server is None:
            await self.start()
        await self._closing.wait()
        await self._shutdown()

    async def close(self) -> None:
        """Stop accepting, drain in-flight solves, release the executor."""
        self._closing.set()
        # When nobody is inside serve_until_closed, shut down directly.
        await self._shutdown()

    async def _shutdown(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self.scheduler.aclose()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while not self._closing.is_set():
                try:
                    parsed = await self._read_request(reader)
                except _HttpViolation as violation:
                    await _write_response(
                        writer, 400,
                        error_payload("bad_http", str(violation)),
                        keep_alive=False)
                    break
                if parsed is None:  # clean EOF between requests
                    break
                method, target, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive") != "close"
                self.requests_total += 1
                status, payload = await self._dispatch(method, target, body)
                await _write_response(writer, status, payload,
                                      keep_alive=keep_alive)
                if not keep_alive:
                    break
                if (self._max_requests is not None
                        and self.solve_requests >= self._max_requests):
                    self._closing.set()
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str],
                                                bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpViolation("malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _HttpViolation("connection closed inside headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpViolation("too many header lines")
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpViolation(f"bad Content-Length {raw_length!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpViolation(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, method: str, target: str, body: bytes
                        ) -> Tuple[int, Dict[str, Any]]:
        path = target.split("?", 1)[0]
        if path == "/solve":
            if method != "POST":
                return 405, error_payload("method_not_allowed",
                                          "/solve accepts POST only")
            return await self._handle_solve(body)
        if path == "/stats":
            if method != "GET":
                return 405, error_payload("method_not_allowed",
                                          "/stats accepts GET only")
            return 200, self.stats()
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload("method_not_allowed",
                                          "/healthz accepts GET only")
            return 200, {"schema": 1, "status": "ok"}
        return 404, error_payload("not_found", f"no route for {path!r}")

    async def _handle_solve(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.request_errors += 1
            return 400, error_payload("bad_json",
                                      f"request body is not JSON: {error}")
        try:
            request = parse_solve_request(payload)
        except RequestError as error:
            self.request_errors += 1
            return error.status, error_payload(error.code, error.message)
        if request.config is None:  # pragma: no cover - parse always resolves
            raise RuntimeError("unresolved request config")
        solve_config = (request.config if "config" in payload
                        else self._effective_config(request.config))
        self.solve_requests += 1
        try:
            batch, batch_size, coalesced = await self.scheduler.solve(
                request.population, request.nus, request.mechanism,
                solve_config)
        except ModelValidationError as error:
            self.request_errors += 1
            return 400, error_payload("bad_request", str(error))
        except Exception as error:  # keep serving on solver faults
            self.request_errors += 1
            return 500, error_payload("solver_error",
                                      f"{type(error).__name__}: {error}")
        if solve_config is not request.config:
            request = _with_config(request, solve_config)
        return 200, build_solve_response(request, batch, coalesced=coalesced,
                                         batch_size=batch_size)

    def _effective_config(self, parsed: SolverConfig) -> SolverConfig:
        """The server-default config for requests without a config field."""
        return self._config if self._config is not None else parsed

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: cache + scheduler + server counters."""
        return {
            "schema": 1,
            "caches": all_cache_stats(),
            "scheduler": self.scheduler.stats(),
            "server": {
                "requests_total": self.requests_total,
                "solve_requests": self.solve_requests,
                "request_errors": self.request_errors,
            },
        }


def _with_config(request: Any, config: SolverConfig) -> Any:
    """The request with the server-default config substituted in."""
    from dataclasses import replace

    return replace(request, config=config)


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload: Dict[str, Any], *,
                          keep_alive: bool) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()
