"""Equilibrium-as-a-service: a long-lived asyncio HTTP/1.1 server.

Stdlib only — a deliberately small HTTP/1.1 implementation over asyncio
streams (request line + headers + ``Content-Length`` body, keep-alive),
enough for the JSON API and the load generator without new runtime deps.

Endpoints:

* ``POST /solve``   — solve an equilibrium request (see
  :mod:`repro.service.protocol` and ARTIFACTS.md for the schema).
  ``detail: true`` responses are streamed with ``Transfer-Encoding:
  chunked`` (per-grid-point blocks, never a fully-buffered body) to
  HTTP/1.1 clients; HTTP/1.0 clients get a buffered body.
* ``GET  /stats``   — solver-cache statistics (``all_cache_stats()``) plus
  the scheduler's coalescing / batch-fusion counters.  In multi-process
  mode (see :mod:`repro.service.multiproc`) the response carries the
  aggregate view at the top level plus a ``workers`` list with every
  worker's own counters; ``GET /stats?scope=local`` always answers with
  only the serving worker's numbers.
* ``GET  /healthz`` — liveness probe.

Connection hygiene: the ``Connection`` header is compared
case-insensitively (RFC 9112 — ``Connection: Close`` closes), the request
line's HTTP version decides the keep-alive *default* (HTTP/1.0 defaults to
close, HTTP/1.1 to keep-alive), and idle keep-alive connections are closed
after ``idle_timeout`` seconds so forgotten clients can neither pin a
handler task forever nor stall a graceful shutdown.  Shutdown
(:meth:`EquilibriumServer.close`, or :meth:`request_shutdown` from a
signal handler) stops accepting, wakes every idle reader, lets in-flight
requests finish their response, then drains the scheduler.

Malformed requests are answered with a structured JSON error and the
configured 4xx status; the connection (and the server) stays up.  Requests
are dispatched concurrently — each connection's reader keeps going while
solves run — which is what gives the micro-batch window its cross-request
reach.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import socket
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.backends.config import SolverConfig
from repro.cache import all_cache_stats
from repro.errors import ModelValidationError
from repro.service.protocol import (
    RequestError,
    build_solve_response,
    error_payload,
    parse_solve_request,
    solve_response_chunks,
)
from repro.service.scheduler import DEFAULT_WINDOW_SECONDS, MicroBatchScheduler

__all__ = ["EquilibriumServer", "MAX_BODY_BYTES", "DEFAULT_IDLE_TIMEOUT"]

#: Largest accepted request body; far above any sane grid, far below a DoS.
MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 64

#: Idle keep-alive connections are closed after this many seconds unless
#: the server was configured otherwise (``--idle-timeout``).
DEFAULT_IDLE_TIMEOUT = 30.0

#: Grace period for in-flight requests to finish during shutdown before
#: their connection tasks are cancelled outright.
_DRAIN_GRACE_SECONDS = 10.0

#: Timeout for one peer's ``/stats?scope=local`` fetch in the merged view.
_PEER_STATS_TIMEOUT = 2.0

_STATUS_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}

#: A handler's response body: a JSON object, or an iterator of pre-encoded
#: fragments to stream with chunked transfer encoding.
_Payload = Union[Dict[str, Any], Iterator[bytes]]
#: ``(method, target, http version, headers, body)`` of one parsed request.
_ParsedRequest = Tuple[str, str, str, Dict[str, str], bytes]


class _HttpViolation(Exception):
    """A protocol-level violation; the connection is closed after replying."""


class EquilibriumServer:
    """The serving loop around a :class:`MicroBatchScheduler`.

    ``config`` is the default :class:`SolverConfig` used for requests that
    carry no ``config`` field (the CLI's ``--backend`` flag lands here);
    ``naive=True`` turns off batching/coalescing for baseline measurements.
    ``idle_timeout`` bounds how long a keep-alive connection may sit
    between requests (``None`` disables the bound).  ``worker_index`` tags
    this server as one worker of a multi-process group (see
    :mod:`repro.service.multiproc`); :meth:`set_peers` wires the group's
    direct addresses in for the merged ``/stats`` view.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 naive: bool = False,
                 max_solver_threads: int = 1,
                 config: Optional[SolverConfig] = None,
                 max_requests: Optional[int] = None,
                 idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
                 worker_index: Optional[int] = None) -> None:
        if idle_timeout is not None and idle_timeout <= 0.0:
            raise ValueError(
                f"idle_timeout must be > 0 or None, got {idle_timeout!r}")
        self._host = host
        self._port = port
        self._config = config
        self._max_requests = max_requests
        self._idle_timeout = idle_timeout
        self.worker_index = worker_index
        self.scheduler = MicroBatchScheduler(
            window_seconds, naive=naive,
            max_solver_threads=max_solver_threads)
        self._server: Optional[asyncio.base_events.Server] = None
        self._direct_server: Optional[asyncio.base_events.Server] = None
        self._peers: List[Tuple[int, str, int]] = []
        self._closing = asyncio.Event()
        self._connections: Set["asyncio.Task[None]"] = set()
        self._shutdown_begun = False
        self._shutdown_complete = asyncio.Event()
        self.requests_total = 0
        self.solve_requests = 0
        self.request_errors = 0
        self.idle_timeouts = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind and start accepting connections (port 0 = ephemeral).

        ``sock`` serves on an already-bound listening socket instead of
        ``host``/``port`` — the multi-process mode's ``SO_REUSEPORT``
        (or inherited-socket) acceptors enter here.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port)

    async def start_direct(self) -> Tuple[str, int]:
        """Open this worker's private (direct) listener on an ephemeral port.

        The direct address reaches *this* worker specifically — connections
        to the shared ``SO_REUSEPORT`` port land on an arbitrary worker —
        and is what the merged ``/stats`` fan-out dials.  Serves the same
        handler as the shared listener.
        """
        if self._direct_server is not None:
            raise RuntimeError("direct listener already started")
        self._direct_server = await asyncio.start_server(
            self._handle_connection, "127.0.0.1", 0)
        address = self._direct_server.sockets[0].getsockname()
        return str(address[0]), int(address[1])

    def set_peers(self, peers: Sequence[Tuple[int, str, int]]) -> None:
        """Install the worker group's ``(index, host, port)`` directory."""
        self._peers = sorted(peers)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def serve_until_closed(self) -> None:
        """Serve until :meth:`close` is called (or max_requests is hit)."""
        if self._server is None:
            await self.start()
        await self._closing.wait()
        await self._shutdown()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal-handler safe, synchronous).

        Wakes :meth:`serve_until_closed`, which stops accepting, closes
        idle connections, finishes in-flight requests and drains the
        scheduler.
        """
        self._closing.set()

    async def close(self) -> None:
        """Stop accepting, drain in-flight solves, release the executor."""
        self._closing.set()
        # When nobody is inside serve_until_closed, shut down directly.
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._shutdown_begun:
            await self._shutdown_complete.wait()
            return
        self._shutdown_begun = True
        try:
            for server_attr in ("_server", "_direct_server"):
                server = getattr(self, server_attr)
                setattr(self, server_attr, None)
                if server is not None:
                    server.close()
                    await server.wait_closed()
            # Idle readers wake on the closing event; in-flight requests
            # get a grace period to finish their response.
            current = asyncio.current_task()
            tasks = [task for task in self._connections if task is not current]
            if tasks:
                _done, pending = await asyncio.wait(
                    tasks, timeout=_DRAIN_GRACE_SECONDS)
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            await self.scheduler.aclose()
        finally:
            self._shutdown_complete.set()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while not self._closing.is_set():
            try:
                parsed = await self._read_request(reader)
            except _HttpViolation as violation:
                await _write_response(
                    writer, 400,
                    error_payload("bad_http", str(violation)),
                    keep_alive=False)
                break
            except asyncio.TimeoutError:
                # Slow-loris guard: stalled mid-request, close quietly.
                self.idle_timeouts += 1
                break
            if parsed is None:  # clean EOF, idle timeout, or shutdown
                break
            method, target, version, headers, body = parsed
            keep_alive = _wants_keep_alive(version, headers)
            self.requests_total += 1
            # HTTP/1.0 cannot frame a chunked stream; buffer for it.
            status, payload = await self._dispatch(
                method, target, body, allow_stream=(version == "HTTP/1.1"))
            if self._closing.is_set():
                keep_alive = False  # draining: tell the client we're done
            await _write_response(writer, status, payload,
                                  keep_alive=keep_alive)
            if not keep_alive:
                break
            if (self._max_requests is not None
                    and self.solve_requests >= self._max_requests):
                self._closing.set()
                break

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[_ParsedRequest]:
        request_line = await self._read_request_line(reader)
        if not request_line:  # shutdown, idle timeout, or clean EOF (b"")
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpViolation("malformed HTTP request line")
        method, target, version = parts[0].upper(), parts[1], parts[2]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await self._read_more(reader.readline())
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _HttpViolation("connection closed inside headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpViolation("too many header lines")
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpViolation(f"bad Content-Length {raw_length!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpViolation(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
        body = (await self._read_more(reader.readexactly(length))
                if length else b"")
        return method, target, version, headers, body

    async def _read_request_line(self, reader: asyncio.StreamReader
                                 ) -> Optional[bytes]:
        """The next request line, or ``None`` to close the connection.

        Waits on the socket *and* the shutdown event, bounded by the idle
        timeout: an idle keep-alive client can neither pin this handler
        task forever nor stall a graceful drain (the pre-fix behaviour was
        an unconditional ``readline()`` — ``_closing`` was only observed
        between requests, so shutdown hung until every idle client went
        away on its own).
        """
        if self._closing.is_set():
            return None
        read_task: "asyncio.Task[bytes]" = asyncio.ensure_future(
            reader.readline())
        closing_task: "asyncio.Task[bool]" = asyncio.ensure_future(
            self._closing.wait())
        try:
            done, _pending = await asyncio.wait(
                {read_task, closing_task}, timeout=self._idle_timeout,
                return_when=asyncio.FIRST_COMPLETED)
        finally:
            closing_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await closing_task
        if read_task in done:
            return read_task.result()
        # Shutdown or idle timeout: abandon the read and close.
        if not done:
            self.idle_timeouts += 1
        read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError, ConnectionError,
                                 asyncio.IncompleteReadError):
            await read_task
        return None

    async def _read_more(self, awaitable: Any) -> bytes:
        """A mid-request read, bounded by the idle timeout."""
        if self._idle_timeout is None:
            result = await awaitable
        else:
            result = await asyncio.wait_for(awaitable, self._idle_timeout)
        return bytes(result)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, method: str, target: str, body: bytes, *,
                        allow_stream: bool = True
                        ) -> Tuple[int, _Payload]:
        path, _, query = target.partition("?")
        if path == "/solve":
            if method != "POST":
                return 405, error_payload("method_not_allowed",
                                          "/solve accepts POST only")
            return await self._handle_solve(body, allow_stream=allow_stream)
        if path == "/stats":
            if method != "GET":
                return 405, error_payload("method_not_allowed",
                                          "/stats accepts GET only")
            if self._peers and "scope=local" not in query.split("&"):
                return 200, await self._merged_stats()
            return 200, self.stats()
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload("method_not_allowed",
                                          "/healthz accepts GET only")
            return 200, {"schema": 1, "status": "ok"}
        return 404, error_payload("not_found", f"no route for {path!r}")

    async def _handle_solve(self, body: bytes, *, allow_stream: bool
                            ) -> Tuple[int, _Payload]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.request_errors += 1
            return 400, error_payload("bad_json",
                                      f"request body is not JSON: {error}")
        try:
            request = parse_solve_request(payload)
        except RequestError as error:
            self.request_errors += 1
            return error.status, error_payload(error.code, error.message)
        if request.config is None:  # pragma: no cover - parse always resolves
            raise RuntimeError("unresolved request config")
        solve_config = (request.config if "config" in payload
                        else self._effective_config(request.config))
        self.solve_requests += 1
        try:
            batch, batch_size, coalesced = await self.scheduler.solve(
                request.population, request.nus, request.mechanism,
                solve_config)
        except ModelValidationError as error:
            self.request_errors += 1
            return 400, error_payload("bad_request", str(error))
        except Exception as error:  # keep serving on solver faults
            self.request_errors += 1
            return 500, error_payload("solver_error",
                                      f"{type(error).__name__}: {error}")
        if solve_config is not request.config:
            request = _with_config(request, solve_config)
        if request.detail and allow_stream:
            return 200, solve_response_chunks(request, batch,
                                              coalesced=coalesced,
                                              batch_size=batch_size)
        return 200, build_solve_response(request, batch, coalesced=coalesced,
                                         batch_size=batch_size)

    def _effective_config(self, parsed: SolverConfig) -> SolverConfig:
        """The server-default config for requests without a config field."""
        return self._config if self._config is not None else parsed

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: cache + scheduler + server counters."""
        payload: Dict[str, Any] = {
            "schema": 1,
            "caches": all_cache_stats(),
            "scheduler": self.scheduler.stats(),
            "server": {
                "requests_total": self.requests_total,
                "solve_requests": self.solve_requests,
                "request_errors": self.request_errors,
                "idle_timeouts": self.idle_timeouts,
            },
        }
        if self.worker_index is not None:
            payload["worker"] = {"index": self.worker_index,
                                 "pid": os.getpid()}
        return payload

    async def _merged_stats(self) -> Dict[str, Any]:
        """The multi-worker ``/stats`` view: per-worker + aggregate.

        Fans ``GET /stats?scope=local`` out to every peer's direct address
        and merges: the top level keeps the single-process shape (summed
        ``server``/``scheduler``/``caches`` counters, so existing
        consumers — the load generator's before/after deltas included —
        read aggregate numbers unchanged) and a ``workers`` list carries
        each worker's own payload.  An unreachable worker is reported in
        its slot, never fatal to the view.
        """
        from repro.service.multiproc import merge_worker_stats

        async def fetch(index: int, host: str, port: int) -> Dict[str, Any]:
            if index == self.worker_index:
                return self.stats()
            from repro.service.client import ServiceClient
            try:
                async with ServiceClient(host, port) as client:
                    status, payload = await asyncio.wait_for(
                        client.request("GET", "/stats?scope=local"),
                        timeout=_PEER_STATS_TIMEOUT)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return {"worker": {"index": index}, "unreachable": True}
            if status != 200:  # pragma: no cover - peers always serve stats
                return {"worker": {"index": index}, "unreachable": True}
            return payload

        payloads = await asyncio.gather(
            *[fetch(index, host, port) for index, host, port in self._peers])
        return merge_worker_stats(list(payloads))


def _wants_keep_alive(version: str, headers: Dict[str, str]) -> bool:
    """Keep-alive per RFC 9112: header tokens are case-insensitive and the
    HTTP version sets the default (1.1 persistent, 1.0 close)."""
    connection = headers.get("connection", "").strip().lower()
    if connection == "close":
        return False
    if connection == "keep-alive":
        return True
    return version == "HTTP/1.1"


def _with_config(request: Any, config: SolverConfig) -> Any:
    """The request with the server-default config substituted in."""
    from dataclasses import replace

    return replace(request, config=config)


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload: _Payload, *,
                          keep_alive: bool) -> None:
    if isinstance(payload, dict):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await _write_buffered(writer, status, body, keep_alive=keep_alive)
    else:
        await _write_chunked(writer, status, payload, keep_alive=keep_alive)


async def _write_buffered(writer: asyncio.StreamWriter, status: int,
                          body: bytes, *, keep_alive: bool) -> None:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def _write_chunked(writer: asyncio.StreamWriter, status: int,
                         chunks: Iterator[bytes], *,
                         keep_alive: bool) -> None:
    """Stream a response with chunked transfer encoding.

    Each fragment becomes one HTTP chunk and the transport is drained
    after every write, so the server's buffering stays bounded by one
    fragment (plus the socket buffer) no matter how large the body — the
    point of the ``detail: true`` streaming mode.
    """
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Transfer-Encoding: chunked\r\n"
            f"Connection: {connection}\r\n\r\n").encode("latin-1")
    writer.write(head)
    await writer.drain()
    for chunk in chunks:
        if not chunk:
            continue  # a zero-length chunk would terminate the stream
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
