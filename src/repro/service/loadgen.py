"""Concurrent load generation against a running equilibrium server.

The core behind ``scripts/service_loadgen.py`` and
``benchmarks/bench_service.py``: a pool of keep-alive client connections
replays a deterministic request stream against ``POST /solve``, measures
per-request latency with a monotonic clock, and reads the scheduler's
counters off ``GET /stats`` before and after, so the reported coalesce /
fusion rates cover exactly this run.

Request streams are index-deterministic (no RNG, no wall clock): the same
(distribution, requests) pair always produces the same payload sequence,
which keeps serving benchmarks comparable across runs and machines.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.service.client import ServiceClient

__all__ = ["DISTRIBUTIONS", "build_payload", "run_loadgen"]

#: Key distributions exercised by the benchmark and the CLI:
#: ``hot``   — every request identical (maximal coalescing),
#: ``cold``  — every request a distinct grid (no coalescing; micro-batching
#:             can still fuse compatible grids into union solves),
#: ``mixed`` — 80% hot / 20% cold interleaved.
DISTRIBUTIONS: Tuple[str, ...] = ("hot", "cold", "mixed")

_HOT_GRID = [50.0, 100.0, 150.0, 200.0]


def build_payload(distribution: str, index: int, *, count: int = 1000,
                  seed: int = 0, mechanism: str = "maxmin",
                  detail: bool = False) -> Dict[str, Any]:
    """The ``index``-th request of a deterministic workload stream."""
    if distribution not in DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r}; expected "
                         f"one of {DISTRIBUTIONS}")
    population = {"count": count, "seed": seed}
    if distribution == "hot" or (distribution == "mixed" and index % 5 != 0):
        grid: List[float] = list(_HOT_GRID)
    else:
        # A grid unique to this index: never coalesces, and only fuses
        # with *other* grids via the union solve.
        base = 10.0 + float(index)
        grid = [base, base + 0.25, base + 0.5]
    payload = {"population": population, "mechanism": mechanism, "nus": grid}
    if detail:
        payload["detail"] = True
    return payload


async def run_loadgen(host: str, port: int, *, distribution: str,
                      requests: int, concurrency: int, count: int = 1000,
                      seed: int = 0, mechanism: str = "maxmin",
                      detail: bool = False) -> Dict[str, Any]:
    """Replay a workload and return its latency/throughput/coalesce report.

    Raises ``RuntimeError`` when any request fails — a load measurement
    over errored requests would be meaningless.
    """
    if requests < 1 or concurrency < 1:
        raise ValueError("requests and concurrency must be >= 1")
    concurrency = min(concurrency, requests)
    async with ServiceClient(host, port) as probe:
        _, before = await probe.stats()

    latencies_ms: List[float] = []
    failures: List[Tuple[int, Any]] = []
    next_index = 0
    lock = asyncio.Lock()

    async def worker() -> None:
        nonlocal next_index
        async with ServiceClient(host, port) as client:
            while True:
                async with lock:
                    index = next_index
                    if index >= requests:
                        return
                    next_index += 1
                payload = build_payload(distribution, index, count=count,
                                        seed=seed, mechanism=mechanism,
                                        detail=detail)
                started = time.perf_counter()
                status, body = await client.solve(payload)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                if status != 200:
                    failures.append((status, body.get("error")))
                    return
                latencies_ms.append(elapsed_ms)

    started = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    elapsed = time.perf_counter() - started
    if failures:
        raise RuntimeError(f"{len(failures)} request(s) failed; first: "
                           f"{failures[0]}")

    async with ServiceClient(host, port) as probe:
        _, after = await probe.stats()
    scheduler_before = before.get("scheduler", {})
    scheduler_after = after.get("scheduler", {})

    def delta(counter: str) -> int:
        return int(scheduler_after.get(counter, 0)
                   - scheduler_before.get(counter, 0))

    served = delta("requests")
    coalesced = delta("coalesced")
    return {
        "distribution": distribution,
        "requests": requests,
        "concurrency": concurrency,
        "detail": detail,
        "seconds": elapsed,
        "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
        "p50_ms": float(np.percentile(latencies_ms, 50)),
        "p99_ms": float(np.percentile(latencies_ms, 99)),
        "mean_ms": float(np.mean(latencies_ms)),
        "coalesced": coalesced,
        "coalesce_rate": coalesced / served if served else 0.0,
        "batches": delta("batches"),
        "fused_requests": delta("fused_requests"),
        "engine_solves": delta("engine_solves"),
        "errors": delta("errors"),
    }
