"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses are
raised by the individual subsystems:

* model-construction problems (bad parameters, demand functions that violate
  Assumption 1, strategies outside the feasible region) raise
  :class:`ModelValidationError`;
* numerical solvers that fail to converge raise :class:`ConvergenceError`;
* rate-allocation mechanisms that produce allocations violating the paper's
  axioms raise :class:`AxiomViolationError`;
* game solvers that cannot certify an equilibrium raise
  :class:`EquilibriumError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelValidationError",
    "ConvergenceError",
    "AxiomViolationError",
    "EquilibriumError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ModelValidationError(ReproError, ValueError):
    """Raised when model inputs are malformed or violate paper assumptions.

    Examples include a negative capacity, a content-provider popularity
    outside ``(0, 1]``, a demand function that decreases with throughput
    (violating Assumption 1) or an ISP strategy with ``kappa`` outside
    ``[0, 1]``.
    """


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative numerical solver does not converge.

    Carries the last iterate and the residual so callers can decide whether
    the partial answer is acceptable.
    """

    def __init__(self, message: str, *, residual: float | None = None,
                 iterations: int | None = None) -> None:
        super().__init__(message)
        self.residual = residual
        self.iterations = iterations


class AxiomViolationError(ReproError, AssertionError):
    """Raised when a rate allocation violates Axioms 1-4 of the paper."""

    def __init__(self, axiom: str, message: str) -> None:
        super().__init__(f"{axiom}: {message}")
        self.axiom = axiom


class EquilibriumError(ReproError, RuntimeError):
    """Raised when a game solver cannot produce or certify an equilibrium."""
