"""Parallel reproduce-all pipeline.

This package turns the paper's 15 reproductions into a declarative,
regression-tested suite:

* :mod:`repro.runner.registry` — the :class:`ExperimentSpec` registry
  (experiment ids, callables, tunable parameters, expected findings and
  ``smoke`` / ``default`` / ``paper`` scale presets); the single source of
  truth for the CLI, the executor and the golden tests.
* :mod:`repro.runner.executor` — the sharded multi-process runner behind
  ``repro-netneutrality reproduce-all`` (byte-identical output for any
  worker count and shard order).
* :mod:`repro.runner.artifacts` — canonical JSON artifact emission and the
  SHA-256 run manifest.
* :mod:`repro.runner.compare` — tolerance-aware artifact diffing used by
  the golden-regression tests and CI.

See ``ARTIFACTS.md`` for the artifact layout and schema.
"""

from repro.runner.artifacts import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    canonical_json_bytes,
    load_artifact,
    load_artifact_payload,
    load_manifest,
    result_to_artifact_bytes,
    sha256_bytes,
)
from repro.runner.compare import FLOAT_TOLERANCE, diff_payloads, floats_close
from repro.runner.executor import RunSummary, reproduce_all, shard_experiments
from repro.runner.registry import (
    EXPERIMENT_SPECS,
    SCALES,
    ExperimentSpec,
    experiment_ids,
    get_spec,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "canonical_json_bytes",
    "load_artifact",
    "load_artifact_payload",
    "load_manifest",
    "result_to_artifact_bytes",
    "sha256_bytes",
    "FLOAT_TOLERANCE",
    "diff_payloads",
    "floats_close",
    "RunSummary",
    "reproduce_all",
    "shard_experiments",
    "EXPERIMENT_SPECS",
    "SCALES",
    "ExperimentSpec",
    "experiment_ids",
    "get_spec",
]
