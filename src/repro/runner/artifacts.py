"""Deterministic JSON artifacts and the hashed run manifest.

Artifact bytes are *canonical*: keys sorted, two-space indentation, ASCII
output, floats printed with Python's shortest-round-trip ``repr`` and
non-finite values encoded portably (strict JSON has no ``Infinity`` /
``NaN`` literals) as ``{"$nonfinite": "inf" | "-inf" | "nan"}``.  Running
the same experiment twice — in any process, under any worker count —
therefore yields byte-identical files, which is what the run manifest's
SHA-256 digests and the golden-regression suite rely on.

Layout under an output directory (see ``ARTIFACTS.md``)::

    artifacts/<scale>/<EXPERIMENT_ID>.json   one ExperimentResult each
    artifacts/<scale>/manifest.json          deterministic run manifest
    artifacts/<scale>/run_info.json          wall times etc. (NOT deterministic)
"""

from __future__ import annotations

import hashlib
import json
import math
import numbers
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ModelValidationError
from repro.simulation.results import ExperimentResult

__all__ = ["MANIFEST_SCHEMA_VERSION", "canonical_json_bytes",
           "decode_payload", "result_to_artifact_bytes",
           "load_artifact", "load_artifact_payload",
           "artifact_filename", "build_manifest", "manifest_bytes",
           "load_manifest", "sha256_bytes"]

#: Version of the ``manifest.json`` layout.
MANIFEST_SCHEMA_VERSION = 1

#: ``kind`` marker embedded in manifests.
MANIFEST_KIND = "repro-netneutrality/run-manifest"

#: Sentinel key used to encode non-finite floats in strict JSON.
_NONFINITE_KEY = "$nonfinite"

_NONFINITE_ENCODE = {math.inf: "inf", -math.inf: "-inf"}


def _encode_nonfinite(value: Any) -> Any:
    """``value`` with every non-finite float replaced by a sentinel object."""
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Real) and not isinstance(
            value, numbers.Integral):
        value = float(value)
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {_NONFINITE_KEY: "nan"}
        return {_NONFINITE_KEY: _NONFINITE_ENCODE[value]}
    if isinstance(value, Mapping):
        if _NONFINITE_KEY in value:
            raise ModelValidationError(
                f"payload mappings may not use the reserved key "
                f"{_NONFINITE_KEY!r}")
        return {key: _encode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_nonfinite(item) for item in value]
    return value


def _decode_nonfinite(value: Any) -> Any:
    """Inverse of :func:`_encode_nonfinite` (applied after ``json.loads``)."""
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_KEY}:
            token = value[_NONFINITE_KEY]
            try:
                return {"inf": math.inf, "-inf": -math.inf,
                        "nan": math.nan}[token]
            except KeyError:
                raise ModelValidationError(
                    f"unknown non-finite token {token!r}") from None
        return {key: _decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_nonfinite(item) for item in value]
    return value


def canonical_json_bytes(payload: Any) -> bytes:
    """``payload`` as canonical JSON text (sorted keys, trailing newline)."""
    encoded = _encode_nonfinite(payload)
    text = json.dumps(encoded, sort_keys=True, indent=2, ensure_ascii=True,
                      allow_nan=False)
    return (text + "\n").encode("ascii")


def decode_payload(data: bytes) -> Any:
    """Parse canonical JSON bytes back into a payload (sentinels decoded)."""
    return _decode_nonfinite(json.loads(data.decode("ascii")))


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def result_to_artifact_bytes(result: ExperimentResult) -> bytes:
    """The canonical artifact bytes of one experiment result."""
    return canonical_json_bytes(result.to_dict())


def artifact_filename(experiment_id: str) -> str:
    """File name of one experiment's artifact inside a run directory."""
    return f"{experiment_id}.json"


def load_artifact_payload(path: Path) -> Dict[str, Any]:
    """The decoded JSON payload of an artifact file."""
    try:
        payload = decode_payload(Path(path).read_bytes())
    except (OSError, ValueError) as error:
        raise ModelValidationError(
            f"cannot read artifact {path}: {error}") from error
    if not isinstance(payload, dict):
        raise ModelValidationError(f"artifact {path} is not a JSON object")
    return payload


def load_artifact(path: Path) -> ExperimentResult:
    """An :class:`ExperimentResult` reloaded from an artifact file."""
    return ExperimentResult.from_dict(load_artifact_payload(path))


def build_manifest(scale: str,
                   artifacts: Mapping[str, bytes],
                   failed_findings: Optional[Mapping[str, List[str]]] = None,
                   solver: Optional[Mapping[str, Any]] = None,
                   ) -> Dict[str, Any]:
    """The deterministic run manifest for a set of artifact bytes.

    ``artifacts`` maps experiment id to the canonical artifact bytes; the
    manifest orders experiments by id and records the SHA-256 and size of
    each file, so two runs agree byte-for-byte exactly when every artifact
    does.  ``solver`` is the run's solver provenance
    (:meth:`repro.backends.SolverConfig.provenance`) — deterministic for a
    given config, and how ``scripts/manifest_diff.py`` catches comparisons
    across backends.  Anything non-deterministic (wall times, worker
    counts) belongs in ``run_info.json``, never here.
    """
    failed_findings = failed_findings or {}
    experiments = {
        experiment_id: {
            "artifact": artifact_filename(experiment_id),
            "sha256": sha256_bytes(data),
            "bytes": len(data),
            "failed_findings": sorted(failed_findings.get(experiment_id, [])),
        }
        for experiment_id, data in artifacts.items()
    }
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "scale": scale,
        "experiments": dict(sorted(experiments.items())),
    }
    if solver is not None:
        manifest["solver"] = dict(solver)
    return manifest


def manifest_bytes(manifest: Mapping[str, Any]) -> bytes:
    """Canonical bytes of a manifest payload."""
    return canonical_json_bytes(dict(manifest))


def load_manifest(path: Path) -> Dict[str, Any]:
    """A run manifest reloaded (and schema-checked) from disk."""
    payload = load_artifact_payload(path)
    if payload.get("kind") != MANIFEST_KIND:
        raise ModelValidationError(f"{path} is not a run manifest")
    if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ModelValidationError(
            f"unsupported manifest schema {payload.get('schema')!r} in {path}")
    return payload
