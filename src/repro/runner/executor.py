"""Sharded multi-process execution of the full reproduction suite.

The executor distributes experiments across worker processes as *shards*
(round-robin groups).  Each worker process keeps its own solver caches
(:mod:`repro.cache` state is per-process), so experiments inside one shard
reuse each other's equilibria while workers never contend on shared state.
Because every cache hit is guaranteed bit-identical to recomputation and
each experiment is a pure function of its parameters, the artifact bytes —
and therefore the manifest — are **byte-identical for any worker count,
shard count and shard order** (a property the test suite asserts).

Artifacts and the manifest are written by the parent process only; workers
return canonical bytes.  ``run_info.json`` receives the non-deterministic
run metadata (wall times, worker count) and is excluded from all
determinism guarantees.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.context import BaseContext
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.config import SolverConfig, resolve_config
from repro.errors import ModelValidationError
from repro.runner import artifacts as artifacts_mod
from repro.runner.registry import experiment_ids, get_spec

__all__ = ["RunSummary", "shard_experiments", "reproduce_all"]

#: File name of the non-deterministic run metadata.
RUN_INFO_FILENAME = "run_info.json"


@dataclass(frozen=True)
class RunSummary:
    """What one ``reproduce_all`` invocation produced."""

    scale: str
    output_dir: Path
    manifest_path: Path
    manifest_sha256: str
    experiment_ids: Tuple[str, ...]
    failed_findings: Dict[str, List[str]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    workers: int = 1

    @property
    def ok(self) -> bool:
        """True when every expected finding of every experiment held."""
        return not any(self.failed_findings.values())


def shard_experiments(ids: Sequence[str], shards: int) -> List[List[str]]:
    """``ids`` distributed round-robin over ``shards`` non-empty groups."""
    if shards <= 0:
        raise ModelValidationError(f"shards must be positive, got {shards}")
    shards = min(shards, len(ids)) or 1
    groups: List[List[str]] = [[] for _ in range(shards)]
    for index, experiment_id in enumerate(ids):
        groups[index % shards].append(experiment_id)
    return groups


def _execute_shard(shard: Sequence[str], scale: str, count: Optional[int],
                   seed: Optional[int],
                   config: Optional[SolverConfig] = None,
                   ) -> List[Tuple[str, bytes, List[str], float]]:
    """Run one shard of experiments sequentially (inside one process).

    Returns ``(experiment_id, artifact_bytes, failed_findings, seconds)``
    tuples; module-level so it pickles under the ``spawn`` start method
    (:class:`SolverConfig` is a frozen dataclass and pickles with it).
    """
    results = []
    for experiment_id in shard:
        spec = get_spec(experiment_id)
        started = time.perf_counter()
        result = spec.run(scale=scale,
                          count=count if spec.count_aware else None,
                          seed=seed if spec.seed_aware else None,
                          config=config)
        elapsed = time.perf_counter() - started
        data = artifacts_mod.result_to_artifact_bytes(result)
        results.append((experiment_id, data, spec.failed_findings(result),
                        elapsed))
    return results


def _child_import_path() -> None:
    """Make ``repro`` importable in spawned workers.

    ``spawn`` children re-import this module from scratch; when the parent
    runs off ``PYTHONPATH=src`` (the repo is not pip-installed) the child
    inherits the environment, but a parent that manipulated ``sys.path``
    directly would not propagate it — so the source root is appended to
    ``PYTHONPATH`` explicitly before the pool starts.
    """
    import repro
    source_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if source_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([source_root] + parts)


def _pool_context() -> BaseContext:
    """The multiprocessing context for worker pools.

    ``fork`` (where the platform offers it) starts instantly and — unlike
    ``spawn`` — works under parents whose ``__main__`` is not a re-runnable
    file (stdin scripts, REPLs).  The output bytes are independent of the
    start method either way.
    """
    try:
        return get_context("fork")
    except ValueError:
        _child_import_path()
        return get_context("spawn")


def reproduce_all(ids: Optional[Sequence[str]] = None,
                  scale: str = "smoke",
                  workers: int = 1,
                  shards: Optional[int] = None,
                  output_dir: Path = Path("artifacts"),
                  count: Optional[int] = None,
                  seed: Optional[int] = None,
                  shard_order: Optional[Sequence[int]] = None,
                  config: Optional[SolverConfig] = None) -> RunSummary:
    """Run the whole suite (or ``ids``) and write artifacts + manifest.

    ``workers`` processes execute ``shards`` round-robin groups of
    experiments (default: one shard per worker).  ``shard_order`` permutes
    the shard submission order — exposed so tests can assert that neither
    sharding nor scheduling affects the output bytes.  ``config`` selects
    the solver backend/tolerances for every experiment; its provenance is
    recorded in each artifact and in the manifest's ``solver`` block.
    Returns a :class:`RunSummary`; artifacts land in ``output_dir/<scale>/``.
    """
    started = time.perf_counter()
    config = resolve_config(config)
    if ids is None:
        ids = experiment_ids()
    ids = list(dict.fromkeys(ids))
    if not ids:
        raise ModelValidationError("no experiments selected")
    specs = [get_spec(experiment_id) for experiment_id in ids]
    if workers <= 0:
        raise ModelValidationError(f"workers must be positive, got {workers}")
    del specs  # validation only; shards re-resolve by id

    groups = shard_experiments(ids, shards if shards is not None else workers)
    if shard_order is not None:
        if sorted(shard_order) != list(range(len(groups))):
            raise ModelValidationError(
                f"shard_order must be a permutation of 0..{len(groups) - 1}")
        groups = [groups[index] for index in shard_order]

    collected: Dict[str, Tuple[bytes, List[str], float]] = {}
    if workers == 1:
        shard_results = [_execute_shard(group, scale, count, seed, config)
                         for group in groups]
    else:
        context = _pool_context()
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = [pool.submit(_execute_shard, group, scale, count, seed,
                                   config)
                       for group in groups]
            shard_results = [future.result() for future in futures]
    for shard_result in shard_results:
        for experiment_id, data, failed, elapsed in shard_result:
            collected[experiment_id] = (data, failed, elapsed)

    run_dir = Path(output_dir) / scale
    run_dir.mkdir(parents=True, exist_ok=True)
    # The run directory is this runner's namespace: drop artifacts from
    # earlier runs so the manifest always describes exactly the files on
    # disk (a re-run with --only, or after renaming an experiment, must
    # not leave stale artifacts beside a manifest that omits them).
    for stale in run_dir.glob("*.json"):
        stale.unlink()
    artifact_bytes = {experiment_id: collected[experiment_id][0]
                      for experiment_id in ids}
    failed_findings = {experiment_id: collected[experiment_id][1]
                       for experiment_id in ids}
    for experiment_id, data in artifact_bytes.items():
        (run_dir / artifacts_mod.artifact_filename(experiment_id)
         ).write_bytes(data)
    manifest = artifacts_mod.build_manifest(scale, artifact_bytes,
                                            failed_findings,
                                            solver=config.provenance())
    manifest_data = artifacts_mod.manifest_bytes(manifest)
    manifest_path = run_dir / "manifest.json"
    manifest_path.write_bytes(manifest_data)

    elapsed_total = time.perf_counter() - started
    run_info = {
        "workers": workers,
        "shards": [list(group) for group in groups],
        "elapsed_seconds": round(elapsed_total, 3),
        "experiment_seconds": {
            experiment_id: round(collected[experiment_id][2], 3)
            for experiment_id in sorted(ids)},
        "python": sys.version.split()[0],
    }
    (run_dir / RUN_INFO_FILENAME).write_bytes(
        artifacts_mod.canonical_json_bytes(run_info))

    return RunSummary(
        scale=scale,
        output_dir=run_dir,
        manifest_path=manifest_path,
        manifest_sha256=artifacts_mod.sha256_bytes(manifest_data),
        experiment_ids=tuple(sorted(ids)),
        failed_findings={k: v for k, v in failed_findings.items() if v},
        elapsed_seconds=elapsed_total,
        workers=workers,
    )
