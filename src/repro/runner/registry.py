"""Declarative registry of every paper reproduction.

Each :class:`ExperimentSpec` describes one experiment: the callable that
produces its :class:`~repro.simulation.results.ExperimentResult`, which
tunable parameters it takes (``count`` / ``seed`` awareness), the findings
the paper's claims are expected to satisfy, and per-scale parameter presets:

``smoke``
    A deliberately tiny configuration (50-CP populations, coarse grids)
    that finishes in milliseconds.  The golden artifacts committed under
    ``tests/runner/golden/smoke/`` pin exactly these runs.
``default``
    The experiment function's own defaults — the paper's 1000-CP workload
    on moderately sized grids (minutes for the full suite).
``paper``
    Denser grids at the paper's workload for publication-quality series.

The registry is the single source of truth shared by the CLI
(``repro-netneutrality list / run / reproduce-all``), the sharded executor
(:mod:`repro.runner.executor`), and the golden-regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.backends.config import SolverConfig, resolve_config, use_config
from repro.errors import ModelValidationError
from repro.simulation import experiments
from repro.simulation.results import ExperimentResult

__all__ = ["ExperimentSpec", "SCALES", "EXPERIMENT_SPECS", "get_spec",
           "experiment_ids"]

#: Recognised scale presets, in increasing-cost order.
SCALES: Tuple[str, ...] = ("smoke", "default", "paper")

#: Population size shared by every ``smoke`` preset (matches the committed
#: golden artifacts).
SMOKE_COUNT = 50


def _grid(start: float, stop: float, points: int) -> Tuple[float, ...]:
    """An evenly spaced, float-exact grid (rounded like the module defaults)."""
    if points == 1:
        return (round(float(start), 6),)
    step = (float(stop) - float(start)) / (points - 1)
    return tuple(round(float(start) + step * k, 6) for k in range(points))


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of the paper's evaluation, declaratively.

    ``scales`` maps a scale name to the keyword overrides applied on top of
    the experiment function's defaults; the ``default`` scale is always the
    empty override.  ``expected_findings`` names boolean findings that must
    be ``True`` at every scale (they hold even on the smoke preset — the
    scale-sensitive claims are pinned by the golden artifacts instead).
    """

    experiment_id: str
    function: Callable[..., ExperimentResult]
    summary: str
    count_aware: bool = True
    seed_aware: bool = True
    scales: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    expected_findings: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = set(self.scales) - set(SCALES)
        if unknown:
            raise ModelValidationError(
                f"{self.experiment_id}: unknown scales {sorted(unknown)!r}")
        object.__setattr__(
            self, "scales",
            MappingProxyType({name: MappingProxyType(dict(params))
                              for name, params in self.scales.items()}))

    def resolve_params(self, scale: str = "default",
                       count: Optional[int] = None,
                       seed: Optional[int] = None,
                       **overrides: Any) -> Dict[str, Any]:
        """The keyword arguments of one run: scale preset + explicit overrides.

        ``count`` / ``seed`` are accepted only by count/seed-aware
        experiments; passing them to an unaware experiment raises (the CLI
        turns this into a warning instead, see ``ignored_overrides``).
        """
        if scale not in SCALES:
            raise ModelValidationError(
                f"unknown scale {scale!r} (choose from {', '.join(SCALES)})")
        params: Dict[str, Any] = dict(self.scales.get(scale, {}))
        for name, value, aware in (("count", count, self.count_aware),
                                   ("seed", seed, self.seed_aware)):
            if value is None:
                continue
            if not aware:
                raise ModelValidationError(
                    f"{self.experiment_id} does not take a {name!r} "
                    "parameter")
            params[name] = value
        params.update(overrides)
        return params

    def ignored_overrides(self, count: Optional[int] = None,
                          seed: Optional[int] = None) -> List[str]:
        """Which of the generic CLI overrides this experiment would ignore."""
        ignored = []
        if count is not None and not self.count_aware:
            ignored.append("count")
        if seed is not None and not self.seed_aware:
            ignored.append("seed")
        return ignored

    def run(self, scale: str = "default", count: Optional[int] = None,
            seed: Optional[int] = None,
            config: Optional[SolverConfig] = None,
            **overrides: Any) -> ExperimentResult:
        """Execute the experiment at ``scale`` and return its result.

        ``config`` selects the solver backend/tolerances for the whole run:
        it is installed as the ambient :class:`SolverConfig` around the
        experiment function (whose signature never mentions it), and its
        provenance is recorded under ``result.parameters["solver"]`` so
        every artifact names the solver that produced it.
        """
        params = self.resolve_params(scale, count=count, seed=seed,
                                     **overrides)
        solver = resolve_config(config)
        with use_config(solver):
            result = self.function(**params)
        result.parameters["solver"] = solver.provenance()
        return result

    def failed_findings(self, result: ExperimentResult) -> List[str]:
        """Expected findings that are missing or not ``True`` in ``result``."""
        return [name for name in self.expected_findings
                if result.findings.get(name) is not True]


_SMOKE_PRICES = _grid(0.0, 1.0, 9)
_SMOKE_NUS_PRICE = (20.0, 100.0, 200.0)
_SMOKE_CAPACITY_GRID = _grid(20.0, 500.0, 5)
_SMOKE_STRATEGY_KAPPAS = (0.3, 0.9)
_SMOKE_STRATEGY_PRICES = (0.2, 0.8)

_PAPER_PRICES = _grid(0.0, 1.0, 41)
_PAPER_CAPACITY_GRID = _grid(20.0, 500.0, 25)

EXPERIMENT_SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        experiment_id="FIG2",
        function=experiments.figure2_demand_curves,
        summary="Demand function d_i(omega_i) of Equation (3)",
        count_aware=False, seed_aware=False,
        scales={"smoke": {"betas": (0.1, 1.0, 5.0), "points": 41},
                "paper": {"points": 201}},
        expected_findings=("beta5_halved_by_10pct_drop",
                           "low_beta_insensitive"),
    ),
    ExperimentSpec(
        experiment_id="FIG3",
        function=experiments.figure3_maxmin_throughput,
        summary="Throughput/demand of the three archetype CPs vs capacity",
        count_aware=False, seed_aware=False,
        scales={"smoke": {"capacities": _grid(0.0, 6000.0, 21)},
                "paper": {"capacities": _grid(0.0, 6000.0, 121)}},
        expected_findings=("google_saturates_before_skype_before_netflix",),
    ),
    ExperimentSpec(
        experiment_id="FIG4",
        function=experiments.figure4_monopoly_price,
        summary="Monopoly Psi/Phi vs premium price (kappa=1)",
        scales={"smoke": {"nus": _SMOKE_NUS_PRICE, "prices": _SMOKE_PRICES,
                          "count": SMOKE_COUNT},
                "paper": {"prices": _PAPER_PRICES}},
        expected_findings=("monopoly_misaligned_when_capacity_abundant",
                           "psi_collapses_at_high_c"),
    ),
    ExperimentSpec(
        experiment_id="FIG5",
        function=experiments.figure5_monopoly_capacity,
        summary="Monopoly Psi/Phi vs capacity over a (kappa, c) grid",
        scales={"smoke": {"kappas": _SMOKE_STRATEGY_KAPPAS,
                          "prices": _SMOKE_STRATEGY_PRICES,
                          "nus": _SMOKE_CAPACITY_GRID, "count": SMOKE_COUNT},
                "paper": {"nus": _PAPER_CAPACITY_GRID}},
        expected_findings=("psi_high_kappa_geq_low_kappa_at_large_nu",
                           "phi_low_kappa_geq_high_kappa_at_large_nu"),
    ),
    ExperimentSpec(
        experiment_id="FIG7",
        function=experiments.figure7_duopoly_price,
        summary="Duopoly vs Public Option: share/surplus vs price",
        scales={"smoke": {"nus": _SMOKE_NUS_PRICE, "prices": _SMOKE_PRICES,
                          "count": SMOKE_COUNT},
                "paper": {"prices": _PAPER_PRICES}},
        expected_findings=("share_collapses_after_peak",
                           "phi_stays_positive_at_c1",
                           "psi_drops_to_zero_at_c1"),
    ),
    ExperimentSpec(
        experiment_id="FIG8",
        function=experiments.figure8_duopoly_capacity,
        summary="Duopoly vs Public Option: share/surplus vs capacity",
        scales={"smoke": {"kappas": _SMOKE_STRATEGY_KAPPAS,
                          "prices": _SMOKE_STRATEGY_PRICES,
                          "nus": _SMOKE_CAPACITY_GRID, "count": SMOKE_COUNT},
                "paper": {"nus": _PAPER_CAPACITY_GRID}},
        expected_findings=("strategic_isp_capped_near_half_at_large_nu",),
    ),
    ExperimentSpec(
        experiment_id="FIG9",
        function=experiments.figure9_appendix_monopoly_price,
        summary="Figure 4 with phi independent of beta (appendix)",
        scales={"smoke": {"nus": _SMOKE_NUS_PRICE, "prices": _SMOKE_PRICES,
                          "count": SMOKE_COUNT},
                "paper": {"prices": _PAPER_PRICES}},
        expected_findings=("monopoly_misaligned_when_capacity_abundant",
                           "psi_collapses_at_high_c"),
    ),
    ExperimentSpec(
        experiment_id="FIG10",
        function=experiments.figure10_appendix_monopoly_capacity,
        summary="Figure 5 with phi independent of beta (appendix)",
        scales={"smoke": {"kappas": _SMOKE_STRATEGY_KAPPAS,
                          "prices": _SMOKE_STRATEGY_PRICES,
                          "nus": _SMOKE_CAPACITY_GRID, "count": SMOKE_COUNT},
                "paper": {"nus": _PAPER_CAPACITY_GRID}},
        expected_findings=("psi_high_kappa_geq_low_kappa_at_large_nu",
                           "phi_low_kappa_geq_high_kappa_at_large_nu"),
    ),
    ExperimentSpec(
        experiment_id="FIG11",
        function=experiments.figure11_appendix_duopoly_price,
        summary="Figure 7 with phi independent of beta (appendix)",
        scales={"smoke": {"nus": _SMOKE_NUS_PRICE, "prices": _SMOKE_PRICES,
                          "count": SMOKE_COUNT},
                "paper": {"prices": _PAPER_PRICES}},
        expected_findings=("share_collapses_after_peak",
                           "psi_drops_to_zero_at_c1"),
    ),
    ExperimentSpec(
        experiment_id="FIG12",
        function=experiments.figure12_appendix_duopoly_capacity,
        summary="Figure 8 with phi independent of beta (appendix)",
        scales={"smoke": {"kappas": _SMOKE_STRATEGY_KAPPAS,
                          "prices": _SMOKE_STRATEGY_PRICES,
                          "nus": _SMOKE_CAPACITY_GRID, "count": SMOKE_COUNT},
                "paper": {"nus": _PAPER_CAPACITY_GRID}},
        expected_findings=("strategic_isp_capped_near_half_at_large_nu",),
    ),
    ExperimentSpec(
        experiment_id="THM4",
        function=experiments.theorem4_kappa_dominance,
        summary="Theorem 4: kappa=1 dominates smaller premium shares",
        scales={"smoke": {"nus": (50.0, 300.0), "prices": (0.2, 0.8),
                          "kappas": (0.5, 1.0), "count": SMOKE_COUNT},
                "paper": {"kappas": (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)}},
        expected_findings=("kappa_one_dominates_everywhere",),
    ),
    ExperimentSpec(
        experiment_id="THM5",
        function=experiments.theorem5_public_option_alignment,
        summary="Theorem 5: share-optimal strategy maximises Phi vs Public Option",
        scales={"smoke": {"kappas": (0.5, 1.0), "prices": (0.3, 0.7),
                          "count": SMOKE_COUNT},
                "paper": {"prices": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                     0.8, 0.9)}},
        expected_findings=("theorem5_holds_within_tolerance",),
    ),
    ExperimentSpec(
        experiment_id="LEM4",
        function=experiments.lemma4_proportional_shares,
        summary="Lemma 4: homogeneous strategies give proportional shares",
        scales={"smoke": {"count": SMOKE_COUNT},
                "paper": {"count": 1000}},
        expected_findings=("lemma4_holds",),
    ),
    ExperimentSpec(
        experiment_id="THM6",
        function=experiments.theorem6_alignment,
        summary="Theorem 6: best responses aligned under oligopoly",
        scales={"smoke": {"kappas": (0.5, 1.0), "prices": (0.2, 0.8),
                          "count": SMOKE_COUNT},
                "paper": {"count": 1000}},
        expected_findings=("theorem6_bound_holds",),
    ),
    ExperimentSpec(
        experiment_id="REG",
        function=experiments.regulation_regimes,
        summary="Consumer/ISP surplus under the four regulatory regimes",
        scales={"smoke": {"kappas": (0.5, 1.0), "prices": (0.2, 0.7),
                          "count": SMOKE_COUNT},
                "paper": {"kappas": (0.25, 0.5, 0.75, 1.0),
                          "prices": (0.1, 0.2, 0.3, 0.45, 0.6, 0.7, 0.9)}},
        expected_findings=("paper_ordering_holds",),
    ),
)

_SPECS_BY_ID: Mapping[str, ExperimentSpec] = MappingProxyType(
    {spec.experiment_id: spec for spec in EXPERIMENT_SPECS})


def experiment_ids() -> Tuple[str, ...]:
    """Every registered experiment id, in registry (paper) order."""
    return tuple(spec.experiment_id for spec in EXPERIMENT_SPECS)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The spec registered under ``experiment_id`` (case-sensitive)."""
    try:
        return _SPECS_BY_ID[experiment_id]
    except KeyError:
        raise ModelValidationError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(experiment_ids())}") from None
