"""Tolerance-aware diffing of experiment artifacts.

The golden-regression tests (and CI) compare regenerated artifacts against
the committed goldens with per-field tolerances: structure, strings,
booleans, integers — and therefore findings like partition orderings or
"does the claim hold" flags — must match exactly, while float values
(surplus series, discontinuity magnitudes) may drift by up to an absolute
*or* relative ``1e-9``, absorbing benign refactors of the solver's
floating-point evaluation order.
"""

from __future__ import annotations

import math
import numbers
from typing import Any, List

__all__ = ["FLOAT_TOLERANCE", "diff_payloads", "floats_close"]

#: Default tolerance (absolute and relative) for float comparisons.
FLOAT_TOLERANCE = 1e-9


def floats_close(expected: float, actual: float,
                 tolerance: float = FLOAT_TOLERANCE) -> bool:
    """True when two floats agree within ``tolerance`` (abs or rel).

    Non-finite values must match exactly (``nan`` equals ``nan`` here:
    artifacts encode it deliberately, so a regenerated ``nan`` is
    agreement, not an error).
    """
    if math.isnan(expected) or math.isnan(actual):
        return math.isnan(expected) and math.isnan(actual)
    if math.isinf(expected) or math.isinf(actual):
        return expected == actual
    if expected == actual:
        return True
    return abs(expected - actual) <= tolerance * max(
        1.0, abs(expected), abs(actual))


def _is_float(value: Any) -> bool:
    return (isinstance(value, numbers.Real)
            and not isinstance(value, (bool, numbers.Integral)))


def diff_payloads(expected: Any, actual: Any,
                  tolerance: float = FLOAT_TOLERANCE,
                  path: str = "$") -> List[str]:
    """Human-readable differences between two decoded artifact payloads.

    Returns an empty list when the payloads agree (under the tolerance
    rules above); otherwise one line per difference, each prefixed with a
    JSONPath-ish location.  Comparing an ``int`` against a ``float`` (or a
    ``bool`` against either) is a type mismatch, not a numeric comparison.
    """
    if _is_float(expected) and _is_float(actual):
        if not floats_close(float(expected), float(actual), tolerance):
            return [f"{path}: {expected!r} != {actual!r} "
                    f"(tolerance {tolerance:g})"]
        return []
    if type(expected) is not type(actual):
        return [f"{path}: type mismatch {type(expected).__name__} "
                f"!= {type(actual).__name__} "
                f"({expected!r} vs {actual!r})"]
    if isinstance(expected, dict):
        differences = []
        for key in sorted(set(expected) | set(actual), key=repr):
            key_path = f"{path}.{key}"
            if key not in expected:
                differences.append(f"{key_path}: unexpected key "
                                   f"(value {actual[key]!r})")
            elif key not in actual:
                differences.append(f"{key_path}: missing key "
                                   f"(expected {expected[key]!r})")
            else:
                differences.extend(diff_payloads(expected[key], actual[key],
                                                 tolerance, key_path))
        return differences
    if isinstance(expected, list):
        differences = []
        if len(expected) != len(actual):
            differences.append(f"{path}: length {len(expected)} "
                               f"!= {len(actual)}")
        for index, (left, right) in enumerate(zip(expected, actual)):
            differences.extend(diff_payloads(left, right, tolerance,
                                             f"{path}[{index}]"))
        return differences
    if expected != actual:
        return [f"{path}: {expected!r} != {actual!r}"]
    return []
