"""A small LRU cache used by the equilibrium and game solvers.

The solvers memoise pure computations (rate equilibria of immutable
populations, CP-partition outcomes of fixed game instances), so cache hits
are guaranteed to be bit-identical to recomputation.  ``functools.lru_cache``
is unsuitable because the cached functions take numpy arrays and optional
collaborator objects; this class keys on explicitly-constructed hashable
tuples instead and exposes hit/miss counters for the benchmark harness.

Besides the entry-count bound (``maxsize``), a cache can be bounded by an
**approximate byte budget** (``max_bytes``, or the ``REPRO_CACHE_MAX_BYTES``
environment variable for every registered cache) and by a **per-entry TTL**
(``ttl_seconds``, or ``REPRO_CACHE_TTL_SECONDS``).  Both exist for the
long-lived equilibrium service: a worker process that resolves many large
populations must shed old entries under memory pressure instead of growing
until the OOM killer finds it, and a TTL bounds how stale a resident entry
can get.  Entry sizes are *approximate* (see :func:`approx_size`): numpy
array buffers dominate every cached value in this codebase, and those are
sized exactly; Python object overhead is estimated.  TTL expiry uses the
monotonic clock — wall-clock time never enters the cache (or anything
derived from it).
"""

from __future__ import annotations

import dataclasses
import os
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional

__all__ = ["LRUCache", "clear_all_caches", "all_cache_stats", "approx_size"]

_MISSING = object()

#: Environment variables consulted for every *registered* (named) cache that
#: does not set an explicit bound of its own.
MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"
TTL_ENV_VAR = "REPRO_CACHE_TTL_SECONDS"

#: Every named LRUCache registers itself here so the whole solver-cache
#: hierarchy can be cleared (or reported on) in one call.
_REGISTRY: "dict[str, LRUCache]" = {}

#: Flat per-object overhead assumed for references/small scalars (bytes).
_SCALAR_BYTES = 32
#: Flat overhead assumed per container / composite object (bytes).
_CONTAINER_BYTES = 64
#: Size charged for a non-root shared collaborator (see :func:`approx_size`).
_SHARED_REF_BYTES = 48


def clear_all_caches() -> None:
    """Clear every registered solver cache (equilibria, caps, partitions)."""
    for cache in _REGISTRY.values():
        cache.clear()


def all_cache_stats() -> Dict[str, Dict[str, Any]]:
    """Hit/miss statistics of every registered solver cache, by name."""
    return {name: cache.stats() for name, cache in _REGISTRY.items()}


def _env_positive(variable: str, convert: Callable[[str], Any]) -> Any:
    """A positive numeric environment override, or ``None`` when unset.

    Raises ``ValueError`` on garbage: a typo in a memory budget must not
    silently disable the budget.
    """
    raw = os.environ.get(variable)
    if raw is None or not raw.strip():
        return None
    try:
        value = convert(raw.strip())
    except ValueError:
        raise ValueError(
            f"{variable} must be a positive number, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{variable} must be positive, got {raw!r}")
    return value


def _is_population(value: Any) -> bool:
    """Duck-typed check for :class:`repro.network.provider.Population`.

    Kept import-free: ``cache`` sits below ``network`` in the layering, so
    it recognises populations structurally (value-fingerprinted columnar
    containers) rather than by class identity.
    """
    return (hasattr(value, "fingerprint") and hasattr(value, "_columns")
            and hasattr(value, "alphas"))


def approx_size(value: Any) -> int:
    """Approximate resident bytes of one cache entry.

    Numpy array buffers (which dominate every cached value here — batch
    equilibria, max-min profiles, population columns) are counted exactly
    via ``nbytes``; dataclasses, mappings, sequences and plain objects are
    walked recursively with a flat per-object overhead estimate.  Shared
    references inside one entry are counted once (memoised by ``id``).

    One deliberate heuristic: a :class:`Population` reached *inside* a
    composite value (e.g. ``RateEquilibrium.population``) is charged a flat
    reference cost, not its column bytes — thousands of cached equilibria
    share one resident population, and charging every entry for it would
    evict the whole cache long before the memory is real.  A population
    that *is* the cached value (the service's resident-population cache) is
    sized in full.
    """
    return _approx_size(value, seen=set(), root=True)


def _approx_size(value: Any, seen: "set[int]", root: bool) -> int:
    if value is None or isinstance(value, (bool, int, float, complex)):
        return _SCALAR_BYTES
    if isinstance(value, (bytes, bytearray, str)):
        return _CONTAINER_BYTES + len(value)
    marker = id(value)
    if marker in seen:
        return 0
    seen.add(marker)
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):  # numpy arrays (and anything array-like)
        return _CONTAINER_BYTES + nbytes
    if _is_population(value):
        if not root:
            return _SHARED_REF_BYTES
        columns = getattr(value, "_columns", {})
        total = _CONTAINER_BYTES
        for key in sorted(columns):
            total += _approx_size(columns[key], seen, root=False)
        return total
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _CONTAINER_BYTES + sum(
            _approx_size(getattr(value, field.name), seen, root=False)
            for field in dataclasses.fields(value))
    if isinstance(value, dict):
        return _CONTAINER_BYTES + sum(
            _approx_size(key, seen, root=False)
            + _approx_size(item, seen, root=False)
            for key, item in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return _CONTAINER_BYTES + sum(
            _approx_size(item, seen, root=False) for item in value)
    attributes = getattr(value, "__dict__", None)
    if isinstance(attributes, dict):  # plain objects (max-min profiles, ...)
        return _CONTAINER_BYTES + sum(
            _approx_size(item, seen, root=False)
            for _, item in sorted(attributes.items(), key=lambda kv: kv[0]))
    return int(sys.getsizeof(value, _CONTAINER_BYTES))


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Thread- and task-safe: a single lock serialises every read, insert,
    eviction and counter update, so the caches can serve as warm shared
    state for the equilibrium service, whose solves run on executor threads
    while the event loop keeps accepting requests.  Single-threaded callers
    (the games, sweeps and runner) observe exactly the pre-lock behaviour.
    A ``maxsize`` of ``None`` disables bounding (useful in tests), ``0``
    disables caching entirely (every lookup misses), which gives a one-line
    way to compare cached and uncached runs.

    ``max_bytes`` adds an approximate byte budget on top of ``maxsize``:
    inserts evict least-recently-used entries until the budget holds, and a
    single value larger than the whole budget is rejected outright (counted
    in ``rejected_oversize``).  ``ttl_seconds`` expires entries lazily on
    access; an expired entry is a miss (and is dropped), so
    :meth:`get_or_compute` recomputes it.  Named caches fall back to the
    ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_TTL_SECONDS`` environment
    variables when the bounds are not set explicitly, which is how the
    serving CLI applies one memory policy to every registered cache.
    """

    def __init__(self, maxsize: Optional[int] = 1024,
                 name: Optional[str] = None, *,
                 max_bytes: Optional[int] = None,
                 ttl_seconds: Optional[float] = None,
                 sizer: Optional[Callable[[Any], int]] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError(f"maxsize must be >= 0 or None, got {maxsize!r}")
        if name is not None:
            if max_bytes is None:
                max_bytes = _env_positive(MAX_BYTES_ENV_VAR, int)
            if ttl_seconds is None:
                ttl_seconds = _env_positive(TTL_ENV_VAR, float)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0 or None, got {max_bytes!r}")
        if ttl_seconds is not None and ttl_seconds <= 0.0:
            raise ValueError(
                f"ttl_seconds must be > 0 or None, got {ttl_seconds!r}")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.name = name
        self._sizer = sizer if sizer is not None else approx_size
        self._clock = clock if clock is not None else time.monotonic
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self._expiries: Dict[Hashable, float] = {}
        self._current_bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions_maxsize = 0
        self.evictions_bytes = 0
        self.expirations = 0
        self.rejected_oversize = 0
        if name is not None:
            _REGISTRY[name] = self

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            if self._expired(key):
                self._drop(key)
                self.expirations += 1
                return False
            return key in self._data

    # ------------------------------------------------------------------ #
    # Internal bookkeeping (call with the lock held)
    # ------------------------------------------------------------------ #
    def _expired(self, key: Hashable) -> bool:
        expiry = self._expiries.get(key)
        return expiry is not None and self._clock() >= expiry

    def _drop(self, key: Hashable) -> None:
        if key in self._data:
            del self._data[key]
            self._current_bytes -= self._sizes.pop(key, 0)
            self._expiries.pop(key, None)

    def _evict_lru(self) -> None:
        key, _ = self._data.popitem(last=False)
        self._current_bytes -= self._sizes.pop(key, 0)
        self._expiries.pop(key, None)

    # ------------------------------------------------------------------ #
    # Mapping API
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit.

        An entry past its TTL is dropped and counts as a miss (and one
        expiration), so callers recompute instead of serving stale values.
        """
        with self._lock:
            if self._expired(key):
                self._drop(key)
                self.expirations += 1
                self.misses += 1
                return default
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any,
            ttl: Optional[float] = None) -> None:
        """Insert ``key``, evicting least-recently-used entries as needed.

        Eviction honours both bounds: the entry count (``maxsize``) and the
        approximate byte budget (``max_bytes``).  ``ttl`` overrides the
        cache-level ``ttl_seconds`` for this entry.
        """
        with self._lock:
            if self.maxsize == 0:
                return
            size = self._sizer(value) if self.max_bytes is not None else 0
            if self.max_bytes is not None and size > self.max_bytes:
                # Larger than the whole budget: caching it would evict
                # everything else and still bust the bound.
                self._drop(key)
                self.rejected_oversize += 1
                return
            if key in self._data:
                self._current_bytes -= self._sizes.pop(key, 0)
                self._data.move_to_end(key)
            self._data[key] = value
            self._sizes[key] = size
            self._current_bytes += size
            effective_ttl = ttl if ttl is not None else self.ttl_seconds
            if effective_ttl is not None:
                self._expiries[key] = self._clock() + effective_ttl
            else:
                self._expiries.pop(key, None)
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._evict_lru()
                self.evictions_maxsize += 1
            if self.max_bytes is not None:
                while self._current_bytes > self.max_bytes and len(self._data) > 1:
                    self._evict_lru()
                    self.evictions_bytes += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing a miss.

        ``compute`` is a zero-argument callable invoked only on a miss; hit
        and miss counters behave exactly as with :meth:`get` + :meth:`put`
        (an entry past its TTL is a miss, so stale values are recomputed,
        never served).  The lock is *not* held while ``compute`` runs (a
        long solve must not block every other cache user), so two threads
        racing on the same missing key may both compute it — the cached
        computations are pure, so the duplicate work is benign and
        last-write-wins is correct.
        """
        with self._lock:
            if self._expired(key):
                self._drop(key)
                self.expirations += 1
                self.misses += 1
            else:
                value = self._data.get(key, _MISSING)
                if value is not _MISSING:
                    self._data.move_to_end(key)
                    self.hits += 1
                    return value
                self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self._expiries.clear()
            self._current_bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions_maxsize = 0
            self.evictions_bytes = 0
            self.expirations = 0
            self.rejected_oversize = 0

    def stats(self) -> Dict[str, Any]:
        """Counters for reports: size, hits, misses, evictions, bytes."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "current_bytes": self._current_bytes,
                "max_bytes": self.max_bytes,
                "ttl_seconds": self.ttl_seconds,
                "evictions_maxsize": self.evictions_maxsize,
                "evictions_bytes": self.evictions_bytes,
                "expirations": self.expirations,
                "rejected_oversize": self.rejected_oversize,
            }
