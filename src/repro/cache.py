"""A small LRU cache used by the equilibrium and game solvers.

The solvers memoise pure computations (rate equilibria of immutable
populations, CP-partition outcomes of fixed game instances), so cache hits
are guaranteed to be bit-identical to recomputation.  ``functools.lru_cache``
is unsuitable because the cached functions take numpy arrays and optional
collaborator objects; this class keys on explicitly-constructed hashable
tuples instead and exposes hit/miss counters for the benchmark harness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional

__all__ = ["LRUCache", "clear_all_caches", "all_cache_stats"]

_MISSING = object()

#: Every named LRUCache registers itself here so the whole solver-cache
#: hierarchy can be cleared (or reported on) in one call.
_REGISTRY: "dict[str, LRUCache]" = {}


def clear_all_caches() -> None:
    """Clear every registered solver cache (equilibria, caps, partitions)."""
    for cache in _REGISTRY.values():
        cache.clear()


def all_cache_stats() -> Dict[str, Dict[str, Any]]:
    """Hit/miss statistics of every registered solver cache, by name."""
    return {name: cache.stats() for name, cache in _REGISTRY.items()}


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Thread- and task-safe: a single lock serialises every read, insert,
    eviction and counter update, so the caches can serve as warm shared
    state for the equilibrium service, whose solves run on executor threads
    while the event loop keeps accepting requests.  Single-threaded callers
    (the games, sweeps and runner) observe exactly the pre-lock behaviour.
    A ``maxsize`` of ``None`` disables bounding (useful in tests), ``0``
    disables caching entirely (every lookup misses), which gives a one-line
    way to compare cached and uncached runs.
    """

    def __init__(self, maxsize: Optional[int] = 1024,
                 name: Optional[str] = None) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError(f"maxsize must be >= 0 or None, got {maxsize!r}")
        self.maxsize = maxsize
        self.name = name
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        if name is not None:
            _REGISTRY[name] = self

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` (evicting the least recently used entry if full)."""
        with self._lock:
            if self.maxsize == 0:
                return
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing a miss.

        ``compute`` is a zero-argument callable invoked only on a miss; hit
        and miss counters behave exactly as with :meth:`get` + :meth:`put`.
        The lock is *not* held while ``compute`` runs (a long solve must not
        block every other cache user), so two threads racing on the same
        missing key may both compute it — the cached computations are pure,
        so the duplicate work is benign and last-write-wins is correct.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, Any]:
        """Counters for reports: size, hits, misses and the hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }
