"""Command-line interface for the reproduction.

Usage examples::

    repro-netneutrality list
    repro-netneutrality run FIG2
    repro-netneutrality run FIG4 --count 500 --seed 7
    repro-netneutrality run THM4 --scale smoke --json
    repro-netneutrality reproduce-all --scale smoke --workers 4
    repro-netneutrality regimes --nu 200
    repro-netneutrality population --count 1000

``run`` executes one of the figure / theorem reproductions registered in
:mod:`repro.runner.registry` and prints its plain-text report (tables plus
qualitative findings) or, with ``--json``, its canonical JSON artifact.
``reproduce-all`` runs the whole suite through the sharded multi-process
executor and writes one artifact per experiment plus a SHA-256 manifest
(see ``ARTIFACTS.md`` for the layout).  ``cache-stats`` (and the
``--cache-stats`` flag on ``run``/``reproduce-all``) prints the solver
caches' hit/miss counters, so cache-efficiency regressions are inspectable
without the benchmark harness.  Everything the CLI prints is also
available programmatically through the library API.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

from repro.backends import BACKEND_NAMES, SolverConfig
from repro.cache import all_cache_stats
from repro.core.regulation import compare_regimes
from repro.errors import ModelValidationError
from repro.runner.artifacts import result_to_artifact_bytes
from repro.runner.executor import reproduce_all
from repro.runner.registry import (
    EXPERIMENT_SPECS,
    SCALES,
    experiment_ids,
    get_spec,
)
from repro.simulation.results import ExperimentResult
from repro.workloads.populations import paper_population

__all__ = ["main", "build_parser", "EXPERIMENT_REGISTRY"]

#: Maps experiment ids to their reproduction functions.  Kept for backwards
#: compatibility; the :mod:`repro.runner.registry` specs are the canonical
#: source (they add scale presets, parameter awareness and expected
#: findings on top of the bare callables).
EXPERIMENT_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    spec.experiment_id: spec.function for spec in EXPERIMENT_SPECS
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-netneutrality",
        description="Reproduction of 'The Public Option' (Ma & Misra, CoNEXT 2011)",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(experiment_ids()),
                            help="experiment id (see `list`)")
    run_parser.add_argument("--scale", default="default", choices=SCALES,
                            help="parameter preset (default: the paper's "
                                 "1000-CP workload)")
    run_parser.add_argument("--count", type=int, default=None,
                            help="number of content providers (default: paper's 1000)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="population seed (default: the library's "
                                 "fixed reproduction seed)")
    run_parser.add_argument("--max-rows", type=int, default=12,
                            help="maximum table rows per panel in the report")
    run_parser.add_argument("--json", action="store_true",
                            help="print the canonical JSON artifact instead "
                                 "of the plain-text report")
    run_parser.add_argument("--backend", default=None,
                            choices=BACKEND_NAMES,
                            help="solver kernel backend (default: reference, "
                                 "or the REPRO_BACKEND environment "
                                 "variable; 'numba' falls back to reference "
                                 "with a warning when numba is missing)")
    run_parser.add_argument("--cache-stats", action="store_true",
                            help="after the run, print the solver caches' "
                                 "hit/miss statistics to stderr")

    all_parser = subparsers.add_parser(
        "reproduce-all",
        help="run the whole suite and write JSON artifacts + manifest")
    all_parser.add_argument("--scale", default="smoke", choices=SCALES,
                            help="parameter preset for every experiment "
                                 "(default: smoke)")
    all_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (default: 1)")
    all_parser.add_argument("--shards", type=int, default=None,
                            help="round-robin shards (default: one per worker)")
    all_parser.add_argument("--output", type=Path, default=Path("artifacts"),
                            help="output directory (default: artifacts/)")
    all_parser.add_argument("--only", action="append", metavar="ID",
                            default=None,
                            help="run only this experiment id (repeatable)")
    all_parser.add_argument("--count", type=int, default=None,
                            help="override the CP count of count-aware "
                                 "experiments")
    all_parser.add_argument("--seed", type=int, default=None,
                            help="override the population seed of seed-aware "
                                 "experiments")
    all_parser.add_argument("--backend", default=None,
                            choices=BACKEND_NAMES,
                            help="solver kernel backend for every "
                                 "experiment; recorded in the artifacts "
                                 "and the manifest's solver block")
    all_parser.add_argument("--strict-findings", action="store_true",
                            help="exit non-zero when an expected finding "
                                 "does not hold")
    all_parser.add_argument("--cache-stats", action="store_true",
                            help="after the suite, print the solver caches' "
                                 "hit/miss statistics to stderr (with "
                                 "--workers > 1 the caches live in the "
                                 "worker processes, so the parent's "
                                 "counters only cover its own solves)")

    stats_parser = subparsers.add_parser(
        "cache-stats",
        help="print the solver caches' hit/miss statistics")
    stats_parser.add_argument("--json", action="store_true",
                              help="machine-readable JSON instead of a table")

    regimes_parser = subparsers.add_parser(
        "regimes", help="compare regulatory regimes at one capacity")
    regimes_parser.add_argument("--nu", type=float, default=200.0,
                                help="per-capita capacity")
    regimes_parser.add_argument("--count", type=int, default=1000,
                                help="number of content providers")

    population_parser = subparsers.add_parser(
        "population", help="describe the paper's random CP population")
    population_parser.add_argument("--count", type=int, default=1000)
    population_parser.add_argument("--utility-model", default="beta_correlated",
                                   choices=("beta_correlated", "independent"))

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived equilibrium server (POST /solve, "
             "GET /stats, GET /healthz; see ARTIFACTS.md)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8787,
                              help="TCP port; 0 picks an ephemeral port "
                                   "(default: 8787)")
    serve_parser.add_argument("--window-ms", type=float, default=2.0,
                              help="micro-batch window in milliseconds: "
                                   "compatible requests arriving within it "
                                   "are fused into one union-grid solve "
                                   "(default: 2.0)")
    serve_parser.add_argument("--backend", default=None,
                              choices=BACKEND_NAMES,
                              help="default solver backend for requests "
                                   "without a config field")
    serve_parser.add_argument("--naive", action="store_true",
                              help="disable batching and coalescing (one "
                                   "solve per request); the benchmark "
                                   "baseline, not a production mode")
    serve_parser.add_argument("--solver-threads", type=int, default=1,
                              help="executor threads running solves "
                                   "(default: 1)")
    serve_parser.add_argument("--max-requests", type=int, default=None,
                              help="shut down cleanly after serving this "
                                   "many /solve requests (for smoke tests; "
                                   "with --workers > 1 the bound applies "
                                   "per worker)")
    serve_parser.add_argument("--workers", type=int, default=1,
                              help="serving processes sharing the port via "
                                   "SO_REUSEPORT; each worker has its own "
                                   "event loop, scheduler and caches "
                                   "(default: 1, single-process)")
    serve_parser.add_argument("--idle-timeout", type=float, default=30.0,
                              help="seconds an idle keep-alive connection "
                                   "may sit between requests before the "
                                   "server closes it; 0 disables the "
                                   "timeout (default: 30)")

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the solver-invariant static analysis (rules RL001-RL006)")
    lint_parser.add_argument("paths", nargs="*", default=["src"],
                             help="files or directories to lint (default: src)")
    lint_parser.add_argument("--select", action="append", metavar="CODES",
                             default=None,
                             help="run only these rule codes (comma list, "
                                  "repeatable)")
    lint_parser.add_argument("--ignore", action="append", metavar="CODES",
                             default=None,
                             help="skip these rule codes (comma list, "
                                  "repeatable)")
    lint_parser.add_argument("--format", dest="output_format", default="text",
                             choices=("text", "json"),
                             help="report format (default: text)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the registered rules and exit")
    return parser


def format_cache_stats(stats: Optional[Dict[str, Dict[str, Any]]] = None, *,
                       as_json: bool = False) -> str:
    """Render ``repro.cache.all_cache_stats()`` as a table (or JSON).

    Exposed for testing and for scripts that want the same rendering the
    CLI uses.
    """
    if stats is None:
        stats = all_cache_stats()
    if as_json:
        return json.dumps(stats, indent=2, sort_keys=True)
    width = max([len(name) for name in stats] + [len("cache")])
    header = (f"{'cache':<{width}} {'size':>8} {'maxsize':>8} {'hits':>10} "
              f"{'misses':>10} {'hit_rate':>9}")
    lines = [header, "-" * len(header)]
    for name in sorted(stats):
        entry = stats[name]
        maxsize = entry.get("maxsize")
        lines.append(
            f"{name:<{width}} {entry['size']:>8} "
            f"{(maxsize if maxsize is not None else 'inf'):>8} "
            f"{entry['hits']:>10} {entry['misses']:>10} "
            f"{entry['hit_rate']:>9.1%}")
    return "\n".join(lines)


def _warn_ignored(experiment_id: str, ignored: Sequence[str]) -> None:
    for name in ignored:
        print(f"warning: {experiment_id} does not take --{name}; "
              "the flag is ignored", file=sys.stderr)


def _solver_config(args: argparse.Namespace) -> Optional[SolverConfig]:
    """The SolverConfig implied by --backend, or None for the default."""
    if getattr(args, "backend", None) is None:
        return None
    return SolverConfig(backend=args.backend)


def _run_experiment(args: argparse.Namespace) -> str:
    spec = get_spec(args.experiment)
    _warn_ignored(spec.experiment_id,
                  spec.ignored_overrides(count=args.count, seed=args.seed))
    result = spec.run(scale=args.scale,
                      count=args.count if spec.count_aware else None,
                      seed=args.seed if spec.seed_aware else None,
                      config=_solver_config(args))
    if args.json:
        return result_to_artifact_bytes(result).decode("ascii").rstrip("\n")
    return result.report(max_rows=args.max_rows)


def _reproduce_all(args: argparse.Namespace) -> int:
    ids = args.only if args.only else None
    if ids is not None:
        for experiment_id in ids:
            get_spec(experiment_id)  # fail fast on unknown ids
    for experiment_id in (ids if ids is not None else experiment_ids()):
        _warn_ignored(experiment_id,
                      get_spec(experiment_id).ignored_overrides(
                          count=args.count, seed=args.seed))
    summary = reproduce_all(ids=ids, scale=args.scale, workers=args.workers,
                            shards=args.shards, output_dir=args.output,
                            count=args.count, seed=args.seed,
                            config=_solver_config(args))
    print(f"reproduced {len(summary.experiment_ids)} experiments at scale "
          f"'{summary.scale}' with {summary.workers} worker(s) in "
          f"{summary.elapsed_seconds:.1f}s")
    print(f"artifacts: {summary.output_dir}")
    print(f"manifest:  {summary.manifest_path} "
          f"(sha256 {summary.manifest_sha256})")
    if summary.failed_findings:
        for experiment_id, names in sorted(summary.failed_findings.items()):
            print(f"warning: {experiment_id} failed expected findings: "
                  f"{', '.join(names)}", file=sys.stderr)
        if args.strict_findings:
            return 3
    return 0


def _serve(args: argparse.Namespace) -> int:
    """Run the equilibrium server until interrupted (or --max-requests)."""
    import asyncio
    import signal

    from repro.service.server import EquilibriumServer

    if args.window_ms < 0.0:
        print("error: --window-ms must be >= 0", file=sys.stderr)
        return 2
    if args.solver_threads < 1:
        print("error: --solver-threads must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.idle_timeout < 0.0:
        print("error: --idle-timeout must be >= 0", file=sys.stderr)
        return 2
    idle_timeout = args.idle_timeout if args.idle_timeout > 0.0 else None

    if args.workers > 1:
        from repro.service.multiproc import WorkerSettings, serve_multiprocess
        settings = WorkerSettings(
            host=args.host, port=args.port,
            window_seconds=args.window_ms / 1000.0,
            naive=args.naive,
            max_solver_threads=args.solver_threads,
            config=_solver_config(args),
            max_requests=args.max_requests,
            idle_timeout=idle_timeout)
        return serve_multiprocess(settings, args.workers)

    async def run() -> None:
        server = EquilibriumServer(
            args.host, args.port,
            window_seconds=args.window_ms / 1000.0,
            naive=args.naive,
            max_solver_threads=args.solver_threads,
            config=_solver_config(args),
            max_requests=args.max_requests,
            idle_timeout=idle_timeout)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_shutdown)
        await server.start()
        host, port = server.address
        print(f"serving on http://{host}:{port} "
              f"(window {args.window_ms:g} ms, "
              f"{'naive' if args.naive else 'micro-batching'})", flush=True)
        await server.serve_until_closed()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - handler races the loop
        print("shutting down", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        if args.command == "list":
            for spec in EXPERIMENT_SPECS:
                print(f"{spec.experiment_id:<8} {spec.summary}")
            return 0
        if args.command == "run":
            print(_run_experiment(args))
            if args.cache_stats:
                print(format_cache_stats(), file=sys.stderr)
            return 0
        if args.command == "reproduce-all":
            code = _reproduce_all(args)
            if args.cache_stats:
                print(format_cache_stats(), file=sys.stderr)
            return code
        if args.command == "cache-stats":
            print(format_cache_stats(as_json=args.json))
            return 0
        if args.command == "regimes":
            population = paper_population(count=args.count)
            comparison = compare_regimes(population, args.nu)
            print(comparison.summary_table())
            print()
            ordering = "holds" if comparison.paper_ordering_holds() else "does NOT hold"
            print(f"Paper's monopoly-side ordering (public option >= neutral >= "
                  f"unregulated) {ordering} at nu={args.nu:g}.")
            return 0
        if args.command == "serve":
            return _serve(args)
        if args.command == "lint":
            from repro.lint.cli import run as run_lint
            return run_lint(args)
        if args.command == "population":
            population = paper_population(count=args.count,
                                          utility_model=args.utility_model)
            for key, value in population.describe().items():
                print(f"{key:>32}: {value:.4f}" if isinstance(value, float)
                      else f"{key:>32}: {value}")
            return 0
    except ModelValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
