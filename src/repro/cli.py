"""Command-line interface for the reproduction.

Usage examples::

    repro-netneutrality list
    repro-netneutrality run FIG2
    repro-netneutrality run FIG4 --count 500
    repro-netneutrality regimes --nu 200
    repro-netneutrality population --count 1000

``run`` executes one of the figure / theorem reproductions from
:mod:`repro.simulation.experiments` and prints its plain-text report
(tables plus qualitative findings).  Everything the CLI prints is also
available programmatically through the library API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.core.regulation import compare_regimes
from repro.simulation import experiments
from repro.simulation.results import ExperimentResult
from repro.workloads.populations import paper_population

__all__ = ["main", "build_parser", "EXPERIMENT_REGISTRY"]

#: Maps experiment ids (as used in DESIGN.md / EXPERIMENTS.md) to functions.
EXPERIMENT_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "FIG2": experiments.figure2_demand_curves,
    "FIG3": experiments.figure3_maxmin_throughput,
    "FIG4": experiments.figure4_monopoly_price,
    "FIG5": experiments.figure5_monopoly_capacity,
    "FIG7": experiments.figure7_duopoly_price,
    "FIG8": experiments.figure8_duopoly_capacity,
    "FIG9": experiments.figure9_appendix_monopoly_price,
    "FIG10": experiments.figure10_appendix_monopoly_capacity,
    "FIG11": experiments.figure11_appendix_duopoly_price,
    "FIG12": experiments.figure12_appendix_duopoly_capacity,
    "THM4": experiments.theorem4_kappa_dominance,
    "THM5": experiments.theorem5_public_option_alignment,
    "LEM4": experiments.lemma4_proportional_shares,
    "THM6": experiments.theorem6_alignment,
    "REG": experiments.regulation_regimes,
}

#: Experiments that accept a ``count`` keyword (the CP population size).
_COUNT_AWARE = {key for key in EXPERIMENT_REGISTRY if key not in ("FIG2", "FIG3")}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-netneutrality",
        description="Reproduction of 'The Public Option' (Ma & Misra, CoNEXT 2011)",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENT_REGISTRY),
                            help="experiment id (see DESIGN.md)")
    run_parser.add_argument("--count", type=int, default=None,
                            help="number of content providers (default: paper's 1000)")
    run_parser.add_argument("--max-rows", type=int, default=12,
                            help="maximum table rows per panel in the report")

    regimes_parser = subparsers.add_parser(
        "regimes", help="compare regulatory regimes at one capacity")
    regimes_parser.add_argument("--nu", type=float, default=200.0,
                                help="per-capita capacity")
    regimes_parser.add_argument("--count", type=int, default=1000,
                                help="number of content providers")

    population_parser = subparsers.add_parser(
        "population", help="describe the paper's random CP population")
    population_parser.add_argument("--count", type=int, default=1000)
    population_parser.add_argument("--utility-model", default="beta_correlated",
                                   choices=("beta_correlated", "independent"))
    return parser


def _run_experiment(experiment_id: str, count: Optional[int],
                    max_rows: int) -> str:
    function = EXPERIMENT_REGISTRY[experiment_id]
    kwargs = {}
    if count is not None and experiment_id in _COUNT_AWARE:
        kwargs["count"] = count
    result = function(**kwargs)
    return result.report(max_rows=max_rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENT_REGISTRY):
            function = EXPERIMENT_REGISTRY[experiment_id]
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id:<8} {summary}")
        return 0
    if args.command == "run":
        print(_run_experiment(args.experiment, args.count, args.max_rows))
        return 0
    if args.command == "regimes":
        population = paper_population(count=args.count)
        comparison = compare_regimes(population, args.nu)
        print(comparison.summary_table())
        print()
        ordering = "holds" if comparison.paper_ordering_holds() else "does NOT hold"
        print(f"Paper's monopoly-side ordering (public option >= neutral >= "
              f"unregulated) {ordering} at nu={args.nu:g}.")
        return 0
    if args.command == "population":
        population = paper_population(count=args.count,
                                      utility_model=args.utility_model)
        for key, value in population.describe().items():
            print(f"{key:>32}: {value:.4f}" if isinstance(value, float)
                  else f"{key:>32}: {value}")
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
