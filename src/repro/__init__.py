"""repro — a reproduction of *The Public Option: a Non-regulatory Alternative
to Network Neutrality* (Ma & Misra, CoNEXT 2011).

The library models the three-party Internet ecosystem of the paper —
consumers, last-mile ISPs and content providers — and reproduces its
analysis of network-neutrality regulation:

* :mod:`repro.network` — throughput-sensitive demand, axiomatic
  rate-allocation mechanisms and the unique rate equilibrium (Section II);
* :mod:`repro.core` — the two-stage monopoly game, the duopoly with a
  Public Option ISP and the oligopolistic competition game
  (Sections III-IV);
* :mod:`repro.workloads` — the paper's content-provider populations;
* :mod:`repro.simulation` — sweeps, figure reproductions and Monte-Carlo
  replication.

Quickstart::

    from repro import paper_population, MonopolyGame, ISPStrategy

    cps = paper_population(count=1000)
    game = MonopolyGame(cps, nu=150.0)
    outcome = game.outcome(ISPStrategy(kappa=1.0, price=0.45))
    print(outcome.isp_surplus, outcome.consumer_surplus)
"""

from repro.backends import SolverConfig, use_config
from repro.errors import (
    AxiomViolationError,
    ConvergenceError,
    EquilibriumError,
    ModelValidationError,
    ReproError,
)
from repro.network import (
    AlphaFairAllocation,
    BottleneckLink,
    ContentProvider,
    ExponentialSensitivityDemand,
    MaxMinFairAllocation,
    NetworkSystem,
    Population,
    ProportionalFairAllocation,
    RateEquilibrium,
    TwoClassLink,
    WeightedFairAllocation,
    check_axioms,
    solve_rate_equilibrium,
)
from repro.core import (
    CPPartitionGame,
    DuopolyGame,
    DuopolyOutcome,
    ISPStrategy,
    IspConfig,
    MarketSplit,
    MonopolyGame,
    MonopolyOutcome,
    NEUTRAL_STRATEGY,
    OligopolyGame,
    OligopolyOutcome,
    PUBLIC_OPTION_STRATEGY,
    PartitionOutcome,
    RegimeComparison,
    compare_regimes,
    solve_market_split,
    strategy_grid,
    welfare_report,
)
from repro.workloads import (
    archetype_population,
    google_type,
    netflix_type,
    paper_population,
    random_population,
    skype_type,
)
from repro.simulation import experiments

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # solver configuration
    "SolverConfig",
    "use_config",
    # errors
    "ReproError",
    "ModelValidationError",
    "ConvergenceError",
    "AxiomViolationError",
    "EquilibriumError",
    # network substrate
    "ContentProvider",
    "Population",
    "ExponentialSensitivityDemand",
    "MaxMinFairAllocation",
    "ProportionalFairAllocation",
    "AlphaFairAllocation",
    "WeightedFairAllocation",
    "RateEquilibrium",
    "solve_rate_equilibrium",
    "NetworkSystem",
    "BottleneckLink",
    "TwoClassLink",
    "check_axioms",
    # games
    "ISPStrategy",
    "PUBLIC_OPTION_STRATEGY",
    "NEUTRAL_STRATEGY",
    "strategy_grid",
    "CPPartitionGame",
    "PartitionOutcome",
    "MonopolyGame",
    "MonopolyOutcome",
    "DuopolyGame",
    "DuopolyOutcome",
    "OligopolyGame",
    "OligopolyOutcome",
    "IspConfig",
    "MarketSplit",
    "solve_market_split",
    "RegimeComparison",
    "compare_regimes",
    "welfare_report",
    # workloads
    "paper_population",
    "random_population",
    "archetype_population",
    "google_type",
    "netflix_type",
    "skype_type",
    # experiments
    "experiments",
]
