"""Rate equilibrium of a system ``(M, mu, N)`` (Theorem 1, Lemma 1).

The demand functions map achievable throughput to demand; the rate-allocation
mechanism maps fixed demands back to achievable throughput.  Their interplay
has a unique fixed point — the *rate equilibrium* — under Assumption 1 and
Axioms 1-3 (Theorem 1 of the paper).  By Axiom 4 the equilibrium depends on
consumers and capacity only through the per-capita capacity ``nu = mu / M``
(Lemma 1), so the solver works entirely in per-capita terms.

Two solution paths are provided:

* an exact path for :class:`~repro.network.allocation.CommonCapAllocation`
  mechanisms (including the paper's max-min fair mechanism): the equilibrium
  is characterised by a scalar throughput cap, found by bisection on the
  work-conservation equation of Axiom 2;
* a generic damped fixed-point iteration for arbitrary mechanisms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelValidationError
from repro.network.allocation import (
    CommonCapAllocation,
    MaxMinFairAllocation,
    RateAllocationMechanism,
    fixed_point_allocation,
)
from repro.network.provider import Population

__all__ = ["RateEquilibrium", "solve_rate_equilibrium"]

_BISECTION_ITERATIONS = 200


@dataclass(frozen=True)
class RateEquilibrium:
    """The unique rate equilibrium of a (sub)system at per-capita capacity ``nu``.

    Attributes
    ----------
    population:
        Providers sharing the capacity.
    nu:
        Per-capita capacity of the (sub)system.
    thetas:
        Equilibrium per-user achievable throughput ``theta_i``.
    demands:
        Equilibrium demand fractions ``d_i(theta_i)``.
    """

    population: Population
    nu: float
    thetas: np.ndarray
    demands: np.ndarray
    mechanism_name: str = "MaxMinFairAllocation"
    #: For cap-parameterised mechanisms: the common throughput cap at
    #: equilibrium (``+inf`` when the class is uncongested, ``0`` when it has
    #: no capacity).  Used by the competitive-equilibrium "throughput-taking"
    #: estimator of Definition 3.
    common_cap: float = float("inf")

    # ---------------------------------------------------------------- #
    # Derived per-capita quantities (all per consumer, i.e. divided by M).
    # ---------------------------------------------------------------- #
    @property
    def rhos(self) -> np.ndarray:
        """Per capita throughput over each CP's own user base (Equation 5)."""
        return self.demands * self.thetas

    @property
    def per_capita_rates(self) -> np.ndarray:
        """Per-consumer rate contribution ``alpha_i d_i theta_i`` of each CP."""
        return self.population.alphas * self.rhos

    @property
    def aggregate_rate(self) -> float:
        """Per-capita aggregate carried rate ``lambda_N / M``."""
        return float(np.sum(self.per_capita_rates))

    @property
    def utilization(self) -> float:
        """Fraction of the per-capita capacity carried (1.0 when congested)."""
        if self.nu <= 0.0:
            return 0.0
        return min(1.0, self.aggregate_rate / self.nu)

    @property
    def is_congested(self) -> bool:
        """True when the capacity cannot serve all unconstrained demand."""
        return self.nu < self.population.unconstrained_per_capita_load - 1e-12

    @property
    def omegas(self) -> np.ndarray:
        """Fraction of unconstrained throughput achieved, ``theta_i/theta_hat_i``."""
        return self.thetas / self.population.theta_hats

    def consumer_surplus(self) -> float:
        """Per-capita consumer surplus ``Phi = sum_i phi_i alpha_i d_i theta_i``."""
        return float(np.sum(self.population.utility_rates * self.per_capita_rates))

    def provider_rate(self, index: int) -> float:
        """Per-capita rate of a single provider (by index in ``population``)."""
        return float(self.per_capita_rates[index])

    def provider_rho(self, index: int) -> float:
        """Per-user-base throughput ``rho_i`` of a single provider."""
        return float(self.rhos[index])

    def premium_revenue(self, price: float) -> float:
        """Per-capita ISP revenue if every provider here paid ``price``/unit."""
        if price < 0.0:
            raise ModelValidationError("price must be non-negative")
        return price * self.aggregate_rate

    def throughput_by_name(self) -> dict[str, float]:
        """Mapping from provider name to equilibrium ``theta_i``."""
        return dict(zip(self.population.names, map(float, self.thetas)))

    def scaled(self, consumers: float) -> dict[str, float]:
        """Absolute aggregate rates ``lambda_i`` for a consumer size ``M``."""
        if consumers < 0.0:
            raise ModelValidationError("consumer size must be non-negative")
        return {
            name: consumers * float(rate)
            for name, rate in zip(self.population.names, self.per_capita_rates)
        }


def _empty_equilibrium(population: Population, nu: float,
                       mechanism: RateAllocationMechanism) -> RateEquilibrium:
    return RateEquilibrium(
        population=population,
        nu=nu,
        thetas=np.zeros(0),
        demands=np.zeros(0),
        mechanism_name=type(mechanism).__name__,
    )


def _zero_capacity_equilibrium(population: Population,
                               mechanism: RateAllocationMechanism,
                               nu: float) -> RateEquilibrium:
    """Equilibrium when ``nu`` is zero: no throughput can be carried."""
    thetas = np.zeros(len(population))
    demands = population.demands_at(thetas)
    return RateEquilibrium(population, nu, thetas, demands,
                           mechanism_name=type(mechanism).__name__,
                           common_cap=0.0)


def _common_cap_equilibrium(population: Population, nu: float,
                            mechanism: CommonCapAllocation) -> RateEquilibrium:
    """Exact equilibrium for cap-parameterised mechanisms.

    The equilibrium profile is ``theta_i = theta_i(cap)`` where the cap solves
    the work-conservation equation
    ``sum_i alpha_i d_i(theta_i(cap)) theta_i(cap) = min(nu, sum_i alpha_i theta_hat_i)``.
    The left side is continuous and non-decreasing in the cap (demands are
    non-decreasing in throughput by Assumption 1), so bisection finds the
    unique solution of Theorem 1.
    """
    alphas = population.alphas
    theta_hats = population.theta_hats
    unconstrained_load = float(np.sum(alphas * theta_hats))
    target = min(nu, unconstrained_load)

    def carried(cap: float) -> tuple[float, np.ndarray, np.ndarray]:
        thetas = mechanism.theta_at_cap(population, cap)
        demands = population.demands_at(thetas)
        return float(np.sum(alphas * demands * thetas)), thetas, demands

    upper = mechanism.cap_upper_bound(population)
    carried_at_upper, thetas_up, demands_up = carried(upper)
    if nu >= unconstrained_load - 1e-15 or carried_at_upper <= target + 1e-15:
        return RateEquilibrium(population, nu, thetas_up, demands_up,
                               mechanism_name=type(mechanism).__name__,
                               common_cap=float("inf"))

    low, high = 0.0, upper
    for _ in range(_BISECTION_ITERATIONS):
        mid = 0.5 * (low + high)
        value, _, _ = carried(mid)
        if value < target:
            low = mid
        else:
            high = mid
        if high - low <= 1e-14 * max(1.0, upper):
            break
    _, thetas, demands = carried(high)
    return RateEquilibrium(population, nu, thetas, demands,
                           mechanism_name=type(mechanism).__name__,
                           common_cap=high)


def solve_rate_equilibrium(population: Population, nu: float,
                           mechanism: Optional[RateAllocationMechanism] = None,
                           ) -> RateEquilibrium:
    """Compute the unique rate equilibrium of ``(M, mu, N)`` at ``nu = mu/M``.

    Parameters
    ----------
    population:
        Content providers sharing the capacity (the set ``N`` or one of the
        two service classes).
    nu:
        Per-capita capacity.  Passing the capacity of a service class (e.g.
        ``kappa * nu`` for the premium class) yields that class's internal
        equilibrium, exactly as in the paper's two-class analysis.
    mechanism:
        The rate-allocation mechanism; defaults to the paper's max-min fair
        mechanism.

    Returns
    -------
    RateEquilibrium
        Equilibrium throughput/demand profile and derived surplus accessors.
    """
    if not math.isfinite(nu) or nu < 0.0:
        raise ModelValidationError(f"per-capita capacity must be >= 0, got {nu!r}")
    if mechanism is None:
        mechanism = MaxMinFairAllocation()
    if len(population) == 0:
        return _empty_equilibrium(population, nu, mechanism)
    if nu == 0.0:
        return _zero_capacity_equilibrium(population, mechanism, nu)
    if isinstance(mechanism, CommonCapAllocation):
        return _common_cap_equilibrium(population, nu, mechanism)
    thetas = fixed_point_allocation(mechanism, population, nu)
    demands = np.array([cp.demand_at(theta)
                        for cp, theta in zip(population, thetas)])
    return RateEquilibrium(population, nu, thetas, demands,
                           mechanism_name=type(mechanism).__name__)
