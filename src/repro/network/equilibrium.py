"""Rate equilibrium of a system ``(M, mu, N)`` (Theorem 1, Lemma 1).

The demand functions map achievable throughput to demand; the rate-allocation
mechanism maps fixed demands back to achievable throughput.  Their interplay
has a unique fixed point — the *rate equilibrium* — under Assumption 1 and
Axioms 1-3 (Theorem 1 of the paper).  By Axiom 4 the equilibrium depends on
consumers and capacity only through the per-capita capacity ``nu = mu / M``
(Lemma 1), so the solver works entirely in per-capita terms.

Two solution paths are provided:

* an exact path for :class:`~repro.network.allocation.CommonCapAllocation`
  mechanisms (including the paper's max-min fair mechanism): the equilibrium
  is characterised by a scalar throughput cap, found by bisection on the
  work-conservation equation of Axiom 2.  The bisection kernel is
  *vectorised over capacity targets*: it solves a whole vector of ``nu``
  values at once (:func:`solve_common_caps`), and the scalar solver simply
  calls it with a one-element grid, so the batched engine of
  :mod:`repro.simulation.batch` and the scalar path agree bit-for-bit;
* a generic damped fixed-point iteration for arbitrary mechanisms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.backends.base import KernelBackend
from repro.backends.config import SolverConfig, resolve_config
from repro.backends.reference import reference_backend
from repro.cache import LRUCache, all_cache_stats
from repro.errors import ModelValidationError
from repro.network.allocation import (
    CommonCapAllocation,
    MaxMinFairAllocation,
    RateAllocationMechanism,
    fixed_point_allocation,
)
from repro.network.provider import Population

__all__ = [
    "RateEquilibrium",
    "solve_rate_equilibrium",
    "solve_common_caps",
    "CommonCapProfile",
    "ExponentialMaxMinProfile",
    "common_cap_profile",
    "cached_subset_equilibrium",
    "cached_class_cap",
    "cached_class_cap_for_mask",
    "mechanism_cache_key",
    "default_equilibrium_cache",
    "frozen_equilibrium",
    "equilibrium_cache_stats",
    "clear_equilibrium_caches",
]

_BISECTION_ITERATIONS = 200
#: Bracket-width stopping rule (relative to the cap upper bound).
_CAP_WIDTH_TOLERANCE = 1e-14
#: Carried-load residual stopping rule (relative to the target): the
#: bisection exits as soon as the work-conservation equation is satisfied to
#: this tolerance, instead of always burning the full iteration budget.
_RESIDUAL_TOLERANCE = 1e-13
#: Slack below the unconstrained load within which a capacity counts as
#: uncongested (the bisection would otherwise chase a root at the bracket
#: edge that rounding already erased).
_UNCONGESTED_SLACK = 1e-15
#: Slack on the congestion predicate ``nu < unconstrained_load`` exposed by
#: :attr:`RateEquilibrium.is_congested`.
_CONGESTION_SLACK = 1e-12
#: Working-set bound (elements) of one vectorised ``carried`` evaluation.
#: Above it the grid is evaluated in cap-chunks so peak memory stays flat in
#: the grid size (the million-CP scaling sweep).  The bound is far above any
#: grid the paper experiments solve (n=1000 populations with <100-point
#: grids), so their float sequences — and the pinned goldens — are
#: untouched: chunking changes only the pairwise-summation grouping, and
#: only for workloads that could not run unchunked anyway.
_CARRIED_BATCH_ELEMENTS = 1 << 22


@dataclass(frozen=True)
class RateEquilibrium:
    """The unique rate equilibrium of a (sub)system at per-capita capacity ``nu``.

    Attributes
    ----------
    population:
        Providers sharing the capacity.
    nu:
        Per-capita capacity of the (sub)system.
    thetas:
        Equilibrium per-user achievable throughput ``theta_i``.
    demands:
        Equilibrium demand fractions ``d_i(theta_i)``.
    """

    population: Population
    nu: float
    thetas: np.ndarray
    demands: np.ndarray
    mechanism_name: str = "MaxMinFairAllocation"
    #: For cap-parameterised mechanisms: the common throughput cap at
    #: equilibrium (``+inf`` when the class is uncongested, ``0`` when it has
    #: no capacity).  Used by the competitive-equilibrium "throughput-taking"
    #: estimator of Definition 3.
    common_cap: float = float("inf")

    # ---------------------------------------------------------------- #
    # Derived per-capita quantities (all per consumer, i.e. divided by M).
    # ---------------------------------------------------------------- #
    @property
    def rhos(self) -> np.ndarray:
        """Per capita throughput over each CP's own user base (Equation 5)."""
        return self.demands * self.thetas

    @property
    def per_capita_rates(self) -> np.ndarray:
        """Per-consumer rate contribution ``alpha_i d_i theta_i`` of each CP."""
        return self.population.alphas * self.rhos

    @property
    def aggregate_rate(self) -> float:
        """Per-capita aggregate carried rate ``lambda_N / M``."""
        return float(np.sum(self.per_capita_rates))

    @property
    def utilization(self) -> float:
        """Fraction of the per-capita capacity carried (1.0 when congested)."""
        if self.nu <= 0.0:
            return 0.0
        return min(1.0, self.aggregate_rate / self.nu)

    @property
    def is_congested(self) -> bool:
        """True when the capacity cannot serve all unconstrained demand."""
        return (self.nu
                < self.population.unconstrained_per_capita_load - _CONGESTION_SLACK)

    @property
    def omegas(self) -> np.ndarray:
        """Fraction of unconstrained throughput achieved, ``theta_i/theta_hat_i``."""
        return self.thetas / self.population.theta_hats

    def consumer_surplus(self) -> float:
        """Per-capita consumer surplus ``Phi = sum_i phi_i alpha_i d_i theta_i``."""
        return float(np.sum(self.population.utility_rates * self.per_capita_rates))

    def provider_rate(self, index: int) -> float:
        """Per-capita rate of a single provider (by index in ``population``)."""
        return float(self.per_capita_rates[index])

    def provider_rho(self, index: int) -> float:
        """Per-user-base throughput ``rho_i`` of a single provider."""
        return float(self.rhos[index])

    def premium_revenue(self, price: float) -> float:
        """Per-capita ISP revenue if every provider here paid ``price``/unit."""
        if price < 0.0:
            raise ModelValidationError("price must be non-negative")
        return price * self.aggregate_rate

    def throughput_by_name(self) -> dict[str, float]:
        """Mapping from provider name to equilibrium ``theta_i``."""
        return dict(zip(self.population.names, map(float, self.thetas)))

    def scaled(self, consumers: float) -> dict[str, float]:
        """Absolute aggregate rates ``lambda_i`` for a consumer size ``M``."""
        if consumers < 0.0:
            raise ModelValidationError("consumer size must be non-negative")
        return {
            name: consumers * float(rate)
            for name, rate in zip(self.population.names, self.per_capita_rates)
        }


def _empty_equilibrium(population: Population, nu: float,
                       mechanism: RateAllocationMechanism) -> RateEquilibrium:
    return RateEquilibrium(
        population=population,
        nu=nu,
        thetas=np.zeros(0),
        demands=np.zeros(0),
        mechanism_name=type(mechanism).__name__,
    )


def _zero_capacity_equilibrium(population: Population,
                               mechanism: RateAllocationMechanism,
                               nu: float) -> RateEquilibrium:
    """Equilibrium when ``nu`` is zero: no throughput can be carried."""
    thetas = np.zeros(len(population))
    demands = population.demands_at(thetas)
    return RateEquilibrium(population, nu, thetas, demands,
                           mechanism_name=type(mechanism).__name__,
                           common_cap=0.0)


# --------------------------------------------------------------------------- #
# Carried-load profiles and the vectorised multi-target bisection kernel
# --------------------------------------------------------------------------- #
class CommonCapProfile:
    """Evaluates the work-conservation LHS at a *vector* of throughput caps.

    For a cap-parameterised mechanism the equilibrium cap at per-capita
    capacity ``nu`` solves ``carried(cap) = min(nu, unconstrained_load)``
    where ``carried`` is continuous and non-decreasing (Assumption 1), so a
    whole grid of ``nu`` targets can be bisected simultaneously with numpy.
    Subclasses provide :meth:`carried`; :meth:`solve_caps` is the shared
    kernel used by both the scalar and the batched equilibrium solvers.
    """

    #: Number of providers covered by the profile.
    size: int = 0
    #: Cap at which every provider reaches its unconstrained throughput.
    upper: float = 0.0
    #: ``sum_i alpha_i theta_hat_i`` for the covered providers.
    unconstrained_load: float = 0.0

    def carried(self, caps: np.ndarray) -> np.ndarray:
        """Per-capita carried load at each cap in a 1-D vector."""
        raise NotImplementedError

    def carried_scalar(self, cap: float) -> float:
        """Carried load at a single cap.

        The default delegates to the vector kernel with a one-element grid;
        subclasses may provide a dispatch-free scalar path, which must be
        bit-identical to the one-element vector evaluation.
        """
        return float(self.carried(np.array([cap]))[0])

    def carried_at_upper(self) -> float:
        """Carried load at the saturation cap, computed once per profile."""
        cached = getattr(self, "_carried_at_upper", None)
        if cached is None:
            cached = float(self.carried(np.array([self.upper]))[0])
            self._carried_at_upper = cached
        return cached

    def _carried_bounded(self, caps: np.ndarray) -> np.ndarray:
        """``carried`` with the working set bounded for huge populations.

        One tail evaluation touches ``len(caps) * size`` elements; past
        :data:`_CARRIED_BATCH_ELEMENTS` the caps are processed in chunks so
        a million-CP profile can bisect arbitrarily large capacity grids in
        flat memory.
        """
        count = len(caps)
        if self.size and count > 1 and count * self.size > _CARRIED_BATCH_ELEMENTS:
            chunk = max(1, _CARRIED_BATCH_ELEMENTS // self.size)
            return np.concatenate([self.carried(caps[start:start + chunk])
                                   for start in range(0, count, chunk)])
        return self.carried(caps)

    def solve_cap(self, nu: float,
                  residual_tolerance: float = _RESIDUAL_TOLERANCE) -> float:
        """Equilibrium cap at a single per-capita capacity (scalar path).

        A dispatch-free mirror of :meth:`solve_caps` for one target: same
        bracket, same stopping rules, same update order, evaluating
        :meth:`carried_scalar` instead of a one-element vector — so the
        returned float is bit-identical to ``solve_caps([nu])[0]``.
        """
        if self.size == 0:
            return math.inf
        if nu <= 0.0:
            return 0.0
        target = min(nu, self.unconstrained_load)
        if (nu >= self.unconstrained_load - _UNCONGESTED_SLACK
                or self.carried_at_upper() <= target + _UNCONGESTED_SLACK):
            return math.inf
        low = 0.0
        high = self.upper
        residual_tol = residual_tolerance * max(1.0, target)
        width_tol = _CAP_WIDTH_TOLERANCE * max(1.0, self.upper)
        for _ in range(_BISECTION_ITERATIONS):
            mid = 0.5 * (low + high)
            value = self.carried_scalar(mid)
            if abs(value - target) <= residual_tol:
                return mid
            if value < target:
                low = mid
            else:
                high = mid
            if high - low <= width_tol:
                return high
        return high

    def solve_caps(self, nus: np.ndarray,
                   residual_tolerance: float = _RESIDUAL_TOLERANCE
                   ) -> np.ndarray:
        """Equilibrium caps for a vector of per-capita capacities.

        Returns one cap per entry of ``nus``: ``0.0`` for ``nu <= 0``,
        ``+inf`` for uncongested capacities, and the bisected root of the
        work-conservation equation otherwise.  All grid points share each
        bisection iteration (one vectorised ``carried`` evaluation); a point
        drops out early once its carried-load residual — not merely the
        bracket width — falls below tolerance.
        """
        nus = np.asarray(nus, dtype=float)
        if nus.ndim == 1 and nus.shape[0] == 1:
            # Scalar fast path: one target needs no vector bookkeeping (and
            # the game layers' best-response loops are all single-target).
            return np.array([self.solve_cap(float(nus[0]), residual_tolerance)])
        caps = np.full(nus.shape, np.inf)
        if self.size == 0:
            return caps
        targets = np.minimum(nus, self.unconstrained_load)
        zero = nus <= 0.0
        caps[zero] = 0.0
        carried_at_upper = self.carried_at_upper()
        uncongested = (~zero) & (
            (nus >= self.unconstrained_load - _UNCONGESTED_SLACK)
            | (carried_at_upper <= targets + _UNCONGESTED_SLACK))
        active = np.nonzero(~zero & ~uncongested)[0]
        if len(active) == 0:
            return caps
        count = len(active)
        low = np.zeros(count)
        high = np.full(count, self.upper)
        target = targets[active]
        residual_tol = residual_tolerance * np.maximum(1.0, target)
        width_tol = _CAP_WIDTH_TOLERANCE * max(1.0, self.upper)
        result = np.empty(count)
        done = np.zeros(count, dtype=bool)
        for _ in range(_BISECTION_ITERATIONS):
            open_indices = np.nonzero(~done)[0]
            if len(open_indices) == 0:
                break
            mid = 0.5 * (low[open_indices] + high[open_indices])
            value = self._carried_bounded(mid)
            hit = np.abs(value - target[open_indices]) <= residual_tol[open_indices]
            hit_indices = open_indices[hit]
            result[hit_indices] = mid[hit]
            done[hit_indices] = True
            rest = open_indices[~hit]
            mid_rest = mid[~hit]
            below = value[~hit] < target[rest]
            low[rest[below]] = mid_rest[below]
            high[rest[~below]] = mid_rest[~below]
            narrow = (high[rest] - low[rest]) <= width_tol
            narrow_indices = rest[narrow]
            result[narrow_indices] = high[narrow_indices]
            done[narrow_indices] = True
        result[~done] = high[~done]
        caps[active] = result
        return caps


class GenericCapProfile(CommonCapProfile):
    """Profile for any :class:`CommonCapAllocation` over a full population."""

    def __init__(self, population: Population,
                 mechanism: CommonCapAllocation) -> None:
        self._population = population
        self._mechanism = mechanism
        self._alphas = population.alphas
        self.size = len(population)
        self.upper = mechanism.cap_upper_bound(population)
        self.unconstrained_load = population.unconstrained_per_capita_load

    def carried(self, caps: np.ndarray) -> np.ndarray:
        caps = np.asarray(caps, dtype=float)
        thetas = self._mechanism.theta_at_caps(self._population, caps)
        demands = self._population.demands_at(thetas)
        return np.sum(self._alphas * demands * thetas, axis=-1)


class ExponentialMaxMinProfile(CommonCapProfile):
    """Sorted-``theta_hat`` prefix structure for max-min + exponential demand.

    Under max-min fairness a provider with ``theta_hat_i <= cap`` is served
    at exactly ``theta_hat_i`` with demand exactly 1, so its contribution to
    the carried load is the constant ``alpha_i theta_hat_i``.  Sorting by
    ``theta_hat`` turns the saturated part of the work-conservation sum into
    a prefix-sum lookup (``searchsorted`` + ``cumsum``); only the congested
    tail needs the exponential demand of Equation (3).  One evaluation of
    ``carried`` at a G-vector of caps is a single vectorised pass instead of
    G full demand-profile recomputations.

    The numerical kernels themselves live on a pluggable
    :class:`~repro.backends.base.KernelBackend` (default: the ``reference``
    numpy backend, which is the exact implementation that used to be inlined
    here); the profile owns the sorted column arrays and the solve logic.
    """

    def __init__(self, alphas: np.ndarray, theta_hats: np.ndarray,
                 betas: np.ndarray,
                 backend: Optional[KernelBackend] = None) -> None:
        order = np.argsort(theta_hats, kind="stable")
        self._init_sorted(np.ascontiguousarray(alphas[order]),
                          np.ascontiguousarray(theta_hats[order]),
                          np.ascontiguousarray(betas[order]),
                          backend)

    @classmethod
    def from_sorted(cls, alphas: np.ndarray, theta_hats: np.ndarray,
                    betas: np.ndarray,
                    backend: Optional[KernelBackend] = None
                    ) -> "ExponentialMaxMinProfile":
        """Profile from arrays already in stable ``theta_hat`` order.

        Used by the subset-profile cache: filtering a parent population's
        stable sort order by a class mask yields exactly the arrays the
        constructor's own stable argsort would produce (subset indices are
        ascending, so ties resolve identically), without re-sorting per
        class.
        """
        self = object.__new__(cls)
        self._init_sorted(np.ascontiguousarray(alphas),
                          np.ascontiguousarray(theta_hats),
                          np.ascontiguousarray(betas),
                          backend)
        return self

    def _init_sorted(self, alphas: np.ndarray, theta_hats: np.ndarray,
                     betas: np.ndarray,
                     backend: Optional[KernelBackend] = None) -> None:
        self._backend = backend if backend is not None else reference_backend()
        self._theta_hats = theta_hats
        self._alphas = alphas
        self._betas = betas
        self._prefix = np.concatenate(
            ([0.0], np.cumsum(self._alphas * self._theta_hats)))
        self.size = len(self._theta_hats)
        self.upper = float(self._theta_hats[-1]) if self.size else 0.0
        self.unconstrained_load = float(self._prefix[-1])
        # Scalar-kernel scratch: ``-beta`` is precomputed (multiplying by the
        # negated factor is bit-identical to negating the product) and the
        # tail buffer is reused across the ~50 bisection evaluations of a
        # ``solve_cap`` call, avoiding five allocations per evaluation.
        self._neg_betas = -self._betas
        self._scratch = np.empty(self.size)

    def carried_at_upper(self) -> float:
        # At the saturation cap every provider is saturated: searchsorted
        # (side="right") counts all of them, the tail sum is empty, and the
        # vector kernel returns exactly ``prefix[-1]``.
        return self.unconstrained_load

    def carried_scalar(self, cap: float) -> float:
        """Scalar twin of :meth:`carried` (see the backend's contract).

        On the reference backend the result is bit-identical to the
        one-element vector path; other backends agree to ``<= 1e-10``.
        """
        return self._backend.carried_scalar(self, cap)

    def carried(self, caps: np.ndarray) -> np.ndarray:
        caps = np.asarray(caps, dtype=float)
        return self._backend.carried_grid(self, caps)

    def solve_cap(self, nu: float,
                  residual_tolerance: float = _RESIDUAL_TOLERANCE) -> float:
        """Scalar solve, using the backend's fused bisection when it has one.

        The guards and the bisection parameters mirror
        :meth:`CommonCapProfile.solve_cap` exactly; backends without a fused
        kernel (the reference backend) fall through to the generic loop over
        :meth:`carried_scalar`.
        """
        bisect = self._backend.bisect_scalar
        if bisect is None:
            return super().solve_cap(nu, residual_tolerance)
        if self.size == 0:
            return math.inf
        if nu <= 0.0:
            return 0.0
        target = min(nu, self.unconstrained_load)
        if (nu >= self.unconstrained_load - _UNCONGESTED_SLACK
                or self.carried_at_upper() <= target + _UNCONGESTED_SLACK):
            return math.inf
        return float(bisect(self, target, _BISECTION_ITERATIONS,
                            residual_tolerance * max(1.0, target),
                            _CAP_WIDTH_TOLERANCE * max(1.0, self.upper)))


def common_cap_profile(population: Population,
                       mechanism: CommonCapAllocation,
                       config: Optional[SolverConfig] = None
                       ) -> CommonCapProfile:
    """The fastest applicable carried-load profile for a population.

    The max-min + all-exponential fast path (the paper's workload) is cached
    on the population — one profile per kernel backend, so reference- and
    numba-backed profiles never alias; everything else gets the generic
    profile.  The choice is a function of (population, mechanism, backend)
    only, so the scalar and batched solvers always agree on the numerics.
    """
    if type(mechanism) is MaxMinFairAllocation:
        backend = resolve_config(config).backend_instance()
        profiles = getattr(population, "_exp_maxmin_profiles", None)
        if profiles is not None and backend.name in profiles:
            return profiles[backend.name]
        parameters = population.exponential_parameters
        if parameters is not None:
            profile = ExponentialMaxMinProfile(population.alphas, *parameters,
                                               backend=backend)
            if profiles is None:
                profiles = {}
                population._exp_maxmin_profiles = profiles  # type: ignore[attr-defined]
            profiles[backend.name] = profile
            return profile
    return GenericCapProfile(population, mechanism)


def solve_common_caps(population: Population, nus: Sequence[float],
                      mechanism: CommonCapAllocation,
                      config: Optional[SolverConfig] = None
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Equilibria of a cap-parameterised mechanism at a vector of capacities.

    Returns ``(caps, thetas, demands)`` with shapes ``(G,)``, ``(G, n)`` and
    ``(G, n)``; ``caps`` is ``+inf`` at uncongested points and ``0`` where
    ``nu <= 0``.  This is the exact Theorem-1 solution at every grid point,
    computed with one shared vectorised bisection.
    """
    config = resolve_config(config)
    nus_arr = np.asarray(nus, dtype=float)
    profile = common_cap_profile(population, mechanism, config)
    caps = profile.solve_caps(nus_arr,
                              residual_tolerance=config.bisection_tolerance)
    if len(population) == 0:
        empty = np.zeros((len(nus_arr), 0))
        return caps, empty, empty
    evaluation_caps = np.where(np.isfinite(caps), caps, profile.upper)
    thetas = mechanism.theta_at_caps(population, evaluation_caps)
    demands = population.demands_at(thetas)
    return caps, thetas, demands


def _common_cap_equilibrium(population: Population, nu: float,
                            mechanism: CommonCapAllocation,
                            config: Optional[SolverConfig] = None
                            ) -> RateEquilibrium:
    """Exact equilibrium for cap-parameterised mechanisms.

    The equilibrium profile is ``theta_i = theta_i(cap)`` where the cap solves
    the work-conservation equation
    ``sum_i alpha_i d_i(theta_i(cap)) theta_i(cap) = min(nu, sum_i alpha_i theta_hat_i)``.
    The left side is continuous and non-decreasing in the cap (demands are
    non-decreasing in throughput by Assumption 1), so bisection finds the
    unique solution of Theorem 1.  Delegates to the vectorised kernel with a
    one-element grid, guaranteeing scalar/batch equivalence.
    """
    caps, thetas, demands = solve_common_caps(population, (nu,), mechanism,
                                              config)
    return RateEquilibrium(population, nu, thetas[0], demands[0],
                           mechanism_name=type(mechanism).__name__,
                           common_cap=float(caps[0]))


def solve_rate_equilibrium(population: Population, nu: float,
                           mechanism: Optional[RateAllocationMechanism] = None,
                           config: Optional[SolverConfig] = None,
                           ) -> RateEquilibrium:
    """Compute the unique rate equilibrium of ``(M, mu, N)`` at ``nu = mu/M``.

    Parameters
    ----------
    population:
        Content providers sharing the capacity (the set ``N`` or one of the
        two service classes).
    nu:
        Per-capita capacity.  Passing the capacity of a service class (e.g.
        ``kappa * nu`` for the premium class) yields that class's internal
        equilibrium, exactly as in the paper's two-class analysis.
    mechanism:
        The rate-allocation mechanism; defaults to the paper's max-min fair
        mechanism.
    config:
        Solver configuration (kernel backend + bisection tolerance);
        ``None`` uses the ambient/default config.

    Returns
    -------
    RateEquilibrium
        Equilibrium throughput/demand profile and derived surplus accessors.
    """
    if not math.isfinite(nu) or nu < 0.0:
        raise ModelValidationError(f"per-capita capacity must be >= 0, got {nu!r}")
    if mechanism is None:
        mechanism = MaxMinFairAllocation()
    if len(population) == 0:
        return _empty_equilibrium(population, nu, mechanism)
    if nu == 0.0:
        return _zero_capacity_equilibrium(population, mechanism, nu)
    if isinstance(mechanism, CommonCapAllocation):
        return _common_cap_equilibrium(population, nu, mechanism, config)
    thetas = fixed_point_allocation(mechanism, population, nu)
    demands = population.demands_at(thetas)
    return RateEquilibrium(population, nu, thetas, demands,
                           mechanism_name=type(mechanism).__name__)


# --------------------------------------------------------------------------- #
# Equilibrium cache and service-class (subset) fast paths
# --------------------------------------------------------------------------- #
# Populations are immutable and mechanisms are keyed by value
# (``RateAllocationMechanism.cache_key``), so a cached equilibrium can never
# go stale: entries are only ever dropped by LRU eviction or an explicit
# ``clear_equilibrium_caches()``.  The game layer (monopoly/duopoly/CP-game
# best-response passes) re-solves the same (class, capacity) equilibria many
# times over; these caches turn those re-solves into lookups.
_DEFAULT_MECHANISM = MaxMinFairAllocation()
_EQUILIBRIUM_CACHE = LRUCache(maxsize=2048, name="equilibria")
_CLASS_CAP_CACHE = LRUCache(maxsize=16384, name="class_caps")
#: Per-class sorted-prefix profiles (max-min + exponential fast path).  One
#: profile serves *every* capacity the class is solved at — the capacity
#: axis of the duopoly/migration best-response loops re-bisects the same
#: class at many ``nu`` values, and the profile is the nu-independent part.
_PROFILE_CACHE = LRUCache(maxsize=1024, name="maxmin_profiles")


def default_equilibrium_cache() -> LRUCache:
    """The shared full/subset-equilibrium cache (for pre-seeding)."""
    return _EQUILIBRIUM_CACHE


def mechanism_cache_key(mechanism: Optional[RateAllocationMechanism],
                        ) -> tuple[Any, ...]:
    """Cache key of ``mechanism`` (``None`` means the default max-min)."""
    if mechanism is None:
        return _DEFAULT_MECHANISM.cache_key()
    return mechanism.cache_key()


def frozen_equilibrium(equilibrium: RateEquilibrium) -> RateEquilibrium:
    """A copy of ``equilibrium`` whose arrays are detached and read-only.

    Entries that enter a shared cache must not alias writable solver
    buffers: batch solves hand out row *views* of the whole ``(G, n)``
    grid matrices, so an aliased entry would both pin the grid's memory
    and let any caller mutate what every later cache hit observes.
    """
    thetas = np.array(equilibrium.thetas)
    demands = np.array(equilibrium.demands)
    thetas.flags.writeable = False
    demands.flags.writeable = False
    return RateEquilibrium(
        population=equilibrium.population, nu=equilibrium.nu,
        thetas=thetas, demands=demands,
        mechanism_name=equilibrium.mechanism_name,
        common_cap=equilibrium.common_cap)


def _indices_key(population: Population,
                 indices: Optional[Sequence[int]]) -> Optional[tuple[int, ...]]:
    """Normalised subset indices: ``None`` stands for the full population."""
    if indices is None:
        return None
    normalized = tuple(sorted({int(i) for i in indices}))
    if len(normalized) == len(population):
        return None
    return normalized


def _subset_mask(population: Population,
                 subset_key: Optional[tuple[int, ...]]) -> Optional[np.ndarray]:
    """Boolean membership mask of a class (``None`` = full population)."""
    if subset_key is None:
        return None
    mask = np.zeros(len(population), dtype=bool)
    mask[list(subset_key)] = True
    return mask


def _subset_cache_key(population: Population,
                      subset_key: Optional[tuple[int, ...]]) -> Optional[bytes]:
    """Compact, exact cache representation of a class's index set.

    A packed bitmask over the population: ~n/8 bytes instead of an n-int
    tuple.  The CP-game best-response passes generate thousands of distinct
    masks per sweep, so the key size — not the cached float — dominates the
    class-cap cache's memory footprint.
    """
    mask = _subset_mask(population, subset_key)
    if mask is None:
        return None
    return np.packbits(mask).tobytes()


def _maxmin_order(population: Population) -> np.ndarray:
    """Stable ``theta_hat`` sort order of the population, cached on it."""
    order = getattr(population, "_maxmin_order_cache", None)
    if order is None:
        order = np.argsort(population.theta_hats, kind="stable")
        order.flags.writeable = False
        population._maxmin_order_cache = order  # type: ignore[attr-defined]
    return order


def _subset_profile(population: Population, mask: np.ndarray,
                    mask_bytes: bytes,
                    config: SolverConfig) -> ExponentialMaxMinProfile:
    """Cached sorted-prefix profile of one service class.

    Requires ``population.exponential_parameters`` to be non-``None``.  The
    class's sorted arrays are obtained by filtering the parent's cached
    stable sort order with the membership mask — identical floats, in the
    identical order, to stable-argsorting the subset itself.  Profiles are
    cached per kernel backend (the profile embeds one).
    """
    backend = config.backend_instance()

    def build() -> ExponentialMaxMinProfile:
        theta_hats, betas = population.exponential_parameters
        order = _maxmin_order(population)
        sub_order = order[mask[order]]
        return ExponentialMaxMinProfile.from_sorted(
            population.alphas[sub_order], theta_hats[sub_order],
            betas[sub_order], backend=backend)

    if config.cache_policy == "bypass":
        return build()
    return _PROFILE_CACHE.get_or_compute(
        (population, mask_bytes, config.cache_key()), build)


def cached_subset_equilibrium(population: Population,
                              indices: Optional[Sequence[int]],
                              nu: float,
                              mechanism: Optional[RateAllocationMechanism] = None,
                              cache: Optional[LRUCache] = None,
                              config: Optional[SolverConfig] = None
                              ) -> RateEquilibrium:
    """Memoised rate equilibrium of a sub-population selected by index.

    ``indices=None`` (or the full index set) solves the whole population.
    Results are bit-identical to ``solve_rate_equilibrium`` on
    ``population.subset(indices)``; the cache key is
    ``(population, sorted indices, nu, mechanism.cache_key(),
    config.cache_key())`` — entries computed under different backends or
    tolerances never alias.  ``cache_policy="bypass"`` solves directly
    without touching the cache.
    """
    config = resolve_config(config)
    cache = _EQUILIBRIUM_CACHE if cache is None else cache
    subset_key = _indices_key(population, indices)
    key = (population, _subset_cache_key(population, subset_key), float(nu),
           mechanism_cache_key(mechanism), config.cache_key())

    def solve() -> RateEquilibrium:
        members = (population if subset_key is None
                   else population.subset(subset_key))
        return frozen_equilibrium(solve_rate_equilibrium(
            members, nu,
            mechanism if mechanism is not None else _DEFAULT_MECHANISM,
            config))

    if config.cache_policy == "bypass":
        return solve()
    return cache.get_or_compute(key, solve)  # type: ignore[return-value]


def cached_class_cap(population: Population,
                     indices: Optional[Sequence[int]],
                     nu: float,
                     mechanism: Optional[RateAllocationMechanism] = None,
                     cache: Optional[LRUCache] = None,
                     config: Optional[SolverConfig] = None) -> float:
    """Equilibrium common throughput cap of a service class, memoised.

    Index-sequence convenience wrapper around
    :func:`cached_class_cap_for_mask`; both share the same cache entries
    (the key is the packed membership bitmask either way).
    """
    subset_key = _indices_key(population, indices)
    return cached_class_cap_for_mask(population,
                                     _subset_mask(population, subset_key),
                                     nu, mechanism, cache, config)


def cached_class_cap_for_mask(population: Population,
                              mask: Optional[np.ndarray],
                              nu: float,
                              mechanism: Optional[RateAllocationMechanism] = None,
                              cache: Optional[LRUCache] = None,
                              config: Optional[SolverConfig] = None) -> float:
    """Class cap memoised by boolean membership mask (the hot-loop form).

    ``mask`` is a boolean array over the parent population (``None`` — or an
    all-true mask — means the full population).  For the paper's workload
    (max-min fairness, exponential demand) the cap is bisected on the
    class's cached sorted-prefix profile, built from column views of the
    parent — no ``Population`` object, index tuple or argsort per call,
    which is what makes the CP-game best-response inner loop cheap.  The
    value equals ``cached_subset_equilibrium(...).common_cap`` exactly
    (both run the same bisection kernel on the same floats).
    """
    mechanism = mechanism if mechanism is not None else _DEFAULT_MECHANISM
    config = resolve_config(config)
    cache = _CLASS_CAP_CACHE if cache is None else cache
    if mask is not None and mask.all():
        mask = None
    mask_bytes = None if mask is None else np.packbits(mask).tobytes()
    key = (population, mask_bytes, float(nu), mechanism_cache_key(mechanism),
           config.cache_key())

    def solve() -> float:
        parameters = population.exponential_parameters
        if type(mechanism) is MaxMinFairAllocation and parameters is not None:
            if mask is None:
                profile = common_cap_profile(population, mechanism, config)
            else:
                profile = _subset_profile(population, mask, mask_bytes, config)
            return profile.solve_cap(
                float(nu), residual_tolerance=config.bisection_tolerance)
        indices = None if mask is None else np.nonzero(mask)[0]
        return float(cached_subset_equilibrium(population, indices, nu,
                                               mechanism,
                                               config=config).common_cap)

    if config.cache_policy == "bypass":
        return solve()
    return cache.get_or_compute(key, solve)  # type: ignore[return-value]


def equilibrium_cache_stats() -> dict[str, dict[str, Any]]:
    """Hit/miss counters of the two solver caches (for benchmark reports).

    A filtered view of :func:`repro.cache.all_cache_stats` — both caches
    self-register there under the names used here.
    """
    stats = all_cache_stats()
    return {name: stats[name] for name in ("equilibria", "class_caps")}


def clear_equilibrium_caches() -> None:
    """Drop every cached equilibrium, class cap and profile (frees memory)."""
    _EQUILIBRIUM_CACHE.clear()
    _CLASS_CAP_CACHE.clear()
    _PROFILE_CACHE.clear()
