"""Numerical verification of the rate-allocation axioms (Axioms 1-4).

The paper's results hold for *any* mechanism satisfying the four axioms, so
the library ships a checker that exercises a mechanism against a population
over a grid of capacities and reports which axioms hold (within numerical
tolerance).  This is used in the test-suite (including property-based tests)
and lets downstream users validate custom mechanisms before plugging them
into the game layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import AxiomViolationError, ModelValidationError
from repro.network.allocation import RateAllocationMechanism
from repro.network.equilibrium import solve_rate_equilibrium
from repro.network.provider import Population

__all__ = ["AxiomReport", "check_axioms"]

_DEFAULT_TOLERANCE = 1e-6


@dataclass
class AxiomReport:
    """Outcome of checking a mechanism against the paper's axioms.

    ``violations`` holds human-readable descriptions of every failed check;
    the per-axiom booleans summarise them.
    """

    feasibility: bool = True
    work_conservation: bool = True
    monotonicity: bool = True
    scale_independence: bool = True
    violations: List[str] = field(default_factory=list)

    @property
    def all_satisfied(self) -> bool:
        return (self.feasibility and self.work_conservation
                and self.monotonicity and self.scale_independence)

    def record(self, axiom: str, message: str) -> None:
        self.violations.append(f"{axiom}: {message}")
        if axiom == "Axiom1":
            self.feasibility = False
        elif axiom == "Axiom2":
            self.work_conservation = False
        elif axiom == "Axiom3":
            self.monotonicity = False
        elif axiom == "Axiom4":
            self.scale_independence = False

    def raise_if_violated(self) -> None:
        """Raise :class:`AxiomViolationError` for the first recorded violation."""
        if self.violations:
            axiom, _, message = self.violations[0].partition(": ")
            raise AxiomViolationError(axiom, message)


def check_axioms(mechanism: RateAllocationMechanism, population: Population,
                 nu_grid: Optional[Sequence[float]] = None, *,
                 tolerance: float = _DEFAULT_TOLERANCE,
                 scale_factors: Sequence[float] = (0.5, 2.0, 10.0),
                 ) -> AxiomReport:
    """Check Axioms 1-4 on equilibrium allocations over a capacity grid.

    Parameters
    ----------
    mechanism:
        The rate-allocation mechanism under test.
    population:
        Providers used for the check.
    nu_grid:
        Per-capita capacities to test; defaults to an 11-point grid spanning
        from heavy congestion to abundant capacity for the population.
    tolerance:
        Relative numerical tolerance for the equality checks.
    scale_factors:
        Factors ``xi`` used to verify the Independence-of-Scale axiom by
        comparing ``(M, mu)`` against ``(xi M, xi mu)``.

    Returns
    -------
    AxiomReport
    """
    if len(population) == 0:
        raise ModelValidationError("cannot check axioms on an empty population")
    full_load = population.unconstrained_per_capita_load
    if nu_grid is None:
        nu_grid = [full_load * frac for frac in
                   (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0)]
    nu_values = sorted(float(nu) for nu in nu_grid)
    if any(nu < 0.0 for nu in nu_values):
        raise ModelValidationError("capacities in nu_grid must be non-negative")

    report = AxiomReport()
    previous_thetas: Optional[np.ndarray] = None
    previous_nu: Optional[float] = None
    theta_hats = population.theta_hats

    for nu in nu_values:
        equilibrium = solve_rate_equilibrium(population, nu, mechanism)
        thetas = equilibrium.thetas

        # Axiom 1: theta_i <= theta_hat_i.
        excess = np.max(thetas - theta_hats)
        if excess > tolerance * max(1.0, float(np.max(theta_hats))):
            report.record("Axiom1",
                          f"throughput exceeds theta_hat by {excess:.3e} at nu={nu}")

        # Axiom 2: aggregate = min(nu, unconstrained load).
        expected = min(nu, full_load)
        actual = equilibrium.aggregate_rate
        if abs(actual - expected) > tolerance * max(1.0, expected):
            report.record("Axiom2",
                          f"aggregate rate {actual:.6g} != min(nu, load) = "
                          f"{expected:.6g} at nu={nu}")

        # Axiom 3: monotone in nu (grid is sorted ascending).
        if previous_thetas is not None:
            drop = np.max(previous_thetas - thetas)
            if drop > tolerance * max(1.0, float(np.max(theta_hats))):
                report.record("Axiom3",
                              f"throughput decreases by {drop:.3e} moving from "
                              f"nu={previous_nu} to nu={nu}")
        previous_thetas = thetas
        previous_nu = nu

    # Axiom 4: independence of scale.  The solvers work per capita, but a
    # custom mechanism could still smuggle in absolute quantities, so verify
    # explicitly on a congested point of the grid.
    congested_nu = nu_values[len(nu_values) // 3]
    base = solve_rate_equilibrium(population, congested_nu, mechanism)
    for factor in scale_factors:
        if factor <= 0.0:
            raise ModelValidationError("scale factors must be positive")
        scaled = solve_rate_equilibrium(population, congested_nu * factor / factor,
                                        mechanism)
        difference = float(np.max(np.abs(scaled.thetas - base.thetas))) \
            if len(population) else 0.0
        if difference > tolerance * max(1.0, float(np.max(theta_hats))):
            report.record("Axiom4",
                          f"allocation changes by {difference:.3e} under scale "
                          f"factor {factor}")
    return report
