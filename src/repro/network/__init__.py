"""Rate-allocation substrate of the three-party ecosystem model.

This subpackage implements Section II of the paper: throughput-sensitive
demand functions (Assumption 1), content-provider parameterisation,
axiomatic rate-allocation mechanisms (Axioms 1-4), the unique rate
equilibrium of Theorem 1 and its per-capita reduction (Lemma 1), and the
two-class (ordinary/premium) bottleneck-link model used by the games in
:mod:`repro.core`.
"""

from repro.network.demand import (
    ConstantElasticityDemand,
    DemandFunction,
    ExponentialSensitivityDemand,
    LinearDemand,
    PiecewiseLinearDemand,
    SigmoidDemand,
    StepDemand,
    UnitDemand,
    validate_demand_function,
)
from repro.network.provider import ContentProvider, Population
from repro.network.allocation import (
    AlphaFairAllocation,
    MaxMinFairAllocation,
    ProportionalFairAllocation,
    ProportionalToDemandAllocation,
    RateAllocationMechanism,
    StrictPriorityAllocation,
    WeightedFairAllocation,
)
from repro.network.equilibrium import RateEquilibrium, solve_rate_equilibrium
from repro.network.system import NetworkSystem, ServiceClassOutcome
from repro.network.link import BottleneckLink, ServiceClassSpec, TwoClassLink
from repro.network.axioms import AxiomReport, check_axioms

__all__ = [
    # demand
    "DemandFunction",
    "ExponentialSensitivityDemand",
    "LinearDemand",
    "StepDemand",
    "UnitDemand",
    "SigmoidDemand",
    "PiecewiseLinearDemand",
    "ConstantElasticityDemand",
    "validate_demand_function",
    # providers
    "ContentProvider",
    "Population",
    # allocation
    "RateAllocationMechanism",
    "MaxMinFairAllocation",
    "ProportionalFairAllocation",
    "AlphaFairAllocation",
    "WeightedFairAllocation",
    "ProportionalToDemandAllocation",
    "StrictPriorityAllocation",
    # equilibrium
    "RateEquilibrium",
    "solve_rate_equilibrium",
    # system
    "NetworkSystem",
    "ServiceClassOutcome",
    "BottleneckLink",
    "TwoClassLink",
    "ServiceClassSpec",
    # axioms
    "AxiomReport",
    "check_axioms",
]
