"""Bottleneck-link and service-class models (Section III-A).

The paper's non-neutral ISP splits its last-mile bottleneck of capacity
``mu`` into an *ordinary* class with capacity ``(1 - kappa) mu`` (free to
CPs) and a *premium* class with capacity ``kappa mu`` charged at ``c`` per
unit of traffic — a Paris-Metro-Pricing style two-class discipline.  This
module provides the small value classes describing links and their class
structure; the game layer combines them with populations and strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ModelValidationError

__all__ = ["BottleneckLink", "ServiceClassSpec", "TwoClassLink",
           "ORDINARY_CLASS", "PREMIUM_CLASS"]

#: Canonical class names used across the package.
ORDINARY_CLASS = "ordinary"
PREMIUM_CLASS = "premium"


@dataclass(frozen=True)
class BottleneckLink:
    """A last-mile bottleneck link shared by all flows towards the consumers.

    ``capacity`` is the absolute capacity ``mu``; per-capita capacity is
    obtained by dividing by the consumer size served through the link.
    """

    capacity: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.capacity) or self.capacity < 0.0:
            raise ModelValidationError(
                f"link capacity must be non-negative and finite, got {self.capacity!r}"
            )

    def per_capita(self, consumers: float) -> float:
        """Per-capita capacity ``nu = mu / M`` (Axiom 4's invariant)."""
        if consumers <= 0.0:
            raise ModelValidationError("consumer size must be positive")
        return self.capacity / consumers

    def scaled(self, factor: float) -> "BottleneckLink":
        """Link with capacity scaled by ``factor`` (used in Axiom 4 checks)."""
        if factor <= 0.0:
            raise ModelValidationError("scale factor must be positive")
        return BottleneckLink(self.capacity * factor)


@dataclass(frozen=True)
class ServiceClassSpec:
    """One service class of a (possibly) differentiated link.

    Attributes
    ----------
    name:
        Class identifier (``"ordinary"`` or ``"premium"`` for the paper's
        two-class model).
    capacity_share:
        Fraction of the link capacity devoted to this class.
    price:
        Per-unit-traffic charge levied on CPs that join this class.
    """

    name: str
    capacity_share: float
    price: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelValidationError("service class needs a non-empty name")
        if not 0.0 <= self.capacity_share <= 1.0:
            raise ModelValidationError(
                f"capacity_share must lie in [0, 1], got {self.capacity_share!r}"
            )
        if not math.isfinite(self.price) or self.price < 0.0:
            raise ModelValidationError(
                f"price must be non-negative and finite, got {self.price!r}"
            )

    def capacity(self, link: BottleneckLink) -> float:
        """Absolute capacity of this class on the given link."""
        return self.capacity_share * link.capacity

    def per_capita_capacity(self, nu: float) -> float:
        """Per-capita capacity of this class given the link's total ``nu``."""
        if nu < 0.0:
            raise ModelValidationError("per-capita capacity must be non-negative")
        return self.capacity_share * nu


@dataclass(frozen=True)
class TwoClassLink:
    """The paper's PMP-style two-class split of a bottleneck link.

    ``kappa`` of the capacity forms the premium class priced at
    ``premium_price``; the remainder forms the free ordinary class.
    """

    link: BottleneckLink
    kappa: float
    premium_price: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.kappa <= 1.0:
            raise ModelValidationError(
                f"kappa must lie in [0, 1], got {self.kappa!r}"
            )
        if not math.isfinite(self.premium_price) or self.premium_price < 0.0:
            raise ModelValidationError(
                f"premium_price must be non-negative, got {self.premium_price!r}"
            )

    @property
    def ordinary(self) -> ServiceClassSpec:
        """The free ordinary class with capacity share ``1 - kappa``."""
        return ServiceClassSpec(ORDINARY_CLASS, 1.0 - self.kappa, 0.0)

    @property
    def premium(self) -> ServiceClassSpec:
        """The charged premium class with capacity share ``kappa``."""
        return ServiceClassSpec(PREMIUM_CLASS, self.kappa, self.premium_price)

    @property
    def classes(self) -> Tuple[ServiceClassSpec, ServiceClassSpec]:
        return (self.ordinary, self.premium)

    @property
    def is_neutral(self) -> bool:
        """True when the split carries no paid prioritisation.

        A link is effectively neutral when there is no premium capacity
        (``kappa = 0``) or the premium class is free (``price = 0``).
        """
        return self.kappa == 0.0 or self.premium_price == 0.0
