"""Throughput-sensitive demand functions (Section II-A of the paper).

A demand function ``d_i(theta)`` gives the fraction of content provider
``i``'s user base that still demands content when the achievable per-user
throughput is ``theta``.  Assumption 1 of the paper requires every demand
function to be non-negative, continuous, non-decreasing on
``[0, theta_hat]`` and to satisfy ``d(theta_hat) = 1``.

The paper's numerical sections use the exponential-sensitivity family of
Equation (3),

    d_i(theta) = exp(-beta_i * (theta_hat_i / theta - 1)),

parameterised by the throughput sensitivity ``beta_i``.  This module
implements that family plus several other Assumption-1-compliant families
(linear, step/threshold, sigmoid, piecewise-linear, constant-elasticity)
that are useful for testing the axiomatic machinery and for modelling
application classes beyond the paper's three archetypes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelValidationError

__all__ = [
    "DemandFunction",
    "ExponentialSensitivityDemand",
    "LinearDemand",
    "StepDemand",
    "UnitDemand",
    "SigmoidDemand",
    "PiecewiseLinearDemand",
    "ConstantElasticityDemand",
    "validate_demand_function",
]

#: Fraction of ``theta_hat`` at which the generic zero-throughput demand
#: limit is probed numerically.
_ZERO_LIMIT_SCALE = 1e-12

#: Slack allowed on the piecewise-linear endpoint condition ``(1.0, 1.0)``.
_ENDPOINT_TOLERANCE = 1e-12


class DemandFunction(ABC):
    """Abstract base class for demand functions satisfying Assumption 1.

    Concrete subclasses must implement :meth:`evaluate` on the open interval
    ``(0, theta_hat]``; the base class handles clamping (``theta <= 0`` maps
    to the limiting demand at zero, ``theta >= theta_hat`` maps to ``1``) so
    that every instance is a total function on ``[0, +inf)``.
    """

    def __init__(self, theta_hat: float) -> None:
        if not math.isfinite(theta_hat) or theta_hat <= 0.0:
            raise ModelValidationError(
                f"theta_hat must be a positive finite number, got {theta_hat!r}"
            )
        self._theta_hat = float(theta_hat)

    @property
    def theta_hat(self) -> float:
        """Unconstrained per-user throughput (the domain's right endpoint)."""
        return self._theta_hat

    @abstractmethod
    def evaluate(self, theta: float) -> float:
        """Demand at a throughput ``theta`` in ``(0, theta_hat]``."""

    def demand_at_zero(self) -> float:
        """Limit of the demand as throughput approaches zero.

        The default takes a numerical limit; subclasses with a closed form
        (e.g. the exponential family, whose limit is ``0``) override this.
        """
        return self.evaluate(self._theta_hat * _ZERO_LIMIT_SCALE)

    def __call__(self, theta: float) -> float:
        if theta != theta:  # NaN guard
            raise ModelValidationError("throughput must not be NaN")
        if theta <= 0.0:
            return self.demand_at_zero()
        if theta >= self._theta_hat:
            return 1.0
        value = self.evaluate(theta)
        # Numerical noise protection: demand is a fraction of users.
        return min(1.0, max(0.0, value))

    # -- vectorised evaluation --------------------------------------------
    def evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        """Vectorised total evaluation: the array counterpart of ``__call__``.

        Applies the same clamping as the scalar path (``theta <= 0`` maps to
        the zero-throughput limit, ``theta >= theta_hat`` maps to ``1``) and
        delegates the interior to the family's closed form
        (:meth:`_evaluate_array`).  Accepts arrays of any shape.
        """
        thetas = np.asarray(thetas, dtype=float)
        if np.isnan(thetas).any():
            raise ModelValidationError("throughput must not be NaN")
        result = np.empty(thetas.shape, dtype=float)
        low = thetas <= 0.0
        high = thetas >= self._theta_hat
        result[low] = self.demand_at_zero()
        result[high] = 1.0
        interior = ~(low | high)
        if np.any(interior):
            values = np.asarray(self._evaluate_array(thetas[interior]), dtype=float)
            result[interior] = np.clip(values, 0.0, 1.0)
        return result

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        """Closed-form demand on a 1-D array of interior throughputs.

        The fallback evaluates the scalar form pointwise; every shipped
        family overrides this with a true vectorised expression.
        """
        return np.array([self.evaluate(float(theta)) for theta in thetas])

    # -- batched multi-function evaluation ---------------------------------
    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        """Precompute whatever :meth:`batch_evaluate_packed` needs.

        Populations cache the packed form per demand family so that repeated
        demand evaluations (the equilibrium solvers' hot loop) do not re-read
        per-instance attributes.  The generic pack is just the instances.
        """
        return tuple(functions)

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        """Demands of ``k`` same-family functions at ``(..., k)`` throughputs.

        ``thetas[..., j]`` is evaluated by the ``j``-th packed function; the
        result has the same shape.  The generic implementation loops over
        functions (vectorising only across the leading axes); families with
        closed forms override it with a fully array-level kernel.
        """
        functions = packed  # type: ignore[assignment]
        thetas = np.asarray(thetas, dtype=float)
        out = np.empty(thetas.shape, dtype=float)
        for j, function in enumerate(functions):  # type: ignore[arg-type]
            out[..., j] = function.evaluate_array(thetas[..., j])
        return out

    @classmethod
    def batch_evaluate(cls, functions: Sequence["DemandFunction"],
                       thetas: np.ndarray) -> np.ndarray:
        """Convenience wrapper: pack and evaluate in one call."""
        return cls.batch_evaluate_packed(cls.pack_parameters(functions), thetas)

    def throughput_fraction(self, omega: float) -> float:
        """Demand expressed against ``omega = theta / theta_hat`` (Figure 2)."""
        return self(omega * self._theta_hat)

    def offered_load(self, theta: float) -> float:
        """Per-user offered load ``d(theta) * theta`` (the paper's ``rho`` before
        the popularity weight ``alpha_i`` is applied)."""
        return self(theta) * min(theta, self._theta_hat)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(theta_hat={self._theta_hat!r})"


class ExponentialSensitivityDemand(DemandFunction):
    """The paper's Equation (3): ``d(theta) = exp(-beta (theta_hat/theta - 1))``.

    ``beta`` is the throughput sensitivity: large values model real-time
    applications (Skype, Netflix) whose users abandon the service quickly as
    soon as throughput degrades; small values model elastic applications
    (web search) whose users tolerate heavy congestion.
    """

    def __init__(self, theta_hat: float, beta: float) -> None:
        super().__init__(theta_hat)
        if not math.isfinite(beta) or beta < 0.0:
            raise ModelValidationError(
                f"beta must be a non-negative finite number, got {beta!r}"
            )
        self.beta = float(beta)

    def evaluate(self, theta: float) -> float:
        congestion = self._theta_hat / theta - 1.0
        return math.exp(-self.beta * congestion)

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        return np.exp(-self.beta * (self._theta_hat / thetas - 1.0))

    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        theta_hats = np.array([f.theta_hat for f in functions], dtype=float)
        betas = np.array([f.beta for f in functions], dtype=float)  # type: ignore[attr-defined]
        return theta_hats, betas

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        theta_hats, betas = packed  # type: ignore[misc]
        thetas = np.asarray(thetas, dtype=float)
        clipped = np.minimum(thetas, theta_hats)
        positive = clipped > 0.0
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            congestion = np.where(
                positive, theta_hats / np.where(positive, clipped, 1.0) - 1.0, np.inf)
            demands = np.exp(-betas * congestion)
        # theta <= 0: demand limit is 1 for beta == 0 and 0 otherwise.
        zero_limit = (betas == 0.0).astype(float)
        demands = np.where(positive, demands, zero_limit)
        demands = np.where(clipped >= theta_hats, 1.0, demands)
        return np.clip(demands, 0.0, 1.0)

    def demand_at_zero(self) -> float:
        return 1.0 if self.beta == 0.0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExponentialSensitivityDemand(theta_hat={self._theta_hat!r}, "
            f"beta={self.beta!r})"
        )


class LinearDemand(DemandFunction):
    """Demand that rises linearly from ``floor`` at zero throughput to 1."""

    def __init__(self, theta_hat: float, floor: float = 0.0) -> None:
        super().__init__(theta_hat)
        if not 0.0 <= floor <= 1.0:
            raise ModelValidationError(f"floor must lie in [0, 1], got {floor!r}")
        self.floor = float(floor)

    def evaluate(self, theta: float) -> float:
        return self.floor + (1.0 - self.floor) * (theta / self._theta_hat)

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        return self.floor + (1.0 - self.floor) * (thetas / self._theta_hat)

    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        theta_hats = np.array([f.theta_hat for f in functions], dtype=float)
        floors = np.array([f.floor for f in functions], dtype=float)  # type: ignore[attr-defined]
        return theta_hats, floors

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        theta_hats, floors = packed  # type: ignore[misc]
        clipped = np.clip(np.asarray(thetas, dtype=float), 0.0, theta_hats)
        return floors + (1.0 - floors) * (clipped / theta_hats)

    def demand_at_zero(self) -> float:
        return self.floor


class UnitDemand(DemandFunction):
    """Perfectly inelastic demand: every user stays regardless of throughput.

    Useful as the ``beta = 0`` limit of the exponential family and for tests
    where the rate equilibrium should reduce to a pure capacity split.
    """

    def evaluate(self, theta: float) -> float:
        return 1.0

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        return np.ones_like(thetas)

    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        return len(functions)

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(thetas, dtype=float))

    def demand_at_zero(self) -> float:
        return 1.0


class StepDemand(DemandFunction):
    """Threshold demand: users stay only above ``threshold * theta_hat``.

    Strictly speaking a step is discontinuous, so to remain inside
    Assumption 1 the drop is smoothed over a configurable relative width
    (default 1% of ``theta_hat``).  With ``width -> 0`` this approaches the
    behaviour of hard-real-time applications.
    """

    def __init__(self, theta_hat: float, threshold: float, width: float = 0.01,
                 floor: float = 0.0) -> None:
        super().__init__(theta_hat)
        if not 0.0 < threshold <= 1.0:
            raise ModelValidationError(
                f"threshold must lie in (0, 1], got {threshold!r}"
            )
        if width <= 0.0 or width > threshold:
            raise ModelValidationError(
                f"width must lie in (0, threshold], got {width!r}"
            )
        if not 0.0 <= floor < 1.0:
            raise ModelValidationError(f"floor must lie in [0, 1), got {floor!r}")
        self.threshold = float(threshold)
        self.width = float(width)
        self.floor = float(floor)

    def evaluate(self, theta: float) -> float:
        omega = theta / self._theta_hat
        lower = self.threshold - self.width
        if omega >= self.threshold:
            return 1.0
        if omega <= lower:
            return self.floor
        # Linear ramp across the smoothing band keeps the function continuous.
        ramp = (omega - lower) / self.width
        return self.floor + (1.0 - self.floor) * ramp

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        omegas = thetas / self._theta_hat
        lower = self.threshold - self.width
        ramp = np.clip((omegas - lower) / self.width, 0.0, 1.0)
        return self.floor + (1.0 - self.floor) * ramp

    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        theta_hats = np.array([f.theta_hat for f in functions], dtype=float)
        thresholds = np.array([f.threshold for f in functions], dtype=float)  # type: ignore[attr-defined]
        widths = np.array([f.width for f in functions], dtype=float)  # type: ignore[attr-defined]
        floors = np.array([f.floor for f in functions], dtype=float)  # type: ignore[attr-defined]
        return theta_hats, thresholds, widths, floors

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        theta_hats, thresholds, widths, floors = packed  # type: ignore[misc]
        omegas = np.clip(np.asarray(thetas, dtype=float), 0.0, theta_hats) / theta_hats
        ramp = np.clip((omegas - (thresholds - widths)) / widths, 0.0, 1.0)
        return floors + (1.0 - floors) * ramp

    def demand_at_zero(self) -> float:
        return self.floor


class SigmoidDemand(DemandFunction):
    """Smooth S-shaped demand centred at ``midpoint * theta_hat``.

    ``d(theta) = s(omega) / s(1)`` where ``s`` is a logistic curve, so the
    Assumption-1 endpoint condition ``d(theta_hat) = 1`` holds exactly.
    """

    def __init__(self, theta_hat: float, midpoint: float = 0.5,
                 steepness: float = 10.0) -> None:
        super().__init__(theta_hat)
        if not 0.0 < midpoint < 1.0:
            raise ModelValidationError(
                f"midpoint must lie in (0, 1), got {midpoint!r}"
            )
        if steepness <= 0.0:
            raise ModelValidationError(
                f"steepness must be positive, got {steepness!r}"
            )
        self.midpoint = float(midpoint)
        self.steepness = float(steepness)
        self._norm = self._logistic(1.0)

    def _logistic(self, omega: float) -> float:
        return 1.0 / (1.0 + math.exp(-self.steepness * (omega - self.midpoint)))

    def evaluate(self, theta: float) -> float:
        return self._logistic(theta / self._theta_hat) / self._norm

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        omegas = thetas / self._theta_hat
        logistic = 1.0 / (1.0 + np.exp(-self.steepness * (omegas - self.midpoint)))
        return logistic / self._norm

    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        theta_hats = np.array([f.theta_hat for f in functions], dtype=float)
        midpoints = np.array([f.midpoint for f in functions], dtype=float)  # type: ignore[attr-defined]
        steepness = np.array([f.steepness for f in functions], dtype=float)  # type: ignore[attr-defined]
        norms = np.array([f._norm for f in functions], dtype=float)  # type: ignore[attr-defined]
        return theta_hats, midpoints, steepness, norms

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        theta_hats, midpoints, steepness, norms = packed  # type: ignore[misc]
        omegas = np.clip(np.asarray(thetas, dtype=float), 0.0, theta_hats) / theta_hats
        logistic = 1.0 / (1.0 + np.exp(-steepness * (omegas - midpoints)))
        return np.clip(logistic / norms, 0.0, 1.0)

    def demand_at_zero(self) -> float:
        return self._logistic(0.0) / self._norm


class PiecewiseLinearDemand(DemandFunction):
    """Demand interpolated linearly through user-supplied breakpoints.

    ``points`` is a sequence of ``(omega, demand)`` pairs with ``omega`` the
    fraction of unconstrained throughput.  The pairs must be sorted, start at
    ``omega = 0``, end at ``(1.0, 1.0)`` and be non-decreasing in demand so
    the result satisfies Assumption 1.
    """

    def __init__(self, theta_hat: float,
                 points: Sequence[tuple[float, float]]) -> None:
        super().__init__(theta_hat)
        pts = [(float(w), float(d)) for w, d in points]
        if len(pts) < 2:
            raise ModelValidationError("need at least two breakpoints")
        if (pts[0][0] != 0.0
                or abs(pts[-1][0] - 1.0) > _ENDPOINT_TOLERANCE
                or abs(pts[-1][1] - 1.0) > _ENDPOINT_TOLERANCE):
            raise ModelValidationError(
                "breakpoints must start at omega=0 and end at (1.0, 1.0)"
            )
        for (w0, d0), (w1, d1) in zip(pts, pts[1:]):
            if w1 <= w0:
                raise ModelValidationError("omega breakpoints must be increasing")
            if d1 < d0:
                raise ModelValidationError("demand breakpoints must be non-decreasing")
            if not 0.0 <= d0 <= 1.0 or not 0.0 <= d1 <= 1.0:
                raise ModelValidationError("demand values must lie in [0, 1]")
        self.points = pts
        self._omegas = [w for w, _ in pts]
        self._demands = [d for _, d in pts]
        self._omega_array = np.array(self._omegas, dtype=float)
        self._demand_array = np.array(self._demands, dtype=float)

    def evaluate(self, theta: float) -> float:
        omega = theta / self._theta_hat
        # Binary search for the segment containing omega (the breakpoints are
        # strictly increasing), instead of a linear scan.
        index = bisect_left(self._omegas, omega)
        if index >= len(self._omegas):
            return 1.0
        if index == 0:
            return self._demands[0]
        if self._omegas[index] == omega:
            return self._demands[index]
        w0, d0 = self.points[index - 1]
        w1, d1 = self.points[index]
        frac = (omega - w0) / (w1 - w0)
        return d0 + (d1 - d0) * frac

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        omegas = thetas / self._theta_hat
        return np.interp(omegas, self._omega_array, self._demand_array)

    def demand_at_zero(self) -> float:
        return self.points[0][1]


class ConstantElasticityDemand(DemandFunction):
    """Demand with constant elasticity in the throughput fraction.

    ``d(theta) = (theta / theta_hat) ** elasticity`` with ``elasticity >= 0``.
    ``elasticity = 0`` reduces to :class:`UnitDemand`.
    """

    def __init__(self, theta_hat: float, elasticity: float = 1.0) -> None:
        super().__init__(theta_hat)
        if not math.isfinite(elasticity) or elasticity < 0.0:
            raise ModelValidationError(
                f"elasticity must be non-negative, got {elasticity!r}"
            )
        self.elasticity = float(elasticity)

    def evaluate(self, theta: float) -> float:
        if self.elasticity == 0.0:
            return 1.0
        return (theta / self._theta_hat) ** self.elasticity

    def _evaluate_array(self, thetas: np.ndarray) -> np.ndarray:
        if self.elasticity == 0.0:
            return np.ones_like(thetas)
        return (thetas / self._theta_hat) ** self.elasticity

    @classmethod
    def pack_parameters(cls, functions: Sequence["DemandFunction"]) -> object:
        theta_hats = np.array([f.theta_hat for f in functions], dtype=float)
        elasticities = np.array([f.elasticity for f in functions], dtype=float)  # type: ignore[attr-defined]
        return theta_hats, elasticities

    @classmethod
    def batch_evaluate_packed(cls, packed: object, thetas: np.ndarray) -> np.ndarray:
        theta_hats, elasticities = packed  # type: ignore[misc]
        omegas = np.clip(np.asarray(thetas, dtype=float), 0.0, theta_hats) / theta_hats
        # 0 ** 0 == 1 in numpy, which matches the elasticity == 0 limit.
        return omegas ** elasticities

    def demand_at_zero(self) -> float:
        return 1.0 if self.elasticity == 0.0 else 0.0


def validate_demand_function(demand: DemandFunction, *, samples: int = 257,
                             tolerance: float = 1e-9) -> None:
    """Check Assumption 1 on a demand function by dense sampling.

    Raises :class:`~repro.errors.ModelValidationError` if the function is
    negative, exceeds 1, decreases anywhere on the sampled grid, or fails the
    endpoint condition ``d(theta_hat) = 1``.  Continuity cannot be checked
    exactly by sampling; a large jump between adjacent samples (more than
    25% of the full range) is treated as a likely discontinuity and rejected.
    """
    if samples < 3:
        raise ModelValidationError("samples must be at least 3")
    theta_hat = demand.theta_hat
    grid = [theta_hat * k / (samples - 1) for k in range(samples)]
    previous = None
    for index, theta in enumerate(grid):
        value = demand(theta)
        if value < -tolerance or value > 1.0 + tolerance:
            raise ModelValidationError(
                f"demand {value} at theta={theta} escapes [0, 1]"
            )
        if previous is not None:
            if value < previous - tolerance:
                raise ModelValidationError(
                    f"demand decreases from {previous} to {value} near theta={theta}"
                )
            # Jump heuristic for interior points only: near theta = 0 even
            # continuous demands (e.g. the exponential family with a tiny
            # beta) rise arbitrarily steeply towards their limit, and the
            # steep region can span two grid intervals: the first interval
            # is exempt, and the second is held to a looser threshold
            # because the exponential family's second-interval jump has
            # supremum ~0.251 over beta at the default grid (the third
            # interval's is ~0.15, comfortably under 0.25).
            threshold = 0.30 if index == 2 else 0.25
            if index > 1 and value - previous > threshold:
                raise ModelValidationError(
                    f"demand jumps by {value - previous:.3f} near theta={theta}; "
                    "likely discontinuous (violates Assumption 1)"
                )
        previous = value
    if abs(demand(theta_hat) - 1.0) > tolerance:
        raise ModelValidationError(
            f"demand at theta_hat is {demand(theta_hat)}, expected 1.0"
        )


def demand_family(theta_hat: float, betas: Iterable[float]
                  ) -> list[ExponentialSensitivityDemand]:
    """Convenience constructor for a family of Equation-(3) demand curves."""
    return [ExponentialSensitivityDemand(theta_hat, beta) for beta in betas]


@dataclass(frozen=True)
class DemandSample:
    """One sampled point of a demand curve (used by Figure 2 reproduction)."""

    omega: float
    demand: float


def sample_demand_curve(demand: DemandFunction, *, points: int = 101
                        ) -> list[DemandSample]:
    """Sample ``d`` against the throughput fraction ``omega`` on ``[0, 1]``."""
    if points < 2:
        raise ModelValidationError("points must be at least 2")
    return [
        DemandSample(omega=k / (points - 1),
                     demand=demand.throughput_fraction(k / (points - 1)))
        for k in range(points)
    ]
