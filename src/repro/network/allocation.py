"""Rate-allocation mechanisms (Section II-B, Definition 1, Axioms 1-4).

A rate-allocation mechanism maps a *fixed* demand profile ``{d_i}`` to an
achievable per-user throughput profile ``{theta_i}`` subject to the link's
per-capita capacity ``nu``.  The paper requires four axioms:

* Axiom 1 (feasibility): ``theta_i <= theta_hat_i``;
* Axiom 2 (work conservation): the aggregate per-capita rate equals
  ``min(nu, sum_i alpha_i d_i theta_hat_i)`` — capacity is fully used
  whenever demand exceeds it;
* Axiom 3 (monotonicity): more capacity never reduces any ``theta_i``;
* Axiom 4 (independence of scale): only the per-capita capacity
  ``nu = mu / M`` matters.

All mechanisms in this module operate directly on per-capita quantities so
Axiom 4 holds by construction.  The paper's numerical work uses the max-min
fair mechanism (the first-order model of TCP's AIMD behaviour, following
Mo & Walrand); we additionally provide weighted-fair, alpha-proportional
fair, proportional-to-demand and strict-priority mechanisms, both as
alternative substrates and as counter-examples for the axiom checker (strict
priority is work-conserving and monotone but decidedly not neutral).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConvergenceError, ModelValidationError
from repro.network.provider import Population

__all__ = [
    "RateAllocationMechanism",
    "CommonCapAllocation",
    "MaxMinFairAllocation",
    "WeightedFairAllocation",
    "ProportionalToDemandAllocation",
    "ProportionalFairAllocation",
    "AlphaFairAllocation",
    "StrictPriorityAllocation",
]

_BISECTION_ITERATIONS = 200
_BISECTION_TOLERANCE = 1e-12

#: Slack allowed on the demand-profile range check (rounding noise from the
#: demand kernels may leave values epsilon outside [0, 1]).
_DEMAND_RANGE_SLACK = 1e-12

#: Slack below the offered load within which a capacity counts as
#: uncongested (every provider then gets its unconstrained throughput).
_UNCONGESTED_SLACK = 1e-15

#: Division guard for zero allocation weights (never reached for positive
#: weights; keeps the vectorised quotient finite).
_WEIGHT_FLOOR = 1e-300

#: Smallest damping factor the fixed-point iteration backs off to.
_DAMPING_FLOOR = 1e-4


def _validate_inputs(population: Population, demands: Sequence[float],
                     nu: float) -> np.ndarray:
    """Common validation for ``allocate`` implementations."""
    demands_arr = np.asarray(demands, dtype=float)
    if demands_arr.shape != (len(population),):
        raise ModelValidationError(
            f"demand profile has shape {demands_arr.shape}, expected ({len(population)},)"
        )
    if (np.any(demands_arr < -_DEMAND_RANGE_SLACK)
            or np.any(demands_arr > 1.0 + _DEMAND_RANGE_SLACK)):
        raise ModelValidationError("demands must lie in [0, 1]")
    if not math.isfinite(nu) or nu < 0.0:
        raise ModelValidationError(f"per-capita capacity must be >= 0, got {nu!r}")
    return np.clip(demands_arr, 0.0, 1.0)


class RateAllocationMechanism(ABC):
    """Base class for rate-allocation mechanisms (Definition 1)."""

    def cache_key(self) -> tuple[Any, ...]:
        """Hashable value identifying this mechanism's behaviour.

        Used by the equilibrium cache (:mod:`repro.simulation.batch`) to key
        solved equilibria.  Two mechanisms with equal cache keys must produce
        identical allocations for every input.  The conservative default
        keys on the instance itself (identity equality, and the key retains
        the reference so a recycled ``id`` can never alias two mechanisms);
        stateless or value-parameterised mechanisms override it so equal
        configurations share cache entries.  The instance therefore must be
        hashable — a subclass that defines ``__eq__`` without ``__hash__``
        (e.g. a non-frozen dataclass) must override ``cache_key`` with a
        hashable value key.
        """
        return (type(self).__qualname__, self)

    @abstractmethod
    def allocate(self, population: Population, demands: Sequence[float],
                 nu: float) -> np.ndarray:
        """Per-user throughput profile for a fixed demand profile.

        Parameters
        ----------
        population:
            The content providers sharing the link (or service class).
        demands:
            Fixed demand fractions ``d_i`` in ``[0, 1]``, one per provider.
        nu:
            Per-capita capacity of the link (``mu / M``).

        Returns
        -------
        numpy.ndarray
            Achievable throughput ``theta_i`` for each provider, satisfying
            Axioms 1 and 2 for the given (fixed) demands.
        """

    # Aggregate helpers shared by implementations -------------------------
    @staticmethod
    def offered_load(population: Population, demands: np.ndarray) -> float:
        """Per-capita load if every active user got unconstrained throughput."""
        return float(np.sum(population.alphas * demands * population.theta_hats))

    @staticmethod
    def carried_load(population: Population, demands: np.ndarray,
                     thetas: np.ndarray) -> float:
        """Per-capita aggregate rate ``sum_i alpha_i d_i theta_i``."""
        return float(np.sum(population.alphas * demands * thetas))


class CommonCapAllocation(RateAllocationMechanism):
    """Mechanisms whose allocation is ``theta_i = min(theta_hat_i, g_i(cap))``.

    ``g_i`` must be continuous and non-decreasing in the scalar ``cap`` and
    independent of the demand profile; the mechanism then finds the smallest
    cap at which the carried load reaches ``min(nu, offered load)``.  The
    max-min fair, weighted-fair and proportional-to-demand mechanisms are all
    of this form, which also gives the rate-equilibrium solver a fast exact
    path (see :mod:`repro.network.equilibrium`).
    """

    @abstractmethod
    def theta_at_cap(self, population: Population, cap: float) -> np.ndarray:
        """Throughput profile at scalar cap level ``cap >= 0``."""

    def theta_at_caps(self, population: Population,
                      caps: np.ndarray) -> np.ndarray:
        """Throughput profiles at a *vector* of cap levels, shape ``(G, n)``.

        The batched equilibrium engine bisects a whole grid of caps at once;
        the default stacks scalar :meth:`theta_at_cap` calls, and the shipped
        cap-parameterised mechanisms override it with one broadcast.
        """
        caps = np.asarray(caps, dtype=float)
        if len(caps) == 0:
            return np.empty((0, len(population)))
        return np.stack([self.theta_at_cap(population, float(cap))
                         for cap in caps])

    def cap_upper_bound(self, population: Population) -> float:
        """A cap value at which every provider reaches ``theta_hat``."""
        return float(np.max(population.theta_hats)) if len(population) else 0.0

    def allocate(self, population: Population, demands: Sequence[float],
                 nu: float) -> np.ndarray:
        demands_arr = _validate_inputs(population, demands, nu)
        if len(population) == 0:
            return np.zeros(0)
        offered = self.offered_load(population, demands_arr)
        target = min(nu, offered)
        if target <= 0.0:
            # No capacity or no demand: only providers with zero active users
            # can be given their unconstrained rate without carrying load.
            return np.where(demands_arr * population.alphas > 0.0,
                            0.0, population.theta_hats)
        upper = self.cap_upper_bound(population)
        if self.carried_load(population, demands_arr,
                             self.theta_at_cap(population, upper)
                             ) <= target + _UNCONGESTED_SLACK:
            return population.theta_hats.copy()
        low, high = 0.0, upper
        for _ in range(_BISECTION_ITERATIONS):
            mid = 0.5 * (low + high)
            carried = self.carried_load(
                population, demands_arr, self.theta_at_cap(population, mid))
            if carried < target:
                low = mid
            else:
                high = mid
            if high - low <= _BISECTION_TOLERANCE * max(1.0, upper):
                break
        return self.theta_at_cap(population, high)


class MaxMinFairAllocation(CommonCapAllocation):
    """Max-min fair sharing among *users* — the paper's default mechanism.

    Every active user receives the same throughput cap, truncated at the
    application's unconstrained throughput: ``theta_i = min(theta_hat_i, t)``.
    This is the ``alpha = infinity`` member of the alpha-proportional-fair
    family and the first-order behaviour of TCP AIMD over a shared
    bottleneck.
    """

    def theta_at_cap(self, population: Population, cap: float) -> np.ndarray:
        return np.minimum(population.theta_hats, cap)

    def theta_at_caps(self, population: Population,
                      caps: np.ndarray) -> np.ndarray:
        caps = np.asarray(caps, dtype=float)
        return np.minimum(population.theta_hats[np.newaxis, :],
                          caps[:, np.newaxis])

    def cache_key(self) -> tuple[Any, ...]:
        return ("MaxMinFairAllocation",)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MaxMinFairAllocation()"


class WeightedFairAllocation(CommonCapAllocation):
    """Weighted max-min fairness: ``theta_i = min(theta_hat_i, w_i * t)``.

    Weights model per-class scheduling (e.g. WFQ) or persistent differences
    in round-trip time between providers.  Weights must be positive; they are
    matched to providers by name so a weight map can be reused across
    sub-populations (service classes).
    """

    def __init__(self, weights: dict[str, float], default_weight: float = 1.0) -> None:
        for name, weight in weights.items():
            if weight <= 0.0 or not math.isfinite(weight):
                raise ModelValidationError(
                    f"weight for {name!r} must be positive, got {weight!r}"
                )
        if default_weight <= 0.0 or not math.isfinite(default_weight):
            raise ModelValidationError(
                f"default_weight must be positive, got {default_weight!r}"
            )
        self.weights = dict(weights)
        self.default_weight = float(default_weight)

    def _weight_vector(self, population: Population) -> np.ndarray:
        return np.array(
            [self.weights.get(name, self.default_weight) for name in population.names],
            dtype=float,
        )

    def theta_at_cap(self, population: Population, cap: float) -> np.ndarray:
        return np.minimum(population.theta_hats,
                          self._weight_vector(population) * cap)

    def theta_at_caps(self, population: Population,
                      caps: np.ndarray) -> np.ndarray:
        caps = np.asarray(caps, dtype=float)
        weighted = self._weight_vector(population)[np.newaxis, :] * caps[:, np.newaxis]
        return np.minimum(population.theta_hats[np.newaxis, :], weighted)

    def cache_key(self) -> tuple[Any, ...]:
        return ("WeightedFairAllocation",
                tuple(sorted(self.weights.items())), self.default_weight)

    def cap_upper_bound(self, population: Population) -> float:
        if len(population) == 0:
            return 0.0
        weights = self._weight_vector(population)
        return float(np.max(population.theta_hats / weights))


class ProportionalToDemandAllocation(CommonCapAllocation):
    """Every provider gets the same *fraction* of its unconstrained throughput.

    ``theta_i = omega * theta_hat_i`` with a common fraction ``omega``; under
    congestion heavy applications are squeezed proportionally harder in
    absolute terms.  This mimics a fair-queueing discipline that weights
    flows by their offered rate.
    """

    def theta_at_cap(self, population: Population, cap: float) -> np.ndarray:
        theta_max = float(np.max(population.theta_hats))
        omega = min(1.0, cap / theta_max) if theta_max > 0 else 0.0
        return omega * population.theta_hats

    def theta_at_caps(self, population: Population,
                      caps: np.ndarray) -> np.ndarray:
        caps = np.asarray(caps, dtype=float)
        theta_max = float(np.max(population.theta_hats))
        if theta_max <= 0.0:
            return np.zeros((len(caps), len(population)))
        omegas = np.minimum(1.0, caps / theta_max)
        return omegas[:, np.newaxis] * population.theta_hats[np.newaxis, :]

    def cache_key(self) -> tuple[Any, ...]:
        return ("ProportionalToDemandAllocation",)


class AlphaFairAllocation(RateAllocationMechanism):
    """Alpha-proportional fairness over provider *aggregates* (Mo & Walrand).

    The mechanism maximises ``sum_i U_alpha(Lambda_i)`` over the per-capita
    aggregate rates ``Lambda_i = alpha_i d_i theta_i`` subject to the capacity
    constraint, where ``U_alpha`` is the standard alpha-fair utility.  The KKT
    conditions give a common cap on the *aggregate* rate,
    ``Lambda_i = min(alpha_i d_i theta_hat_i, ell)``, independent of the value
    of ``alpha > 0`` (the family differs only through dynamics, not through
    the static optimum, when each aggregate is treated as one flow).

    Note the contrast with :class:`MaxMinFairAllocation`: there fairness is
    applied per *user*, so popular providers receive proportionally more
    aggregate capacity; here fairness is applied per *provider aggregate*, so
    a provider's popularity does not help it.  When fairness per user is
    requested (``per_user=True``) the mechanism simply defers to max-min
    fairness, which is the exact static optimum in that case.
    """

    def __init__(self, alpha: float = 1.0, per_user: bool = False) -> None:
        if alpha <= 0.0 or not math.isfinite(alpha):
            raise ModelValidationError(f"alpha must be positive, got {alpha!r}")
        self.alpha = float(alpha)
        self.per_user = bool(per_user)
        self._per_user_mechanism = MaxMinFairAllocation()

    def cache_key(self) -> tuple[Any, ...]:
        # The static optimum is independent of alpha (see the class docstring),
        # but keep it in the key so the identification stays conservative.
        return ("AlphaFairAllocation", self.alpha, self.per_user)

    def allocate(self, population: Population, demands: Sequence[float],
                 nu: float) -> np.ndarray:
        demands_arr = _validate_inputs(population, demands, nu)
        if len(population) == 0:
            return np.zeros(0)
        if self.per_user:
            return self._per_user_mechanism.allocate(population, demands_arr, nu)
        weights = population.alphas * demands_arr
        unconstrained = weights * population.theta_hats
        offered = float(np.sum(unconstrained))
        target = min(nu, offered)
        if target >= offered - _UNCONGESTED_SLACK:
            return population.theta_hats.copy()
        if target <= 0.0:
            return np.where(weights > 0.0, 0.0, population.theta_hats)
        # Water-fill a common cap ell over the aggregates.
        low, high = 0.0, float(np.max(unconstrained))
        for _ in range(_BISECTION_ITERATIONS):
            mid = 0.5 * (low + high)
            carried = float(np.sum(np.minimum(unconstrained, mid)))
            if carried < target:
                low = mid
            else:
                high = mid
            if high - low <= _BISECTION_TOLERANCE * max(1.0, high):
                break
        aggregates = np.minimum(unconstrained, high)
        thetas = np.where(weights > 0.0,
                          aggregates / np.maximum(weights, _WEIGHT_FLOOR),
                          population.theta_hats)
        return np.minimum(thetas, population.theta_hats)


class ProportionalFairAllocation(AlphaFairAllocation):
    """Proportional fairness (``alpha = 1``) over provider aggregates."""

    def __init__(self, per_user: bool = False) -> None:
        super().__init__(alpha=1.0, per_user=per_user)


class StrictPriorityAllocation(RateAllocationMechanism):
    """Strict priority among providers, in a caller-supplied order.

    Providers earlier in ``priority_order`` are served to their unconstrained
    throughput before later providers receive anything.  The mechanism is
    work-conserving, monotone and scale independent — it satisfies the
    paper's axioms — but it is the canonical example of a *non-neutral*
    discipline, and is used in tests and ablation benchmarks to show how the
    substrate changes the games' conclusions.
    """

    def __init__(self, priority_order: Optional[Sequence[str]] = None) -> None:
        self.priority_order = list(priority_order) if priority_order else None

    def cache_key(self) -> tuple[Any, ...]:
        order = tuple(self.priority_order) if self.priority_order else None
        return ("StrictPriorityAllocation", order)

    def _ordered_indices(self, population: Population) -> list[int]:
        if self.priority_order is None:
            return list(range(len(population)))
        position = {name: rank for rank, name in enumerate(self.priority_order)}
        return sorted(
            range(len(population)),
            key=lambda i: position.get(population.names[i], len(position)),
        )

    def allocate(self, population: Population, demands: Sequence[float],
                 nu: float) -> np.ndarray:
        demands_arr = _validate_inputs(population, demands, nu)
        if len(population) == 0:
            return np.zeros(0)
        thetas = np.zeros(len(population))
        remaining = float(nu)
        alphas = population.alphas
        theta_hats = population.theta_hats
        for i in self._ordered_indices(population):
            weight = alphas[i] * demands_arr[i]
            if weight <= 0.0:
                # A provider with no active users carries no load; it can be
                # granted unconstrained throughput when capacity remains, and
                # nothing when the higher-priority classes already exhausted
                # the link (keeping the allocation continuous in the demand).
                thetas[i] = theta_hats[i] if remaining > 0.0 else 0.0
                continue
            full_load = weight * theta_hats[i]
            if remaining >= full_load:
                thetas[i] = theta_hats[i]
                remaining -= full_load
            else:
                thetas[i] = remaining / weight
                remaining = 0.0
        return thetas


def fixed_point_allocation(mechanism: RateAllocationMechanism,
                           population: Population, nu: float, *,
                           damping: float = 0.5, max_iterations: int = 10_000,
                           tolerance: float = 1e-9) -> np.ndarray:
    """Solve the demand/allocation fixed point for an arbitrary mechanism.

    This is the generic (slow) path used by the rate-equilibrium solver when
    the mechanism is not cap-based: iterate
    ``theta <- (1 - damping) * theta + damping * allocate(d(theta), nu)``
    until the profile stabilises.  Steep demand functions can make the
    un-damped map expansive, so the damping factor is halved whenever the
    step size stops shrinking; this adaptive relaxation converges for every
    mechanism satisfying the paper's axioms.

    Raises
    ------
    ConvergenceError
        If the iteration does not reach ``tolerance`` within
        ``max_iterations`` steps.
    """
    if not 0.0 < damping <= 1.0:
        raise ModelValidationError(f"damping must lie in (0, 1], got {damping!r}")
    thetas = population.theta_hats.copy()
    if len(population) == 0:
        return thetas
    scale = float(np.max(population.theta_hats))
    gamma = damping
    best_residual = math.inf
    stalled = 0
    residual = math.inf
    for iteration in range(max_iterations):
        demands = population.demands_at(thetas)
        updated = mechanism.allocate(population, demands, nu)
        step = gamma * (updated - thetas)
        thetas = thetas + step
        residual = float(np.max(np.abs(step)))
        if residual <= tolerance * max(1.0, scale):
            return thetas
        # A period-two oscillation leaves the step size roughly constant, so
        # progress is judged against the best residual seen so far rather
        # than the immediately preceding one.
        if residual < 0.9 * best_residual:
            best_residual = residual
            stalled = 0
        else:
            stalled += 1
            if stalled >= 5:
                gamma = max(gamma * 0.5, _DAMPING_FLOOR)
                stalled = 0
                best_residual = residual
    raise ConvergenceError(
        "fixed-point allocation did not converge",
        residual=residual,
        iterations=max_iterations,
    )
