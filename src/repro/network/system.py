"""The system triple ``(M, mu, N)`` and its service-class decomposition.

:class:`NetworkSystem` binds a consumer group of size ``M``, a bottleneck of
capacity ``mu`` and a population ``N`` of content providers to a rate
allocation mechanism, and exposes the rate equilibrium and surplus metrics
in both per-capita and absolute terms.  :class:`ServiceClassOutcome` is the
per-class view produced when a population is partitioned across the
ordinary/premium classes of a differentiated link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ModelValidationError
from repro.network.allocation import MaxMinFairAllocation, RateAllocationMechanism
from repro.network.equilibrium import RateEquilibrium, solve_rate_equilibrium
from repro.network.link import BottleneckLink, ServiceClassSpec
from repro.network.provider import Population

__all__ = ["NetworkSystem", "ServiceClassOutcome"]

#: Relative slack on the class capacity-saturation predicate.
_SATURATION_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ServiceClassOutcome:
    """Rate equilibrium of one service class of a differentiated link.

    Attributes
    ----------
    spec:
        The service-class specification (name, capacity share, price).
    population:
        Providers that joined this class.
    equilibrium:
        The class's internal rate equilibrium at its per-capita capacity.
    """

    spec: ServiceClassSpec
    population: Population
    equilibrium: RateEquilibrium

    @property
    def per_capita_capacity(self) -> float:
        return self.equilibrium.nu

    @property
    def consumer_surplus(self) -> float:
        """Per-capita consumer surplus contributed by this class."""
        return self.equilibrium.consumer_surplus()

    @property
    def carried_rate(self) -> float:
        """Per-capita aggregate rate carried inside this class."""
        return self.equilibrium.aggregate_rate

    @property
    def isp_revenue(self) -> float:
        """Per-capita ISP revenue collected from this class (``c * lambda/M``)."""
        return self.spec.price * self.carried_rate

    @property
    def is_saturated(self) -> bool:
        """True when the class capacity is (numerically) fully used."""
        if self.per_capita_capacity <= 0.0:
            return True
        return (self.carried_rate
                >= self.per_capita_capacity * (1.0 - _SATURATION_TOLERANCE))


class NetworkSystem:
    """A consumer group, a bottleneck link and a population of providers.

    The class is the programmatic form of the paper's system triple
    ``(M, mu, N)``.  All game-theoretic computations reduce to per-capita
    quantities (Axiom 4); absolute quantities are recovered by multiplying by
    the consumer size.
    """

    def __init__(self, population: Population, consumers: float,
                 link: BottleneckLink,
                 mechanism: Optional[RateAllocationMechanism] = None) -> None:
        if consumers <= 0.0 or not math.isfinite(consumers):
            raise ModelValidationError(
                f"consumer size must be positive and finite, got {consumers!r}"
            )
        self.population = population
        self.consumers = float(consumers)
        self.link = link
        self.mechanism = mechanism if mechanism is not None else MaxMinFairAllocation()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_per_capita(cls, population: Population, nu: float,
                        consumers: float = 1.0,
                        mechanism: Optional[RateAllocationMechanism] = None,
                        ) -> "NetworkSystem":
        """Build a system directly from a per-capita capacity ``nu``.

        By Axiom 4 only ``nu`` matters for equilibrium quantities, so a unit
        consumer group is used unless an absolute scale is requested.
        """
        return cls(population, consumers, BottleneckLink(nu * consumers), mechanism)

    # ------------------------------------------------------------------ #
    # Basic quantities
    # ------------------------------------------------------------------ #
    @property
    def nu(self) -> float:
        """Per-capita capacity ``nu = mu / M``."""
        return self.link.per_capita(self.consumers)

    @property
    def required_nu(self) -> float:
        """Per-capita capacity needed to serve all unconstrained throughput."""
        return self.population.unconstrained_per_capita_load

    def scaled(self, factor: float) -> "NetworkSystem":
        """The linearly scaled system ``(xi M, xi mu, N)`` (Axiom 4)."""
        if factor <= 0.0:
            raise ModelValidationError("scale factor must be positive")
        return NetworkSystem(self.population, self.consumers * factor,
                             self.link.scaled(factor), self.mechanism)

    def subsystem(self, indices: Iterable[int],
                  capacity_share: float) -> "NetworkSystem":
        """The subsystem formed by a subset of providers on a capacity share.

        Used to build the ordinary/premium class systems: the same consumer
        group is served, but only ``capacity_share`` of the link is available
        to the selected providers.
        """
        if not 0.0 <= capacity_share <= 1.0:
            raise ModelValidationError(
                f"capacity_share must lie in [0, 1], got {capacity_share!r}"
            )
        return NetworkSystem(self.population.subset(indices), self.consumers,
                             BottleneckLink(self.link.capacity * capacity_share),
                             self.mechanism)

    # ------------------------------------------------------------------ #
    # Equilibrium and surplus
    # ------------------------------------------------------------------ #
    def equilibrium(self) -> RateEquilibrium:
        """The unique rate equilibrium of the full system (Theorem 1)."""
        return solve_rate_equilibrium(self.population, self.nu, self.mechanism)

    def class_outcome(self, spec: ServiceClassSpec,
                      member_indices: Iterable[int]) -> ServiceClassOutcome:
        """Rate equilibrium of one service class with the given members."""
        members = self.population.subset(member_indices)
        class_nu = spec.per_capita_capacity(self.nu)
        equilibrium = solve_rate_equilibrium(members, class_nu, self.mechanism)
        return ServiceClassOutcome(spec=spec, population=members,
                                   equilibrium=equilibrium)

    def per_capita_consumer_surplus(self) -> float:
        """``Phi`` of the undifferentiated (single-class) system."""
        return self.equilibrium().consumer_surplus()

    def consumer_surplus(self) -> float:
        """Absolute consumer surplus ``CS = M * Phi``."""
        return self.consumers * self.per_capita_consumer_surplus()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"NetworkSystem(n_providers={len(self.population)}, "
                f"consumers={self.consumers}, capacity={self.link.capacity}, "
                f"mechanism={type(self.mechanism).__name__})")
