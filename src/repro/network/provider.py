"""Content-provider model and populations (Section II of the paper).

Each content provider (CP) ``i`` is described by:

* ``alpha`` — popularity, the fraction of consumers that ever access the CP
  (``alpha_i`` in the paper, in ``(0, 1]``);
* ``theta_hat`` — the unconstrained per-user throughput (``theta_hat_i``);
* ``beta`` — throughput sensitivity, the shape parameter of the exponential
  demand function of Equation (3);
* ``revenue_rate`` — the CP-side per-unit-traffic revenue ``v_i`` used when
  the CP decides whether to pay for the premium class;
* ``utility_rate`` — the consumer-side per-unit-traffic utility ``phi_i``
  entering the consumer surplus.

A CP may override the default exponential demand function with any
:class:`~repro.network.demand.DemandFunction`.  :class:`Population` is an
immutable ordered collection of CPs with vectorised accessors used by the
solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ModelValidationError
from repro.network.demand import DemandFunction, ExponentialSensitivityDemand

__all__ = ["ContentProvider", "Population"]


@dataclass(frozen=True)
class ContentProvider:
    """A single content provider in the three-party ecosystem.

    Parameters mirror the paper's notation; see the module docstring.  The
    ``demand`` field defaults to the exponential-sensitivity demand of
    Equation (3) built from ``theta_hat`` and ``beta``.
    """

    name: str
    alpha: float
    theta_hat: float
    beta: float = 1.0
    revenue_rate: float = 0.0
    utility_rate: float = 0.0
    demand: Optional[DemandFunction] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelValidationError("content provider needs a non-empty name")
        if not (0.0 < self.alpha <= 1.0):
            raise ModelValidationError(
                f"alpha (popularity) must lie in (0, 1], got {self.alpha!r}"
            )
        if not math.isfinite(self.theta_hat) or self.theta_hat <= 0.0:
            raise ModelValidationError(
                f"theta_hat must be positive and finite, got {self.theta_hat!r}"
            )
        if not math.isfinite(self.beta) or self.beta < 0.0:
            raise ModelValidationError(
                f"beta must be non-negative and finite, got {self.beta!r}"
            )
        if not math.isfinite(self.revenue_rate) or self.revenue_rate < 0.0:
            raise ModelValidationError(
                f"revenue_rate (v_i) must be non-negative, got {self.revenue_rate!r}"
            )
        if not math.isfinite(self.utility_rate) or self.utility_rate < 0.0:
            raise ModelValidationError(
                f"utility_rate (phi_i) must be non-negative, got {self.utility_rate!r}"
            )
        if self.demand is None:
            object.__setattr__(
                self,
                "demand",
                ExponentialSensitivityDemand(self.theta_hat, self.beta),
            )
        elif abs(self.demand.theta_hat - self.theta_hat) > 1e-9 * self.theta_hat:
            raise ModelValidationError(
                "demand.theta_hat must match the provider's theta_hat "
                f"({self.demand.theta_hat} != {self.theta_hat})"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities used throughout the paper.
    # ------------------------------------------------------------------ #
    @property
    def unconstrained_per_capita_rate(self) -> float:
        """``alpha_i * theta_hat_i`` — per-capita unconstrained throughput.

        The paper's ``lambda_hat_i`` equals ``alpha_i * M * theta_hat_i``;
        dividing by the consumer size ``M`` gives this per-capita quantity,
        which is what the per-capita capacity ``nu`` is compared against.
        """
        return self.alpha * self.theta_hat

    def demand_at(self, theta: float) -> float:
        """Demand fraction ``d_i(theta)`` (Assumption 1 compliant)."""
        assert self.demand is not None
        return self.demand(theta)

    def rho(self, theta: float) -> float:
        """Per-capita throughput over the CP's own user base (Equation 5).

        ``rho_i(theta) = d_i(theta) * theta`` — throughput per member of the
        CP's user base, before weighting by the popularity ``alpha``.
        """
        theta_eff = min(theta, self.theta_hat)
        return self.demand_at(theta_eff) * theta_eff

    def per_capita_rate(self, theta: float) -> float:
        """Per-consumer throughput contribution ``alpha_i d_i(theta) theta``.

        Multiplying by the consumer size ``M`` recovers the paper's
        ``lambda_i`` of Equation (1).
        """
        return self.alpha * self.rho(theta)

    def throughput(self, theta: float, consumers: float) -> float:
        """Absolute aggregate throughput ``lambda_i`` for ``M = consumers``."""
        if consumers < 0.0:
            raise ModelValidationError("consumer size must be non-negative")
        return consumers * self.per_capita_rate(theta)

    def utility(self, per_capita_rate: float, consumers: float,
                premium_price: float = 0.0) -> float:
        """CP profit (Equation 4) given its realised per-capita rate.

        ``premium_price`` is the per-unit-traffic charge ``c`` if the CP is in
        the premium class, or 0 in the ordinary class.
        """
        margin = self.revenue_rate - premium_price
        return margin * per_capita_rate * consumers

    def with_utility_rate(self, utility_rate: float) -> "ContentProvider":
        """Copy of this CP with a different consumer utility rate ``phi_i``."""
        return replace(self, utility_rate=utility_rate)

    def with_revenue_rate(self, revenue_rate: float) -> "ContentProvider":
        """Copy of this CP with a different CP-side revenue rate ``v_i``."""
        return replace(self, revenue_rate=revenue_rate)


class Population(Sequence[ContentProvider]):
    """Immutable ordered collection of content providers.

    Provides vectorised views of the CP parameters (as numpy arrays) and
    convenience constructors for sub-populations selected by index, which is
    how the game layer represents the ordinary/premium partition.
    """

    def __init__(self, providers: Iterable[ContentProvider]) -> None:
        self._providers: tuple[ContentProvider, ...] = tuple(providers)
        names = [cp.name for cp in self._providers]
        if len(set(names)) != len(names):
            raise ModelValidationError("content provider names must be unique")
        # Lazily-populated caches.  A Population is immutable, so the numpy
        # parameter views and the hash can be computed once; the solvers'
        # hot loops read them on every iteration.
        self._array_cache: dict[str, np.ndarray] = {}
        self._hash: Optional[int] = None
        self._demand_groups_cache = None

    def _cached_array(self, key: str, attribute: str) -> np.ndarray:
        array = self._array_cache.get(key)
        if array is None:
            array = np.array([getattr(cp, attribute) for cp in self._providers],
                             dtype=float)
            array.flags.writeable = False
            self._array_cache[key] = array
        return array

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._providers)

    def __iter__(self) -> Iterator[ContentProvider]:
        return iter(self._providers)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Population(self._providers[index])
        return self._providers[index]

    def __contains__(self, item: object) -> bool:
        return item in self._providers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Population):
            return NotImplemented
        return self._providers == other._providers

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._providers)
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Population(n={len(self._providers)})"

    # -- vectorised accessors ----------------------------------------------
    # The returned arrays are cached and marked read-only: callers that need
    # to mutate them must take a copy (the solvers already do).
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(cp.name for cp in self._providers)

    @property
    def alphas(self) -> np.ndarray:
        return self._cached_array("alphas", "alpha")

    @property
    def theta_hats(self) -> np.ndarray:
        return self._cached_array("theta_hats", "theta_hat")

    @property
    def betas(self) -> np.ndarray:
        return self._cached_array("betas", "beta")

    @property
    def revenue_rates(self) -> np.ndarray:
        return self._cached_array("revenue_rates", "revenue_rate")

    @property
    def utility_rates(self) -> np.ndarray:
        return self._cached_array("utility_rates", "utility_rate")

    @property
    def unconstrained_per_capita_load(self) -> float:
        """``sum_i alpha_i * theta_hat_i`` — the per-capita capacity at which
        every CP can be served at its unconstrained throughput."""
        return float(np.sum(self.alphas * self.theta_hats))

    # -- vectorised demand evaluation -----------------------------------------
    @property
    def _demand_groups(self) -> tuple:
        """Providers grouped by demand family, with packed parameter arrays.

        Each entry is ``(family_type, index_array, packed_parameters)``; the
        packed form is whatever the family's
        :meth:`~repro.network.demand.DemandFunction.pack_parameters` returns.
        Cached on first access — the equilibrium solvers evaluate demands
        thousands of times per solve.
        """
        if self._demand_groups_cache is None:
            by_family: dict[type, list[int]] = {}
            for index, cp in enumerate(self._providers):
                by_family.setdefault(type(cp.demand), []).append(index)
            built = []
            for family, indices in by_family.items():
                functions = [self._providers[i].demand for i in indices]
                built.append((family, np.array(indices, dtype=np.intp),
                              family.pack_parameters(functions)))
            self._demand_groups_cache = tuple(built)
        return self._demand_groups_cache

    @property
    def _all_exponential(self) -> bool:
        """True when every provider uses the Equation-(3) exponential demand."""
        groups = self._demand_groups
        return (len(groups) == 0
                or (len(groups) == 1
                    and groups[0][0] is ExponentialSensitivityDemand))

    @property
    def exponential_parameters(self) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(theta_hats, betas)`` when the fast exponential path applies.

        Returns ``None`` unless every provider carries an
        :class:`~repro.network.demand.ExponentialSensitivityDemand` whose
        ``theta_hat`` equals the provider's own (always true for the default
        demand).  The equilibrium solvers use this to decide whether the
        sorted-prefix carried-load profile is exact for this population.
        """
        if len(self._providers) == 0:
            return self.theta_hats, self.betas
        if not self._all_exponential:
            return None
        _, _, packed = self._demand_groups[0]
        demand_theta_hats, betas = packed
        if not np.array_equal(demand_theta_hats, self.theta_hats):
            return None
        return self.theta_hats, betas

    def demands_at(self, thetas: np.ndarray) -> np.ndarray:
        """Demand fractions ``d_i(theta_i)`` for one or many throughput profiles.

        ``thetas`` may be a single profile of shape ``(n,)`` or a stack of
        profiles of shape ``(..., n)`` (the batched equilibrium engine passes
        a ``(grid, n)`` matrix); the result has the same shape.  Evaluation
        is vectorised per demand family via the closed-form batch kernels in
        :mod:`repro.network.demand`.
        """
        thetas = np.asarray(thetas, dtype=float)
        size = len(self._providers)
        if thetas.ndim == 0 or thetas.shape[-1] != size:
            raise ModelValidationError(
                f"throughput profile has shape {thetas.shape}, expected "
                f"(..., {size})"
            )
        groups = self._demand_groups
        if len(groups) == 1:
            family, _, packed = groups[0]
            return family.batch_evaluate_packed(packed, thetas)
        demands = np.empty(thetas.shape, dtype=float)
        for family, indices, packed in groups:
            demands[..., indices] = family.batch_evaluate_packed(
                packed, thetas[..., indices])
        return demands

    # -- sub-population helpers ---------------------------------------------
    def subset(self, indices: Iterable[int]) -> "Population":
        """Sub-population selected by provider index (order-preserving)."""
        index_list = sorted(set(int(i) for i in indices))
        for i in index_list:
            if i < 0 or i >= len(self._providers):
                raise ModelValidationError(f"provider index {i} out of range")
        return Population(self._providers[i] for i in index_list)

    def index_of(self, name: str) -> int:
        """Index of the provider with the given name."""
        for i, cp in enumerate(self._providers):
            if cp.name == name:
                return i
        raise KeyError(name)

    def with_utility_rates(self, utility_rates: Sequence[float]) -> "Population":
        """New population with the consumer utility rates ``phi_i`` replaced."""
        if len(utility_rates) != len(self._providers):
            raise ModelValidationError(
                "utility_rates length must match the population size"
            )
        return Population(
            cp.with_utility_rate(float(phi))
            for cp, phi in zip(self._providers, utility_rates)
        )

    def sorted_by_revenue(self, descending: bool = True) -> "Population":
        """Population re-ordered by CP-side revenue rate ``v_i``."""
        ordered = sorted(
            self._providers, key=lambda cp: cp.revenue_rate, reverse=descending
        )
        return Population(ordered)

    def describe(self) -> dict:
        """Summary statistics of the population (used by the CLI/examples)."""
        return {
            "count": len(self._providers),
            "mean_alpha": float(np.mean(self.alphas)) if self._providers else 0.0,
            "mean_theta_hat": float(np.mean(self.theta_hats)) if self._providers else 0.0,
            "mean_beta": float(np.mean(self.betas)) if self._providers else 0.0,
            "mean_revenue_rate": float(np.mean(self.revenue_rates)) if self._providers else 0.0,
            "mean_utility_rate": float(np.mean(self.utility_rates)) if self._providers else 0.0,
            "unconstrained_per_capita_load": (
                self.unconstrained_per_capita_load if self._providers else 0.0
            ),
        }
