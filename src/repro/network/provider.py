"""Content-provider model and populations (Section II of the paper).

Each content provider (CP) ``i`` is described by:

* ``alpha`` — popularity, the fraction of consumers that ever access the CP
  (``alpha_i`` in the paper, in ``(0, 1]``);
* ``theta_hat`` — the unconstrained per-user throughput (``theta_hat_i``);
* ``beta`` — throughput sensitivity, the shape parameter of the exponential
  demand function of Equation (3);
* ``revenue_rate`` — the CP-side per-unit-traffic revenue ``v_i`` used when
  the CP decides whether to pay for the premium class;
* ``utility_rate`` — the consumer-side per-unit-traffic utility ``phi_i``
  entering the consumer surplus.

A CP may override the default exponential demand function with any
:class:`~repro.network.demand.DemandFunction`.  :class:`Population` is an
immutable ordered collection of CPs stored *columnar*: one contiguous numpy
array per field, with :class:`ContentProvider` objects materialised lazily
only when a caller actually indexes into the sequence.  The solvers operate
exclusively on the column arrays, so populations of millions of CPs never
pay per-object Python overhead.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ModelValidationError
from repro.network.demand import DemandFunction, ExponentialSensitivityDemand

__all__ = ["ContentProvider", "Population"]

#: Relative slack when matching a custom demand's ``theta_hat`` against the
#: provider's own.
_THETA_HAT_MATCH_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ContentProvider:
    """A single content provider in the three-party ecosystem.

    Parameters mirror the paper's notation; see the module docstring.  The
    ``demand`` field defaults to the exponential-sensitivity demand of
    Equation (3) built from ``theta_hat`` and ``beta``.
    """

    name: str
    alpha: float
    theta_hat: float
    beta: float = 1.0
    revenue_rate: float = 0.0
    utility_rate: float = 0.0
    demand: Optional[DemandFunction] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelValidationError("content provider needs a non-empty name")
        if not (0.0 < self.alpha <= 1.0):
            raise ModelValidationError(
                f"alpha (popularity) must lie in (0, 1], got {self.alpha!r}"
            )
        if not math.isfinite(self.theta_hat) or self.theta_hat <= 0.0:
            raise ModelValidationError(
                f"theta_hat must be positive and finite, got {self.theta_hat!r}"
            )
        if not math.isfinite(self.beta) or self.beta < 0.0:
            raise ModelValidationError(
                f"beta must be non-negative and finite, got {self.beta!r}"
            )
        if not math.isfinite(self.revenue_rate) or self.revenue_rate < 0.0:
            raise ModelValidationError(
                f"revenue_rate (v_i) must be non-negative, got {self.revenue_rate!r}"
            )
        if not math.isfinite(self.utility_rate) or self.utility_rate < 0.0:
            raise ModelValidationError(
                f"utility_rate (phi_i) must be non-negative, got {self.utility_rate!r}"
            )
        if self.demand is None:
            object.__setattr__(
                self,
                "demand",
                ExponentialSensitivityDemand(self.theta_hat, self.beta),
            )
        elif (abs(self.demand.theta_hat - self.theta_hat)
                > _THETA_HAT_MATCH_TOLERANCE * self.theta_hat):
            raise ModelValidationError(
                "demand.theta_hat must match the provider's theta_hat "
                f"({self.demand.theta_hat} != {self.theta_hat})"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities used throughout the paper.
    # ------------------------------------------------------------------ #
    @property
    def unconstrained_per_capita_rate(self) -> float:
        """``alpha_i * theta_hat_i`` — per-capita unconstrained throughput.

        The paper's ``lambda_hat_i`` equals ``alpha_i * M * theta_hat_i``;
        dividing by the consumer size ``M`` gives this per-capita quantity,
        which is what the per-capita capacity ``nu`` is compared against.
        """
        return self.alpha * self.theta_hat

    def demand_at(self, theta: float) -> float:
        """Demand fraction ``d_i(theta)`` (Assumption 1 compliant)."""
        assert self.demand is not None
        return self.demand(theta)

    def rho(self, theta: float) -> float:
        """Per-capita throughput over the CP's own user base (Equation 5).

        ``rho_i(theta) = d_i(theta) * theta`` — throughput per member of the
        CP's user base, before weighting by the popularity ``alpha``.
        """
        theta_eff = min(theta, self.theta_hat)
        return self.demand_at(theta_eff) * theta_eff

    def per_capita_rate(self, theta: float) -> float:
        """Per-consumer throughput contribution ``alpha_i d_i(theta) theta``.

        Multiplying by the consumer size ``M`` recovers the paper's
        ``lambda_i`` of Equation (1).
        """
        return self.alpha * self.rho(theta)

    def throughput(self, theta: float, consumers: float) -> float:
        """Absolute aggregate throughput ``lambda_i`` for ``M = consumers``."""
        if consumers < 0.0:
            raise ModelValidationError("consumer size must be non-negative")
        return consumers * self.per_capita_rate(theta)

    def utility(self, per_capita_rate: float, consumers: float,
                premium_price: float = 0.0) -> float:
        """CP profit (Equation 4) given its realised per-capita rate.

        ``premium_price`` is the per-unit-traffic charge ``c`` if the CP is in
        the premium class, or 0 in the ordinary class.
        """
        margin = self.revenue_rate - premium_price
        return margin * per_capita_rate * consumers

    def with_utility_rate(self, utility_rate: float) -> "ContentProvider":
        """Copy of this CP with a different consumer utility rate ``phi_i``."""
        return replace(self, utility_rate=utility_rate)

    def with_revenue_rate(self, revenue_rate: float) -> "ContentProvider":
        """Copy of this CP with a different CP-side revenue rate ``v_i``."""
        return replace(self, revenue_rate=revenue_rate)


def _is_default_demand(provider: ContentProvider) -> bool:
    """True when the CP's demand is the Equation-(3) default for its params."""
    demand = provider.demand
    return (type(demand) is ExponentialSensitivityDemand
            and demand.theta_hat == provider.theta_hat
            and demand.beta == provider.beta)


#: Column order of the structure-of-arrays backing store.
_COLUMN_KEYS = ("alphas", "theta_hats", "betas", "revenue_rates",
                "utility_rates")


def _readonly(array: np.ndarray) -> np.ndarray:
    """Contiguous read-only float64 view of an *internally owned* array.

    Caller-supplied arrays must be copied before reaching this (the public
    constructors do), since the writeable flag is cleared in place.
    """
    out = np.ascontiguousarray(array, dtype=float)
    out.flags.writeable = False
    return out


class Population(Sequence[ContentProvider]):
    """Immutable ordered collection of content providers.

    The backing store is *columnar*: one contiguous read-only float64 array
    per CP field (structure-of-arrays).  The ``Sequence[ContentProvider]``
    API is a thin view — :class:`ContentProvider` objects are materialised
    lazily per index and cached, so iterating small populations behaves
    exactly as before while solver-facing code (vectorised accessors,
    :meth:`subset`, :meth:`demands_at`) never touches per-CP objects.

    Equality and hashing are by column *value* (plus names and any custom
    demand functions), so two populations with identical parameters share
    solver cache entries — the cache keys are effectively column-view
    fingerprints rather than object identities.
    """

    def __init__(self, providers: Iterable[ContentProvider]) -> None:
        provider_list = list(providers)
        names = tuple(cp.name for cp in provider_list)
        if len(set(names)) != len(names):
            raise ModelValidationError("content provider names must be unique")
        columns = {
            "alphas": np.array([cp.alpha for cp in provider_list], dtype=float),
            "theta_hats": np.array([cp.theta_hat for cp in provider_list],
                                   dtype=float),
            "betas": np.array([cp.beta for cp in provider_list], dtype=float),
            "revenue_rates": np.array([cp.revenue_rate for cp in provider_list],
                                      dtype=float),
            "utility_rates": np.array([cp.utility_rate for cp in provider_list],
                                      dtype=float),
        }
        demands = (None if all(_is_default_demand(cp) for cp in provider_list)
                   else tuple(cp.demand for cp in provider_list))
        self._init_state(columns, names=names, name_prefix=None,
                         demands=demands, provider_cache=provider_list)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_columns(cls, alphas: np.ndarray, theta_hats: np.ndarray,
                     betas: Optional[np.ndarray] = None,
                     revenue_rates: Optional[np.ndarray] = None,
                     utility_rates: Optional[np.ndarray] = None, *,
                     names: Optional[Sequence[str]] = None,
                     name_prefix: str = "cp") -> "Population":
        """Build a population directly from parameter columns (no CP objects).

        This is the million-CP entry point: validation is vectorised, names
        are generated lazily from ``name_prefix`` (``cp-0000`` style, matching
        :func:`repro.workloads.populations.random_population`) unless an
        explicit ``names`` sequence is given, and every provider uses the
        default Equation-(3) exponential demand.
        """
        alphas = np.atleast_1d(np.array(alphas, dtype=float))
        theta_hats = np.atleast_1d(np.array(theta_hats, dtype=float))
        size = len(alphas)

        def column(values: Optional[np.ndarray], default: float) -> np.ndarray:
            if values is None:
                return np.full(size, default)
            # Copy: the backing store is frozen in place, and the caller's
            # array must stay writeable.
            return np.atleast_1d(np.array(values, dtype=float))

        columns = {
            "alphas": alphas,
            "theta_hats": theta_hats,
            "betas": column(betas, 1.0),
            "revenue_rates": column(revenue_rates, 0.0),
            "utility_rates": column(utility_rates, 0.0),
        }
        for key, array in columns.items():
            if array.ndim != 1 or len(array) != size:
                raise ModelValidationError(
                    f"{key} must be a 1-D column of length {size}, "
                    f"got shape {array.shape}")
        if np.any(~((columns["alphas"] > 0.0) & (columns["alphas"] <= 1.0))):
            raise ModelValidationError(
                "alpha (popularity) must lie in (0, 1] for every provider")
        if np.any(~(np.isfinite(columns["theta_hats"])
                    & (columns["theta_hats"] > 0.0))):
            raise ModelValidationError(
                "theta_hat must be positive and finite for every provider")
        for key, label in (("betas", "beta"),
                           ("revenue_rates", "revenue_rate (v_i)"),
                           ("utility_rates", "utility_rate (phi_i)")):
            if np.any(~(np.isfinite(columns[key]) & (columns[key] >= 0.0))):
                raise ModelValidationError(
                    f"{label} must be non-negative and finite for every "
                    "provider")
        name_tuple: Optional[tuple[str, ...]] = None
        if names is not None:
            name_tuple = tuple(str(name) for name in names)
            if len(name_tuple) != size:
                raise ModelValidationError(
                    "names length must match the population size")
            if any(not name for name in name_tuple):
                raise ModelValidationError(
                    "content provider needs a non-empty name")
            if len(set(name_tuple)) != size:
                raise ModelValidationError(
                    "content provider names must be unique")
        return cls._from_state(columns, names=name_tuple,
                               name_prefix=name_prefix, demands=None,
                               provider_cache=None)

    @classmethod
    def _from_state(cls, columns: Mapping[str, np.ndarray], *,
                    names: Optional[tuple[str, ...]],
                    name_prefix: Optional[str],
                    demands: Optional[tuple[Any, ...]],
                    provider_cache: Optional[list[Optional[ContentProvider]]],
                    ) -> "Population":
        self = object.__new__(cls)
        self._init_state(columns, names=names, name_prefix=name_prefix,
                         demands=demands, provider_cache=provider_cache)
        return self

    def _init_state(self, columns: Mapping[str, np.ndarray], *,
                    names: Optional[tuple[str, ...]],
                    name_prefix: Optional[str],
                    demands: Optional[tuple[Any, ...]],
                    provider_cache: Optional[list[Optional[ContentProvider]]],
                    ) -> None:
        self._columns = {key: _readonly(columns[key]) for key in _COLUMN_KEYS}
        self._size = len(self._columns["alphas"])
        self._names: Optional[tuple[str, ...]] = names
        self._name_prefix: Optional[str] = name_prefix
        #: ``None`` means every provider uses the default exponential demand;
        #: otherwise a per-provider tuple of demand objects.
        self._demands: Optional[tuple[Any, ...]] = demands
        self._provider_cache: Optional[list[Optional[ContentProvider]]] = (
            provider_cache)
        # Lazily-populated caches.  A Population is immutable, so the hash,
        # the demand grouping and the name index are computed at most once.
        self._hash: Optional[int] = None
        self._digest: Optional[bytes] = None
        self._demand_groups_cache: Optional[tuple[Any, ...]] = None
        self._name_index: Optional[dict[str, int]] = None

    # -- lazy per-provider views ---------------------------------------------
    def _name_at(self, index: int) -> str:
        if self._names is not None:
            return self._names[index]
        return f"{self._name_prefix}-{index:04d}"

    def _provider_at(self, index: int) -> ContentProvider:
        if self._provider_cache is None:
            self._provider_cache = [None] * self._size
        provider = self._provider_cache[index]
        if provider is None:
            provider = ContentProvider(
                name=self._name_at(index),
                alpha=float(self._columns["alphas"][index]),
                theta_hat=float(self._columns["theta_hats"][index]),
                beta=float(self._columns["betas"][index]),
                revenue_rate=float(self._columns["revenue_rates"][index]),
                utility_rate=float(self._columns["utility_rates"][index]),
                demand=None if self._demands is None else self._demands[index],
            )
            self._provider_cache[index] = provider
        return provider

    def _take(self, indices: np.ndarray) -> "Population":
        """Sub-population view at the given (unique) index array."""
        indices = np.asarray(indices, dtype=np.intp)
        columns = {key: array[indices]
                   for key, array in self._columns.items()}
        names = tuple(self._name_at(int(i)) for i in indices)
        demands = (None if self._demands is None
                   else tuple(self._demands[int(i)] for i in indices))
        cache = (None if self._provider_cache is None
                 else [self._provider_cache[int(i)] for i in indices])
        return Population._from_state(columns, names=names, name_prefix=None,
                                      demands=demands, provider_cache=cache)

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[ContentProvider]:
        return (self._provider_at(i) for i in range(self._size))

    def __getitem__(self, index: Union[int, slice],  # type: ignore[override]
                    ) -> Union[ContentProvider, "Population"]:
        if isinstance(index, slice):
            return self._take(np.arange(self._size)[index])
        i = int(index)
        if i < 0:
            i += self._size
        if not 0 <= i < self._size:
            raise IndexError("population index out of range")
        return self._provider_at(i)

    def __contains__(self, item: object) -> bool:
        return any(provider == item for provider in self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Population):
            return NotImplemented
        if self._size != other._size:
            return False
        for key in _COLUMN_KEYS:
            if not np.array_equal(self._columns[key], other._columns[key]):
                return False
        if self._demands != other._demands:
            return False
        if (self._names is None and other._names is None
                and self._name_prefix == other._name_prefix):
            return True
        return self.names == other.names

    def fingerprint(self) -> bytes:
        """Digest of the column values — the cache-key identity of the view.

        Two populations with byte-identical columns share the fingerprint
        (names and custom demand objects are resolved by ``__eq__`` on the
        rare hash collision), so solver caches keyed on the population are
        keyed on column *content*, not object identity.
        """
        if self._digest is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self._size.to_bytes(8, "little"))
            for key in _COLUMN_KEYS:
                digest.update(self._columns[key].data)
            self._digest = digest.digest()
        return self._digest

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = int.from_bytes(self.fingerprint()[:8], "little",
                                        signed=True)
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Population(n={self._size})"

    # -- vectorised accessors ----------------------------------------------
    # The returned arrays are the backing columns themselves, contiguous and
    # read-only: callers that need to mutate them must take a copy (the
    # solvers already do).
    @property
    def names(self) -> tuple[str, ...]:
        if self._names is None:
            self._names = tuple(self._name_at(i) for i in range(self._size))
        return self._names

    @property
    def alphas(self) -> np.ndarray:
        return self._columns["alphas"]

    @property
    def theta_hats(self) -> np.ndarray:
        return self._columns["theta_hats"]

    @property
    def betas(self) -> np.ndarray:
        return self._columns["betas"]

    @property
    def revenue_rates(self) -> np.ndarray:
        return self._columns["revenue_rates"]

    @property
    def utility_rates(self) -> np.ndarray:
        return self._columns["utility_rates"]

    @property
    def unconstrained_per_capita_load(self) -> float:
        """``sum_i alpha_i * theta_hat_i`` — the per-capita capacity at which
        every CP can be served at its unconstrained throughput."""
        return float(np.sum(self.alphas * self.theta_hats))

    # -- vectorised demand evaluation -----------------------------------------
    @property
    def _demand_groups(self) -> tuple[Any, ...]:
        """Providers grouped by demand family, with packed parameter arrays.

        Each entry is ``(family_type, index_array, packed_parameters)``; the
        packed form is whatever the family's
        :meth:`~repro.network.demand.DemandFunction.pack_parameters` returns.
        For the all-default population the single exponential group is built
        straight from the columns — no demand objects are materialised.
        Cached on first access — the equilibrium solvers evaluate demands
        thousands of times per solve.
        """
        if self._demand_groups_cache is None:
            if self._demands is None:
                if self._size == 0:
                    self._demand_groups_cache = ()
                else:
                    self._demand_groups_cache = ((
                        ExponentialSensitivityDemand,
                        np.arange(self._size, dtype=np.intp),
                        (self.theta_hats, self.betas),
                    ),)
            else:
                by_family: dict[type, list[int]] = {}
                for index, demand in enumerate(self._demands):
                    by_family.setdefault(type(demand), []).append(index)
                built = []
                for family, indices in by_family.items():
                    functions = [self._demands[i] for i in indices]
                    built.append((family, np.array(indices, dtype=np.intp),
                                  family.pack_parameters(functions)))
                self._demand_groups_cache = tuple(built)
        return self._demand_groups_cache

    @property
    def _all_exponential(self) -> bool:
        """True when every provider uses the Equation-(3) exponential demand."""
        groups = self._demand_groups
        return (len(groups) == 0
                or (len(groups) == 1
                    and groups[0][0] is ExponentialSensitivityDemand))

    @property
    def exponential_parameters(self) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(theta_hats, betas)`` when the fast exponential path applies.

        Returns ``None`` unless every provider carries an
        :class:`~repro.network.demand.ExponentialSensitivityDemand` whose
        ``theta_hat`` equals the provider's own (always true for the default
        demand).  The equilibrium solvers use this to decide whether the
        sorted-prefix carried-load profile is exact for this population.
        """
        if self._demands is None or self._size == 0:
            return self.theta_hats, self.betas
        if not self._all_exponential:
            return None
        _, _, packed = self._demand_groups[0]
        demand_theta_hats, betas = packed
        if not np.array_equal(demand_theta_hats, self.theta_hats):
            return None
        return self.theta_hats, betas

    def demands_at(self, thetas: np.ndarray) -> np.ndarray:
        """Demand fractions ``d_i(theta_i)`` for one or many throughput profiles.

        ``thetas`` may be a single profile of shape ``(n,)`` or a stack of
        profiles of shape ``(..., n)`` (the batched equilibrium engine passes
        a ``(grid, n)`` matrix); the result has the same shape.  Evaluation
        is vectorised per demand family via the closed-form batch kernels in
        :mod:`repro.network.demand`.
        """
        thetas = np.asarray(thetas, dtype=float)
        size = self._size
        if thetas.ndim == 0 or thetas.shape[-1] != size:
            raise ModelValidationError(
                f"throughput profile has shape {thetas.shape}, expected "
                f"(..., {size})"
            )
        groups = self._demand_groups
        if len(groups) == 1:
            family, _, packed = groups[0]
            return family.batch_evaluate_packed(packed, thetas)
        demands = np.empty(thetas.shape, dtype=float)
        for family, indices, packed in groups:
            demands[..., indices] = family.batch_evaluate_packed(
                packed, thetas[..., indices])
        return demands

    # -- sub-population helpers ---------------------------------------------
    def subset(self, indices: Iterable[int]) -> "Population":
        """Sub-population selected by provider index (order-preserving).

        A columnar index-view: the child population fancy-indexes the parent
        columns, so no :class:`ContentProvider` objects are created.
        """
        index_list = sorted(set(int(i) for i in indices))
        for i in index_list:
            if i < 0 or i >= self._size:
                raise ModelValidationError(f"provider index {i} out of range")
        return self._take(np.array(index_list, dtype=np.intp))

    def index_of(self, name: str) -> int:
        """Index of the provider with the given name."""
        if self._name_index is None:
            self._name_index = {n: i for i, n in enumerate(self.names)}
        return self._name_index[name]

    def with_utility_rates(self, utility_rates: Sequence[float]) -> "Population":
        """New population with the consumer utility rates ``phi_i`` replaced."""
        rates = np.atleast_1d(np.array(utility_rates, dtype=float))
        if rates.ndim != 1 or len(rates) != self._size:
            raise ModelValidationError(
                "utility_rates length must match the population size"
            )
        bad = ~(np.isfinite(rates) & (rates >= 0.0))
        if np.any(bad):
            value = float(rates[np.nonzero(bad)[0][0]])
            raise ModelValidationError(
                f"utility_rate (phi_i) must be non-negative, got {value!r}"
            )
        columns = dict(self._columns)
        columns["utility_rates"] = rates
        return Population._from_state(
            columns, names=self._names, name_prefix=self._name_prefix,
            demands=self._demands, provider_cache=None)

    def sorted_by_revenue(self, descending: bool = True) -> "Population":
        """Population re-ordered by CP-side revenue rate ``v_i``."""
        revenues = self.revenue_rates
        if descending:
            order = np.argsort(-revenues, kind="stable")
        else:
            order = np.argsort(revenues, kind="stable")
        return self._take(order)

    def describe(self) -> dict[str, float]:
        """Summary statistics of the population (used by the CLI/examples)."""
        return {
            "count": self._size,
            "mean_alpha": float(np.mean(self.alphas)) if self._size else 0.0,
            "mean_theta_hat": float(np.mean(self.theta_hats)) if self._size else 0.0,
            "mean_beta": float(np.mean(self.betas)) if self._size else 0.0,
            "mean_revenue_rate": float(np.mean(self.revenue_rates)) if self._size else 0.0,
            "mean_utility_rate": float(np.mean(self.utility_rates)) if self._size else 0.0,
            "unconstrained_per_capita_load": (
                self.unconstrained_per_capita_load if self._size else 0.0
            ),
        }
