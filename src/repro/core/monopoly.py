"""The two-stage monopoly game of Section III.

A single last-mile ISP with per-capita capacity ``nu`` announces a strategy
``s_I = (kappa, c)``; the CPs then partition themselves across the ordinary
and premium classes (second-stage game of :mod:`repro.core.cp_game`).  The
monopolist's payoff is the premium revenue ``Psi``; the welfare benchmark is
the per-capita consumer surplus ``Phi``.

Key paper results reproduced here:

* Theorem 4 — for a fixed price, larger ``kappa`` (weakly) increases the
  monopolist's revenue, so ``kappa = 1`` is always among the optimal
  capacity splits (verified numerically by
  :meth:`MonopolyGame.verify_kappa_dominance`);
* Figures 4 and 5 — the revenue-optimal price can sit in a region where the
  premium class is deliberately under-utilised and consumer surplus is
  falling (the misalignment that motivates regulation or a Public Option).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backends.config import SolverConfig, resolve_config
from repro.errors import ModelValidationError
from repro.core.cp_game import CPPartitionGame, PartitionOutcome
from repro.core.strategy import ISPStrategy, NEUTRAL_STRATEGY
from repro.core.surplus import SurplusBreakdown, welfare_report
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population

__all__ = ["MonopolyOutcome", "MonopolyGame"]


@dataclass(frozen=True)
class MonopolyOutcome:
    """Outcome of the monopoly game for one ISP strategy."""

    strategy: ISPStrategy
    partition: PartitionOutcome

    @property
    def consumer_surplus(self) -> float:
        """Per-capita consumer surplus ``Phi``."""
        return self.partition.consumer_surplus

    @property
    def isp_surplus(self) -> float:
        """Per-capita ISP revenue ``Psi`` from the premium class."""
        return self.partition.isp_surplus

    @property
    def premium_saturated(self) -> bool:
        return self.partition.premium_saturated

    @property
    def capacity_utilization(self) -> float:
        return self.partition.capacity_utilization

    @property
    def premium_provider_count(self) -> int:
        return len(self.partition.premium_indices)

    def welfare(self) -> SurplusBreakdown:
        return welfare_report(self.partition)


class MonopolyGame:
    """The two-stage game ``(M, mu, N, I)`` with a single last-mile ISP.

    Parameters
    ----------
    population:
        The content providers ``N``.
    nu:
        Per-capita capacity of the monopolist (``mu / M``).
    mechanism:
        Rate-allocation mechanism within each service class (defaults to
        max-min fair, as in the paper).
    equilibrium_kind:
        ``"competitive"`` (Definition 3, default) or ``"nash"``
        (Definition 2) for the second stage.
    config:
        Solver configuration threaded into every second-stage solve.
    """

    def __init__(self, population: Population, nu: float,
                 mechanism: Optional[RateAllocationMechanism] = None,
                 equilibrium_kind: str = "competitive",
                 config: Optional[SolverConfig] = None) -> None:
        if not math.isfinite(nu) or nu < 0.0:
            raise ModelValidationError(f"nu must be non-negative, got {nu!r}")
        if equilibrium_kind not in ("competitive", "nash"):
            raise ModelValidationError(
                f"equilibrium_kind must be 'competitive' or 'nash', got {equilibrium_kind!r}"
            )
        self.population = population
        self.nu = float(nu)
        self.mechanism = mechanism
        self.equilibrium_kind = equilibrium_kind
        self.config = resolve_config(config)

    # ------------------------------------------------------------------ #
    # Second-stage outcomes
    # ------------------------------------------------------------------ #
    def outcome(self, strategy: ISPStrategy) -> MonopolyOutcome:
        """Outcome (second-stage equilibrium) for one first-stage strategy.

        Second-stage solves run on the batched equilibrium engine: partition
        outcomes and per-class equilibria are memoised across strategies and
        capacities, so grid searches (``price_sweep``, ``revenue_optimal``,
        ``verify_kappa_dominance``) never re-solve a sub-problem.
        """
        game = CPPartitionGame(self.population, self.nu, strategy, self.mechanism,
                               config=self.config)
        if self.equilibrium_kind == "nash":
            partition = game.nash_equilibrium()
        else:
            partition = game.competitive_equilibrium()
        return MonopolyOutcome(strategy=strategy, partition=partition)

    def neutral_outcome(self) -> MonopolyOutcome:
        """Outcome under strict network-neutral regulation (``kappa = 0``)."""
        return self.outcome(NEUTRAL_STRATEGY)

    def price_sweep(self, prices: Iterable[float], kappa: float = 1.0
                    ) -> List[MonopolyOutcome]:
        """Outcomes over a price grid at fixed ``kappa`` (Figure 4)."""
        return [self.outcome(ISPStrategy(kappa, float(price))) for price in prices]

    def capacity_sweep(self, strategy: ISPStrategy, nus: Iterable[float]
                       ) -> List[MonopolyOutcome]:
        """Outcomes of the same strategy at different capacities (Figure 5)."""
        outcomes = []
        for nu in nus:
            game = MonopolyGame(self.population, float(nu), self.mechanism,
                                self.equilibrium_kind, config=self.config)
            outcomes.append(game.outcome(strategy))
        return outcomes

    # ------------------------------------------------------------------ #
    # First-stage optimisation (backward induction over a strategy grid)
    # ------------------------------------------------------------------ #
    def _best_by(self, strategies: Sequence[ISPStrategy], key: str
                 ) -> Tuple[MonopolyOutcome, List[MonopolyOutcome]]:
        if not strategies:
            raise ModelValidationError("strategy grid must not be empty")
        outcomes = [self.outcome(s) for s in strategies]
        if key == "isp_surplus":
            # Break revenue ties in favour of the consumer (higher Phi), then
            # lower kappa — the least intrusive of the revenue-equal options.
            best = max(outcomes, key=lambda o: (o.isp_surplus, o.consumer_surplus,
                                                -o.strategy.kappa))
        else:
            best = max(outcomes, key=lambda o: (o.consumer_surplus, -o.isp_surplus,
                                                -o.strategy.kappa))
        return best, outcomes

    def revenue_optimal(self, strategies: Sequence[ISPStrategy]
                        ) -> MonopolyOutcome:
        """The monopolist's revenue-maximising strategy over a grid."""
        best, _ = self._best_by(strategies, "isp_surplus")
        return best

    def surplus_optimal(self, strategies: Sequence[ISPStrategy]
                        ) -> MonopolyOutcome:
        """The consumer-surplus-maximising strategy over a grid."""
        best, _ = self._best_by(strategies, "consumer_surplus")
        return best

    def optimal_price(self, prices: Sequence[float], kappa: float = 1.0
                      ) -> MonopolyOutcome:
        """Revenue-optimal price at a fixed capacity split ``kappa``."""
        strategies = [ISPStrategy(kappa, float(price)) for price in prices]
        return self.revenue_optimal(strategies)

    # ------------------------------------------------------------------ #
    # Theorem 4: kappa-dominance
    # ------------------------------------------------------------------ #
    def verify_kappa_dominance(self, price: float,
                               kappas: Sequence[float],
                               tolerance: float = 1e-9) -> Dict[str, Any]:
        """Numerically check Theorem 4 at a fixed price.

        Returns a report with the revenue at each ``kappa``; ``holds`` is
        true when ``kappa = 1`` achieves (weakly) the highest revenue among
        the supplied capacity splits.
        """
        kappa_values = sorted(set(float(k) for k in kappas) | {1.0})
        revenues = {}
        for kappa in kappa_values:
            revenues[kappa] = self.outcome(ISPStrategy(kappa, price)).isp_surplus
        top = revenues[1.0]
        holds = all(top >= revenue - tolerance * max(1.0, abs(revenue))
                    for revenue in revenues.values())
        return {"price": price, "revenues": revenues, "holds": holds}
