"""Second-stage game: content providers choose a service class.

Given an ISP strategy ``s_I = (kappa, c)``, every content provider (CP)
simultaneously decides whether to join the free *ordinary* class (capacity
share ``1 - kappa``) or the charged *premium* class (capacity share
``kappa``, price ``c`` per unit traffic).  The paper analyses this
simultaneous-move game under two solution concepts:

* the **Nash equilibrium** of Definition 2, where each CP evaluates its
  exact ex-post throughput in either class (including its own impact on the
  class's congestion); and
* the **competitive ("throughput-taking") equilibrium** of Definition 3,
  appropriate when the number of CPs is large: a CP estimates its ex-post
  throughput from the class's current congestion level, exactly as a
  price-taking firm treats the market price as given.  Under the max-min
  fair mechanism the natural estimate is ``theta_i = min(theta_hat_i, t)``
  where ``t`` is the class's common throughput cap.

Ties are always broken towards the ordinary class, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.backends.config import SolverConfig, resolve_config
from repro.cache import LRUCache
from repro.errors import ModelValidationError
from repro.core.strategy import ISPStrategy
from repro.network.allocation import (
    CommonCapAllocation,
    MaxMinFairAllocation,
    RateAllocationMechanism,
)
from repro.network.equilibrium import (
    RateEquilibrium,
    cached_class_cap,
    cached_class_cap_for_mask,
    cached_subset_equilibrium,
    mechanism_cache_key,
)
from repro.network.provider import Population

__all__ = [
    "PartitionOutcome",
    "CPPartitionGame",
    "competitive_equilibrium",
    "nash_equilibrium",
]

#: Relative tolerance used when comparing CP utilities across classes — the
#: documented default of ``SolverConfig.surplus_tolerance``; per game it is
#: read from the config (``self._utility_tolerance``).
_UTILITY_TOLERANCE = 1e-9

#: Relative slack on the premium class's capacity-saturation predicate.
_SATURATION_TOLERANCE = 1e-6

#: Floor of the relative-utility scale, guarding zero-utility CPs.
_UTILITY_SCALE_FLOOR = 1e-12

#: Memoised second-stage outcomes.  The game is deterministic in its inputs,
#: so sharing an outcome across identical (population, nu, strategy, solver
#: configuration) queries is exact — the sweep and migration layers hit this
#: constantly (e.g. the Public Option ISP's outcome is identical across every
#: price grid point of Figure 7).
_PARTITION_CACHE = LRUCache(maxsize=512, name="partition_outcomes")


@dataclass(frozen=True)
class PartitionOutcome:
    """Equilibrium outcome of the second-stage CP partition game.

    The outcome records which providers joined each class, the internal rate
    equilibrium of both classes and how it was obtained.  All surplus
    quantities are per capita (divide-by-``M`` form of the paper).
    """

    population: Population
    nu: float
    strategy: ISPStrategy
    ordinary_indices: Tuple[int, ...]
    premium_indices: Tuple[int, ...]
    ordinary_equilibrium: RateEquilibrium
    premium_equilibrium: RateEquilibrium
    equilibrium_kind: str = "competitive"
    converged: bool = True
    iterations: int = 0

    # ---------------------------------------------------------------- #
    # Capacity bookkeeping
    # ---------------------------------------------------------------- #
    @property
    def ordinary_capacity(self) -> float:
        """Per-capita capacity of the ordinary class, ``(1 - kappa) nu``."""
        return (1.0 - self.strategy.kappa) * self.nu

    @property
    def premium_capacity(self) -> float:
        """Per-capita capacity of the premium class, ``kappa nu``."""
        return self.strategy.kappa * self.nu

    @property
    def ordinary_carried_rate(self) -> float:
        """Per-capita aggregate rate carried in the ordinary class."""
        return self.ordinary_equilibrium.aggregate_rate

    @property
    def premium_carried_rate(self) -> float:
        """Per-capita aggregate rate carried in the premium class."""
        return self.premium_equilibrium.aggregate_rate

    @property
    def aggregate_rate(self) -> float:
        """Total per-capita carried rate across both classes."""
        return self.ordinary_carried_rate + self.premium_carried_rate

    @property
    def premium_saturated(self) -> bool:
        """True when the premium class capacity is fully used (``lambda_P = kappa mu``)."""
        capacity = self.premium_capacity
        if capacity <= 0.0:
            return True
        return self.premium_carried_rate >= capacity * (1.0 - _SATURATION_TOLERANCE)

    @property
    def capacity_utilization(self) -> float:
        """Fraction of the total per-capita capacity carried across classes."""
        if self.nu <= 0.0:
            return 0.0
        return min(1.0, self.aggregate_rate / self.nu)

    # ---------------------------------------------------------------- #
    # Welfare
    # ---------------------------------------------------------------- #
    @property
    def consumer_surplus(self) -> float:
        """Per-capita consumer surplus ``Phi = Phi((1-kappa)nu, O) + Phi(kappa nu, P)``."""
        return (self.ordinary_equilibrium.consumer_surplus()
                + self.premium_equilibrium.consumer_surplus())

    @property
    def isp_surplus(self) -> float:
        """Per-capita ISP surplus ``Psi = c * lambda_P / M`` (CP-side revenue)."""
        return self.strategy.price * self.premium_carried_rate

    def cp_utilities(self) -> dict[str, float]:
        """Per-capita CP profits (Equation 4 divided by ``M``), keyed by name."""
        utilities: dict[str, float] = {}
        for class_indices, equilibrium, price in (
            (self.ordinary_indices, self.ordinary_equilibrium, 0.0),
            (self.premium_indices, self.premium_equilibrium, self.strategy.price),
        ):
            members = equilibrium.population
            for local_index, global_index in enumerate(sorted(class_indices)):
                provider = self.population[global_index]
                rate = equilibrium.per_capita_rates[local_index] if len(members) else 0.0
                utilities[provider.name] = (provider.revenue_rate - price) * float(rate)
        return utilities

    def assignment_by_name(self) -> dict[str, str]:
        """Mapping from CP name to its class (``"ordinary"`` / ``"premium"``)."""
        names = self.population.names
        assignment = {names[i]: "ordinary" for i in self.ordinary_indices}
        assignment.update({names[i]: "premium" for i in self.premium_indices})
        return assignment

    @property
    def premium_share_of_providers(self) -> float:
        """Fraction of CPs that joined the premium class."""
        total = len(self.population)
        return len(self.premium_indices) / total if total else 0.0


class CPPartitionGame:
    """The second-stage simultaneous-move game ``(M, mu, N, s_I)``.

    Parameters
    ----------
    population:
        The content providers ``N``.
    nu:
        Per-capita capacity of the ISP serving this consumer group.
    strategy:
        The ISP's first-stage strategy ``(kappa, c)``.
    mechanism:
        Rate-allocation mechanism inside each class; defaults to max-min
        fairness as in the paper.
    throughput_estimator:
        How a CP estimates its ex-post throughput in a class under the
        competitive equilibrium (Definition 3): ``"class_cap"`` (default)
        uses the class's equilibrium throughput cap (``+inf`` when the class
        is uncongested); ``"max_member"`` uses the maximum member throughput,
        which is the paper's literal rule and coincides with the cap whenever
        the class is congested.
    switching_tolerance:
        Base relative utility gain a CP requires before switching classes
        (default ``1e-6``).  The competitive equilibrium of Definition 3 is
        an idealisation for a large number of *small* CPs; a provider whose
        own traffic is comparable to a class's capacity shifts that class's
        congestion when it moves, so an exact throughput-taking fixed point
        need not exist.  The solver therefore requires a CP's gain to exceed
        ``max(switching_tolerance, impact_i)`` where ``impact_i`` is the
        CP's unconstrained load relative to the destination class capacity —
        i.e. it computes an epsilon-equilibrium whose slack per CP matches
        the error of the throughput-taking approximation for that CP.  For
        the paper's 1000-CP workload the slack is negligible (< 1%).
        ``None`` (the default) uses ``config.switching_tolerance`` (1e-6).
    config:
        Solver configuration (kernel backend, tolerances, cache policy);
        ``None`` uses the ambient/default config.  The explicit
        ``switching_tolerance`` keyword, when given, wins over the config.
    """

    def __init__(self, population: Population, nu: float, strategy: ISPStrategy,
                 mechanism: Optional[RateAllocationMechanism] = None,
                 throughput_estimator: str = "class_cap",
                 switching_tolerance: Optional[float] = None,
                 config: Optional[SolverConfig] = None) -> None:
        if not math.isfinite(nu) or nu < 0.0:
            raise ModelValidationError(f"nu must be non-negative, got {nu!r}")
        if throughput_estimator not in ("class_cap", "max_member"):
            raise ModelValidationError(
                "throughput_estimator must be 'class_cap' or 'max_member', "
                f"got {throughput_estimator!r}"
            )
        if switching_tolerance is not None and switching_tolerance < 0.0:
            raise ModelValidationError(
                f"switching_tolerance must be non-negative, got {switching_tolerance!r}"
            )
        self.population = population
        self.nu = float(nu)
        self.strategy = strategy
        self.mechanism = mechanism if mechanism is not None else MaxMinFairAllocation()
        self.throughput_estimator = throughput_estimator
        self.config = resolve_config(config)
        if switching_tolerance is None:
            switching_tolerance = self.config.switching_tolerance
        self.switching_tolerance = float(switching_tolerance)
        self._utility_tolerance = self.config.surplus_tolerance
        self._theta_hats = population.theta_hats
        self._alphas = population.alphas
        self._revenues = population.revenue_rates
        #: Per-cap ``rho_i`` memo: the best-response loops re-evaluate the
        #: same handful of caps while marginal CPs bounce between classes.
        self._rho_cache: dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Class-level helpers
    # ------------------------------------------------------------------ #
    @property
    def ordinary_nu(self) -> float:
        return (1.0 - self.strategy.kappa) * self.nu

    @property
    def premium_nu(self) -> float:
        return self.strategy.kappa * self.nu

    def _class_equilibrium(self, indices: Sequence[int], class_nu: float
                           ) -> RateEquilibrium:
        return cached_subset_equilibrium(self.population, indices, class_nu,
                                         self.mechanism, config=self.config)

    def _class_cap(self, indices: Sequence[int], class_nu: float) -> float:
        """Throughput level a joining CP would take as given (Assumption 3)."""
        if class_nu <= 0.0:
            return 0.0
        if len(indices) == 0:
            return math.inf
        if (self.throughput_estimator == "class_cap"
                and isinstance(self.mechanism, CommonCapAllocation)):
            # Cap-only fast path: the batched engine solves the class cap
            # from array views of the parent population, without building a
            # Population object for the candidate class.
            return cached_class_cap(self.population, indices, class_nu,
                                    self.mechanism, config=self.config)
        equilibrium = self._class_equilibrium(indices, class_nu)
        if len(equilibrium.thetas) == 0:
            return math.inf
        return float(np.max(equilibrium.thetas))

    def _class_cap_for_mask(self, mask: np.ndarray, count: int,
                            class_nu: float) -> float:
        """Mask-native twin of :meth:`_class_cap` for the best-response loops.

        Identical result for identical membership; the boolean mask goes
        straight into the packed-bitmask cache key, so no index tuples or
        class ``Population`` objects are built per iteration.
        """
        if class_nu <= 0.0:
            return 0.0
        if count == 0:
            return math.inf
        if (self.throughput_estimator == "class_cap"
                and isinstance(self.mechanism, CommonCapAllocation)):
            return cached_class_cap_for_mask(self.population, mask, class_nu,
                                             self.mechanism, config=self.config)
        equilibrium = self._class_equilibrium(np.nonzero(mask)[0], class_nu)
        if len(equilibrium.thetas) == 0:
            return math.inf
        return float(np.max(equilibrium.thetas))

    def _rho_at_cap(self, cap: float) -> np.ndarray:
        """Per-user-base throughput ``rho_i`` every CP expects at a class cap."""
        rho = self._rho_cache.get(cap)
        if rho is None:
            if math.isinf(cap):
                thetas = self._theta_hats.copy()
            else:
                thetas = np.minimum(self._theta_hats, cap)
            demands = self.population.demands_at(thetas)
            rho = demands * thetas
            if len(self._rho_cache) >= 256:
                self._rho_cache.clear()
            self._rho_cache[cap] = rho
        return rho

    def _class_utilities(self, cap_ordinary: float, cap_premium: float
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-CP utilities of being in the ordinary / premium class.

        Both are evaluated under the throughput-taking estimate (condition 8):
        ``u_O = v_i rho_i(cap_O)`` and ``u_P = (v_i - c) rho_i(cap_P)``.
        """
        rho_ordinary = self._rho_at_cap(cap_ordinary)
        rho_premium = self._rho_at_cap(cap_premium)
        ordinary_utility = self._revenues * rho_ordinary
        premium_utility = (self._revenues - self.strategy.price) * rho_premium
        return ordinary_utility, premium_utility

    def _impact_tolerance(self, destination_nu: float) -> np.ndarray:
        """Per-CP relative slack when evaluating a move into a class.

        A CP's move shifts the destination class's congestion by roughly its
        own unconstrained load divided by the class capacity; its
        throughput-taking utility estimate carries an error of that order,
        so requiring a gain larger than it is the natural epsilon for the
        competitive equilibrium with finitely many, possibly heavy, CPs.
        """
        own_load = self._alphas * self._theta_hats
        if destination_nu <= 0.0:
            impact = np.ones_like(own_load)
        else:
            impact = np.minimum(1.0, own_load / destination_nu)
        return np.maximum(self.switching_tolerance, impact)

    def _violators(self, mask: np.ndarray, cap_ordinary: float,
                   cap_premium: float) -> np.ndarray:
        """CPs that want to switch classes (with the impact-scaled tolerance).

        A CP in the ordinary class switches only if the premium class is
        strictly better by more than its tolerance; a CP in the premium class
        switches only if the ordinary class is at least as good up to its
        tolerance (the paper's tie-break sends indifferent CPs to the
        ordinary class).
        """
        ordinary_utility, premium_utility = self._class_utilities(
            cap_ordinary, cap_premium)
        return self._violators_from(mask, ordinary_utility, premium_utility)

    def _violators_from(self, mask: np.ndarray, ordinary_utility: np.ndarray,
                        premium_utility: np.ndarray) -> np.ndarray:
        """:meth:`_violators` from precomputed class utilities.

        The best-response loops need both the violator set and the utility
        gap (for damping), so they evaluate :meth:`_class_utilities` once per
        iteration and share the arrays between the two.
        """
        scale = np.maximum(_UTILITY_SCALE_FLOOR,
                           np.maximum(np.abs(ordinary_utility),
                                      np.abs(premium_utility)))
        margin_into_premium = self._impact_tolerance(self.premium_nu) * scale
        margin_into_ordinary = self._impact_tolerance(self.ordinary_nu) * scale
        wants_premium = premium_utility > ordinary_utility + margin_into_premium
        wants_ordinary = premium_utility <= ordinary_utility - margin_into_ordinary
        # Exact ties break towards the ordinary class (the paper's rule), even
        # though near-ties inside the hysteresis band stay put.
        exactly_tied = (np.abs(premium_utility - ordinary_utility)
                        <= self._utility_tolerance * np.maximum(1.0, scale))
        wants_ordinary = wants_ordinary | exactly_tied
        return np.where(mask, wants_ordinary, wants_premium)

    def _preferences(self, cap_ordinary: float, cap_premium: float) -> np.ndarray:
        """Boolean mask of CPs that strictly prefer the premium class.

        Implements condition (8) without hysteresis: a CP prefers the premium
        class only when ``(v_i - c) rho_i(premium) > v_i rho_i(ordinary)``;
        ties go to the ordinary class.  Used for the initial guess.
        """
        ordinary_utility, premium_utility = self._class_utilities(
            cap_ordinary, cap_premium)
        margin = self._utility_tolerance * np.maximum(
            1.0, np.maximum(np.abs(ordinary_utility), np.abs(premium_utility)))
        return premium_utility > ordinary_utility + margin

    @staticmethod
    def _split(mask: np.ndarray) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        premium = tuple(int(i) for i in np.nonzero(mask)[0])
        ordinary = tuple(int(i) for i in np.nonzero(~mask)[0])
        return ordinary, premium

    def _build_outcome(self, mask: np.ndarray, kind: str, converged: bool,
                       iterations: int) -> PartitionOutcome:
        ordinary, premium = self._split(mask)
        ordinary_eq = self._class_equilibrium(ordinary, self.ordinary_nu)
        premium_eq = self._class_equilibrium(premium, self.premium_nu)
        return PartitionOutcome(
            population=self.population,
            nu=self.nu,
            strategy=self.strategy,
            ordinary_indices=ordinary,
            premium_indices=premium,
            ordinary_equilibrium=ordinary_eq,
            premium_equilibrium=premium_eq,
            equilibrium_kind=kind,
            converged=converged,
            iterations=iterations,
        )

    # ------------------------------------------------------------------ #
    # Outcome memoisation
    # ------------------------------------------------------------------ #
    def _outcome_key(self, kind: str, extra: tuple[Any, ...]) -> tuple[Any, ...]:
        """Cache key identifying this game instance and solver configuration.

        Everything that can influence the computed outcome is included, so a
        cache hit is exact: population (immutable), capacity, strategy,
        mechanism (by value), estimator and tolerances, solution concept and
        the solver's iteration limits / warm start.
        """
        return (self.population, self.nu, self.strategy.kappa,
                self.strategy.price, mechanism_cache_key(self.mechanism),
                self.throughput_estimator, self.switching_tolerance,
                self.config.cache_key(), kind) + extra

    @staticmethod
    def _initial_key(initial_premium: Optional[Iterable[int]]
                     ) -> Optional[tuple[int, ...]]:
        if initial_premium is None:
            return None
        return tuple(sorted({int(i) for i in initial_premium}))

    # ------------------------------------------------------------------ #
    # Competitive (throughput-taking) equilibrium — Definition 3
    # ------------------------------------------------------------------ #
    def competitive_equilibrium(self, max_iterations: int = 80,
                                repair_budget: Optional[int] = None,
                                initial_premium: Optional[Iterable[int]] = None
                                ) -> PartitionOutcome:
        """Compute a competitive equilibrium partition (Definition 3).

        The solver iterates synchronous best responses against the current
        class congestion caps; if the iteration cycles (which can happen for
        marginal CPs), it falls back to a sequential repair phase that moves
        one violating CP at a time, which terminates at a partition where at
        most a numerically negligible set of CPs would still want to switch.

        ``initial_premium`` warm-starts the iteration from a known partition
        (e.g. the equilibrium at a nearby capacity).  The consumer-migration
        solver no longer passes one — repeated solves are served by the
        outcome cache below instead — but the parameter remains for callers
        that want to select a specific equilibrium.

        Outcomes are memoised in a shared LRU cache: the game is
        deterministic, so identical queries (including the warm start, which
        can select a different equilibrium) return the identical outcome.
        """
        initial_key = self._initial_key(initial_premium)
        if self.config.cache_policy == "bypass":
            return self._competitive_equilibrium_uncached(
                max_iterations, repair_budget, initial_key)
        key = self._outcome_key(
            "competitive", (max_iterations, repair_budget, initial_key))
        return _PARTITION_CACHE.get_or_compute(
            key, lambda: self._competitive_equilibrium_uncached(
                max_iterations, repair_budget, initial_key)
        )  # type: ignore[return-value]

    def _competitive_equilibrium_uncached(
            self, max_iterations: int, repair_budget: Optional[int],
            initial_premium: Optional[tuple[int, ...]]) -> PartitionOutcome:
        size = len(self.population)
        if size == 0 or self.nu == 0.0:
            return self._build_outcome(np.zeros(size, dtype=bool),
                                       "competitive", True, 0)
        if self.strategy.kappa == 0.0:
            # Trivial profile: there is no premium capacity to sell.
            return self._build_outcome(np.zeros(size, dtype=bool),
                                       "competitive", True, 0)

        if initial_premium is not None:
            mask = np.zeros(size, dtype=bool)
            mask[list(initial_premium)] = True
            # CPs that cannot afford the price never belong to the premium
            # class; dropping them keeps the warm start consistent.
            mask &= self._revenues > self.strategy.price
        else:
            mask = self._revenues > self.strategy.price
        seen: dict[bytes, int] = {}
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            premium_count = int(np.count_nonzero(mask))
            cap_ordinary = self._class_cap_for_mask(
                ~mask, size - premium_count, self.ordinary_nu)
            cap_premium = self._class_cap_for_mask(
                mask, premium_count, self.premium_nu)
            ordinary_utility, premium_utility = self._class_utilities(
                cap_ordinary, cap_premium)
            violators = self._violators_from(mask, ordinary_utility,
                                             premium_utility)
            if not np.any(violators):
                return self._build_outcome(mask, "competitive", True, iterations)
            # Damped tatonnement: switch only the half of the violators with
            # the largest gains.  Switching everyone at once tends to
            # overshoot (the premium class empties and refills), whereas the
            # damped update converges in a handful of rounds.
            violator_indices = np.nonzero(violators)[0]
            gains = np.abs(premium_utility - ordinary_utility)[violator_indices]
            keep = max(1, (len(violator_indices) + 1) // 2)
            movers = violator_indices[np.argsort(gains)[::-1][:keep]]
            updated = mask.copy()
            updated[movers] = ~updated[movers]
            key = updated.tobytes()
            if key in seen:
                mask = updated
                break
            seen[key] = iterations
            mask = updated
        # Cycle (or iteration cap): repair sequentially.
        budget = repair_budget if repair_budget is not None else 4 * size
        mask, converged, extra = self._sequential_repair(mask, budget)
        return self._build_outcome(mask, "competitive", converged,
                                   iterations + extra)

    def _sequential_repair(self, mask: np.ndarray, budget: int
                           ) -> Tuple[np.ndarray, bool, int]:
        """Move one violating CP at a time until no violations remain.

        Each CP is allowed at most two moves during the repair phase; a
        marginal CP that keeps regretting its last move therefore settles
        after bouncing once, which (together with the hysteresis tolerance)
        guarantees termination.
        """
        moves = 0
        mask = mask.copy()
        size = len(mask)
        move_counts = np.zeros(size, dtype=int)
        while moves < budget:
            premium_count = int(np.count_nonzero(mask))
            cap_ordinary = self._class_cap_for_mask(
                ~mask, size - premium_count, self.ordinary_nu)
            cap_premium = self._class_cap_for_mask(
                mask, premium_count, self.premium_nu)
            ordinary_utility, premium_utility = self._class_utilities(
                cap_ordinary, cap_premium)
            violators = np.nonzero(self._violators_from(
                mask, ordinary_utility, premium_utility))[0]
            if len(violators) == 0:
                return mask, True, moves
            eligible = violators[move_counts[violators] < 2]
            if len(eligible) == 0:
                # Only bouncing marginal CPs remain: they sit inside the
                # O(1/N) band of the throughput-taking approximation.
                return mask, True, moves
            gains = np.abs(premium_utility - ordinary_utility)
            mover = eligible[int(np.argmax(gains[eligible]))]
            mask[mover] = ~mask[mover]
            move_counts[mover] += 1
            moves += 1
        return mask, False, moves

    def verify_competitive(self, outcome: PartitionOutcome) -> list[str]:
        """Names of CPs violating condition (8) beyond the solver tolerance."""
        mask = np.zeros(len(self.population), dtype=bool)
        mask[list(outcome.premium_indices)] = True
        cap_ordinary = self._class_cap(outcome.ordinary_indices, self.ordinary_nu)
        cap_premium = self._class_cap(outcome.premium_indices, self.premium_nu)
        violators = np.nonzero(self._violators(mask, cap_ordinary, cap_premium))[0]
        return [self.population.names[i] for i in violators]

    def expost_switch_gains(self, outcome: PartitionOutcome,
                            names: Optional[Iterable[str]] = None
                            ) -> dict[str, float]:
        """Exact relative gain each CP would realise by switching classes.

        Unlike the throughput-taking check of :meth:`verify_competitive`,
        this recomputes the destination class's equilibrium *with the CP
        included* (as in the Nash condition of Definition 2), so it measures
        the profit a CP would actually obtain by deviating.  A negative value
        means the deviation would hurt the CP.  By default only the
        throughput-taking violators are evaluated (the interesting cases);
        pass explicit names to audit any subset.
        """
        if names is None:
            names = self.verify_competitive(outcome)
        premium_set = set(outcome.premium_indices)
        price = self.strategy.price
        gains: dict[str, float] = {}
        for name in names:
            index = self.population.index_of(name)
            provider = self.population[index]
            in_premium = index in premium_set
            ordinary_members = [i for i in outcome.ordinary_indices if i != index]
            premium_members = [i for i in outcome.premium_indices if i != index]
            rho_ordinary = self._exact_rho(index, ordinary_members, self.ordinary_nu)
            rho_premium = self._exact_rho(index, premium_members, self.premium_nu)
            utility_ordinary = provider.revenue_rate * rho_ordinary
            utility_premium = (provider.revenue_rate - price) * rho_premium
            current = utility_premium if in_premium else utility_ordinary
            alternative = utility_ordinary if in_premium else utility_premium
            scale = max(abs(current), abs(alternative), _UTILITY_SCALE_FLOOR)
            gains[name] = (alternative - current) / scale
        return gains

    # ------------------------------------------------------------------ #
    # Nash equilibrium — Definition 2
    # ------------------------------------------------------------------ #
    def _exact_rho(self, index: int, class_indices: Iterable[int],
                   class_nu: float) -> float:
        """Exact ex-post ``rho_i`` if CP ``index`` belongs to the given class."""
        members = sorted(set(class_indices) | {index})
        equilibrium = self._class_equilibrium(members, class_nu)
        position = members.index(index)
        return float(equilibrium.rhos[position])

    def nash_equilibrium(self, max_passes: int = 50,
                         initial_premium: Optional[Iterable[int]] = None
                         ) -> PartitionOutcome:
        """Compute a Nash equilibrium partition by sequential best response.

        Every CP in turn evaluates its exact ex-post utility in both classes
        (recomputing the class equilibrium with itself included) and moves if
        strictly better off, ties breaking to the ordinary class.  The
        procedure stops when a full pass produces no move.  Intended for
        small populations (tests, illustrations); the competitive equilibrium
        is the work-horse for the paper's 1000-CP experiments.  The per-class
        equilibria of every candidate deviation run through the shared
        equilibrium cache, and the outcome itself is memoised.
        """
        initial_key = self._initial_key(initial_premium)
        if self.config.cache_policy == "bypass":
            return self._nash_equilibrium_uncached(max_passes, initial_key)
        key = self._outcome_key("nash", (max_passes, initial_key))
        return _PARTITION_CACHE.get_or_compute(
            key, lambda: self._nash_equilibrium_uncached(max_passes, initial_key)
        )  # type: ignore[return-value]

    def _nash_equilibrium_uncached(self, max_passes: int,
                                   initial_premium: Optional[tuple[int, ...]]
                                   ) -> PartitionOutcome:
        size = len(self.population)
        mask = np.zeros(size, dtype=bool)
        if initial_premium is not None:
            mask[list(initial_premium)] = True
        if size == 0 or self.nu == 0.0 or self.strategy.kappa == 0.0:
            return self._build_outcome(np.zeros(size, dtype=bool), "nash", True, 0)
        price = self.strategy.price
        passes = 0
        for passes in range(1, max_passes + 1):
            moved = False
            for i in range(size):
                provider = self.population[i]
                others_premium = [j for j in np.nonzero(mask)[0] if j != i]
                others_ordinary = [j for j in np.nonzero(~mask)[0] if j != i]
                rho_premium = self._exact_rho(i, others_premium, self.premium_nu)
                rho_ordinary = self._exact_rho(i, others_ordinary, self.ordinary_nu)
                premium_utility = (provider.revenue_rate - price) * rho_premium
                ordinary_utility = provider.revenue_rate * rho_ordinary
                margin = self._utility_tolerance * max(
                    1.0, abs(premium_utility), abs(ordinary_utility))
                wants_premium = premium_utility > ordinary_utility + margin
                if wants_premium != mask[i]:
                    mask[i] = wants_premium
                    moved = True
            if not moved:
                return self._build_outcome(mask, "nash", True, passes)
        return self._build_outcome(mask, "nash", False, passes)

    def verify_nash(self, outcome: PartitionOutcome) -> list[str]:
        """Names of CPs violating the Nash condition (7) at the given outcome."""
        violators: list[str] = []
        price = self.strategy.price
        premium_set = set(outcome.premium_indices)
        for i, provider in enumerate(self.population):
            in_premium = i in premium_set
            others_premium = [j for j in premium_set if j != i]
            others_ordinary = [j for j in range(len(self.population))
                               if j not in premium_set and j != i]
            rho_premium = self._exact_rho(i, others_premium, self.premium_nu)
            rho_ordinary = self._exact_rho(i, others_ordinary, self.ordinary_nu)
            premium_utility = (provider.revenue_rate - price) * rho_premium
            ordinary_utility = provider.revenue_rate * rho_ordinary
            margin = self._utility_tolerance * max(
                1.0, abs(premium_utility), abs(ordinary_utility))
            wants_premium = premium_utility > ordinary_utility + margin
            if wants_premium != in_premium:
                violators.append(provider.name)
        return violators


def competitive_equilibrium(population: Population, nu: float,
                            strategy: ISPStrategy,
                            mechanism: Optional[RateAllocationMechanism] = None,
                            config: Optional[SolverConfig] = None,
                            **kwargs: Any) -> PartitionOutcome:
    """Convenience wrapper: competitive equilibrium of ``(M, mu, N, s_I)``."""
    game = CPPartitionGame(population, nu, strategy, mechanism, config=config)
    return game.competitive_equilibrium(**kwargs)


def nash_equilibrium(population: Population, nu: float, strategy: ISPStrategy,
                     mechanism: Optional[RateAllocationMechanism] = None,
                     config: Optional[SolverConfig] = None,
                     **kwargs: Any) -> PartitionOutcome:
    """Convenience wrapper: Nash equilibrium of ``(M, mu, N, s_I)``."""
    game = CPPartitionGame(population, nu, strategy, mechanism, config=config)
    return game.nash_equilibrium(**kwargs)
