"""Comparison of regulatory regimes (the paper's bottom line).

The paper's headline finding orders the consumer surplus achievable in a
monopolistic region under three regimes:

    unregulated monopoly  <=  network-neutral regulation  <=  Public Option,

while under oligopolistic competition non-neutral strategies are already
aligned with consumer surplus and regulation is unnecessary.  This module
evaluates all four regimes on a common population/capacity and produces a
ranked report; it is the engine behind the ``bench_regulation_regimes``
benchmark and the ``monopoly_regulation`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backends.config import SolverConfig
from repro.errors import ModelValidationError
from repro.core.duopoly import DuopolyGame
from repro.core.monopoly import MonopolyGame
from repro.core.strategy import (
    ISPStrategy,
    NEUTRAL_STRATEGY,
    PUBLIC_OPTION_STRATEGY,
    strategy_grid,
)
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population

__all__ = ["RegimeResult", "RegimeComparison", "compare_regimes"]


@dataclass(frozen=True)
class RegimeResult:
    """Outcome of one regulatory regime."""

    regime: str
    consumer_surplus: float
    isp_surplus: float
    strategy: ISPStrategy
    description: str


@dataclass
class RegimeComparison:
    """Collection of regime results with ranking helpers."""

    nu: float
    results: Dict[str, RegimeResult] = field(default_factory=dict)

    def add(self, result: RegimeResult) -> None:
        self.results[result.regime] = result

    def ranking(self) -> List[RegimeResult]:
        """Regimes sorted by consumer surplus, best first."""
        return sorted(self.results.values(),
                      key=lambda r: r.consumer_surplus, reverse=True)

    def consumer_surplus(self, regime: str) -> float:
        return self.results[regime].consumer_surplus

    def paper_ordering_holds(self, tolerance: float = 1e-6) -> bool:
        """Check the monopoly-side ordering claimed by the paper.

        Public Option >= neutral regulation >= unregulated monopoly, each up
        to a relative tolerance (the Public Option and neutral regimes can
        coincide when capacity is abundant).
        """
        unregulated = self.consumer_surplus("unregulated_monopoly")
        neutral = self.consumer_surplus("neutral_monopoly")
        public_option = self.consumer_surplus("public_option")
        scale = max(abs(unregulated), abs(neutral), abs(public_option), 1.0)
        return (public_option >= neutral - tolerance * scale
                and neutral >= unregulated - tolerance * scale)

    def summary_table(self) -> str:
        """Plain-text table of the regimes, best consumer surplus first."""
        lines = [f"{'regime':<24} {'Phi':>12} {'Psi':>12}  strategy"]
        for result in self.ranking():
            lines.append(
                f"{result.regime:<24} {result.consumer_surplus:>12.4f} "
                f"{result.isp_surplus:>12.4f}  {result.strategy.describe()}"
            )
        return "\n".join(lines)


def compare_regimes(population: Population, nu: float,
                    strategies: Optional[Sequence[ISPStrategy]] = None,
                    mechanism: Optional[RateAllocationMechanism] = None,
                    *, duopoly_capacity_share: float = 0.5,
                    include_competition: bool = True,
                    config: Optional[SolverConfig] = None) -> RegimeComparison:
    """Evaluate the four regulatory regimes on one population and capacity.

    Parameters
    ----------
    population, nu:
        The region's CPs and per-capita capacity.
    strategies:
        Strategy grid over which selfish ISPs optimise; defaults to a
        5x5 grid of ``kappa`` in {0.2..1.0} and prices in {0.1..0.9}.
    duopoly_capacity_share:
        Capacity share handed to the strategic ISP in the Public Option
        regime (the remainder becomes the Public Option's capacity).
    include_competition:
        Also evaluate the oligopolistic regime (two strategic ISPs); this is
        the most expensive regime, so it can be disabled.

    Returns
    -------
    RegimeComparison
    """
    if strategies is None:
        strategies = strategy_grid(
            kappas=(0.2, 0.4, 0.6, 0.8, 1.0),
            prices=(0.1, 0.3, 0.5, 0.7, 0.9),
        )
    if not strategies:
        raise ModelValidationError("strategy grid must not be empty")
    comparison = RegimeComparison(nu=nu)

    monopoly = MonopolyGame(population, nu, mechanism, config=config)

    # 1. Unregulated monopoly: the ISP plays its revenue-optimal strategy.
    unregulated = monopoly.revenue_optimal(strategies)
    comparison.add(RegimeResult(
        regime="unregulated_monopoly",
        consumer_surplus=unregulated.consumer_surplus,
        isp_surplus=unregulated.isp_surplus,
        strategy=unregulated.strategy,
        description="monopolist free to choose (kappa, c) for maximum revenue",
    ))

    # 2. Network-neutral regulation: a single free class.
    neutral = monopoly.neutral_outcome()
    comparison.add(RegimeResult(
        regime="neutral_monopoly",
        consumer_surplus=neutral.consumer_surplus,
        isp_surplus=neutral.isp_surplus,
        strategy=NEUTRAL_STRATEGY,
        description="monopolist forced to carry all traffic in one free class",
    ))

    # 3. Public Option: the incumbent keeps `duopoly_capacity_share` of the
    #    capacity and competes for consumers against a neutral Public Option
    #    ISP; it plays its market-share-optimal strategy (Theorem 5 then says
    #    consumer surplus is maximised among its options).  The incumbent can
    #    always mimic neutrality, so the neutral strategy is part of its
    #    option set even when the caller's grid omits it.
    duopoly_grid = list(strategies)
    if not any(s.is_public_option for s in duopoly_grid):
        duopoly_grid.append(PUBLIC_OPTION_STRATEGY)
    duopoly = DuopolyGame(population, nu, duopoly_capacity_share, mechanism,
                          config=config)
    public_option = duopoly.best_response(duopoly_grid, objective="market_share")
    comparison.add(RegimeResult(
        regime="public_option",
        consumer_surplus=public_option.consumer_surplus,
        isp_surplus=public_option.isp_surplus,
        strategy=public_option.strategy_strategic,
        description=("incumbent competes with a neutral Public Option ISP "
                     f"holding {1.0 - duopoly_capacity_share:.0%} of capacity"),
    ))

    # 4. Oligopolistic competition: two strategic ISPs.  By Theorem 6 each
    #    ISP's market-share incentive is closely aligned with consumer
    #    surplus, so we evaluate the symmetric profile in which both play the
    #    consumer-surplus-aligned best strategy found against the Public
    #    Option (a cheap, faithful proxy for the full Nash search, which the
    #    oligopoly benchmarks perform explicitly on smaller populations).
    if include_competition:
        aligned = duopoly.best_response(duopoly_grid, objective="consumer_surplus")
        competitive = duopoly.outcome(aligned.strategy_strategic,
                                      aligned.strategy_strategic)
        comparison.add(RegimeResult(
            regime="oligopoly_competition",
            consumer_surplus=competitive.consumer_surplus,
            isp_surplus=competitive.isp_surplus + competitive.other_isp_surplus,
            strategy=aligned.strategy_strategic,
            description="two competing price-discriminating ISPs (symmetric profile)",
        ))
    return comparison
