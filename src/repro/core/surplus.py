"""Welfare accounting: consumer surplus, ISP surplus and CP profits.

The paper's welfare metric of interest is the per-capita consumer surplus
``Phi`` (Equation 2); the ISP's objective in the monopoly game is the
CP-side revenue ``Psi``.  This module adds the complementary quantities —
aggregate CP profit and total welfare — and small helpers used by the
regulation comparator, the examples and the reports printed by benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cp_game import PartitionOutcome
from repro.network.allocation import RateAllocationMechanism
from repro.network.equilibrium import solve_rate_equilibrium
from repro.network.provider import Population

__all__ = [
    "SurplusBreakdown",
    "welfare_report",
    "neutral_consumer_surplus",
    "max_consumer_surplus",
]


@dataclass(frozen=True)
class SurplusBreakdown:
    """Per-capita welfare decomposition of a second-stage outcome.

    Attributes
    ----------
    consumer_surplus:
        ``Phi`` — per-capita consumer surplus across both service classes.
    isp_surplus:
        ``Psi`` — per-capita ISP revenue from the premium class.
    cp_surplus:
        Aggregate per-capita CP profit (revenue minus premium charges).
    """

    consumer_surplus: float
    isp_surplus: float
    cp_surplus: float

    @property
    def total_welfare(self) -> float:
        """Sum of consumer, ISP and CP surplus (per capita)."""
        return self.consumer_surplus + self.isp_surplus + self.cp_surplus

    def scaled(self, consumers: float) -> "SurplusBreakdown":
        """Absolute (not per-capita) breakdown for a consumer size ``M``."""
        return SurplusBreakdown(
            consumer_surplus=self.consumer_surplus * consumers,
            isp_surplus=self.isp_surplus * consumers,
            cp_surplus=self.cp_surplus * consumers,
        )


def welfare_report(outcome: PartitionOutcome) -> SurplusBreakdown:
    """Full welfare breakdown of a second-stage partition outcome."""
    cp_total = sum(outcome.cp_utilities().values())
    return SurplusBreakdown(
        consumer_surplus=outcome.consumer_surplus,
        isp_surplus=outcome.isp_surplus,
        cp_surplus=cp_total,
    )


def neutral_consumer_surplus(population: Population, nu: float,
                             mechanism: Optional[RateAllocationMechanism] = None
                             ) -> float:
    """Per-capita consumer surplus of a single neutral class at capacity ``nu``.

    This is the outcome under strict network-neutral regulation (or under the
    Public Option strategy): all providers share the full capacity in one
    class and no CP-side charges are levied.
    """
    return solve_rate_equilibrium(population, nu, mechanism).consumer_surplus()


def max_consumer_surplus(population: Population) -> float:
    """Upper bound of ``Phi``: every CP served at unconstrained throughput.

    Reached whenever the per-capita capacity exceeds
    ``sum_i alpha_i theta_hat_i`` (Theorem 2's saturation point).
    """
    return float(sum(cp.utility_rate * cp.alpha * cp.theta_hat for cp in population))
