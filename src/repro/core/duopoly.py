"""Duopoly between a strategic ISP and a Public Option ISP (Section IV-A).

The duopoly game ``(M, mu, N, {I, J})`` is the heart of the paper's
non-regulatory proposal: ISP ``J`` runs the fixed Public Option strategy
``(0, 0)`` while ISP ``I`` freely chooses a non-neutral strategy
``(kappa_I, c_I)``.  Consumers migrate between the ISPs until the
per-capita consumer surplus equalises (Assumption 5); the CPs play the
class-selection game at each ISP independently.

The key result (Theorem 5) is that when ISP ``I`` maximises its market
share against a Public Option, it also maximises consumer surplus — the
Public Option aligns the non-neutral ISP's selfish incentives with the
consumer, without any regulation.  :meth:`DuopolyGame.best_response`
searches a strategy grid to verify this alignment numerically, and
:meth:`DuopolyGame.price_sweep`/:meth:`DuopolyGame.capacity_sweep` drive
the Figure 7/8 reproductions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.backends.config import SolverConfig, resolve_config
from repro.errors import ModelValidationError
from repro.core.cp_game import PartitionOutcome
from repro.core.migration import (
    DEFAULT_MIN_SHARE,
    IspConfig,
    MarketSplit,
    solve_market_split,
)
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population

__all__ = ["DuopolyOutcome", "DuopolyGame", "STRATEGIC_ISP",
           "PUBLIC_OPTION_ISP", "DUOPOLY_MIGRATION_TOLERANCE"]

#: Default names used for the two ISPs.
STRATEGIC_ISP = "ISP-I"
PUBLIC_OPTION_ISP = "ISP-J"

#: The duopoly's documented migration-tolerance default: the two-ISP solve
#: is an exact share bisection, so it affords a tighter tolerance than the
#: oligopoly tatonnement (``OLIGOPOLY_MIGRATION_TOLERANCE`` = 1e-3).
DUOPOLY_MIGRATION_TOLERANCE = 1e-4


@dataclass(frozen=True)
class DuopolyOutcome:
    """Equilibrium outcome of the duopoly for one strategy pair."""

    strategy_strategic: ISPStrategy
    strategy_other: ISPStrategy
    split: MarketSplit
    total_nu: float

    # -- market structure -------------------------------------------------
    @property
    def market_share(self) -> float:
        """Market share ``m_I`` of the strategic ISP."""
        return self.split.share(STRATEGIC_ISP)

    @property
    def other_market_share(self) -> float:
        return self.split.share(PUBLIC_OPTION_ISP)

    # -- welfare -----------------------------------------------------------
    @property
    def consumer_surplus(self) -> float:
        """System-wide per-capita consumer surplus ``Phi``."""
        return self.split.consumer_surplus

    @property
    def isp_surplus(self) -> float:
        """Per-capita (whole-market) premium revenue of the strategic ISP."""
        return self.split.isp_surplus(STRATEGIC_ISP)

    @property
    def other_isp_surplus(self) -> float:
        return self.split.isp_surplus(PUBLIC_OPTION_ISP)

    @property
    def isp_surplus_per_subscriber(self) -> float:
        """Premium revenue of the strategic ISP per one of its subscribers."""
        return self.split.outcomes[STRATEGIC_ISP].isp_surplus

    # -- per-ISP detail ------------------------------------------------------
    @property
    def strategic_partition(self) -> PartitionOutcome:
        return self.split.outcomes[STRATEGIC_ISP]

    @property
    def other_partition(self) -> PartitionOutcome:
        return self.split.outcomes[PUBLIC_OPTION_ISP]

    @property
    def strategic_nu(self) -> float:
        """Per-capita capacity seen by the strategic ISP's subscribers."""
        return self.strategic_partition.nu

    @property
    def other_nu(self) -> float:
        return self.other_partition.nu

    @property
    def converged(self) -> bool:
        return self.split.converged


class DuopolyGame:
    """The duopoly game with a configurable opponent (Public Option by default).

    Parameters
    ----------
    population:
        The content providers ``N``.
    total_nu:
        System-wide per-capita capacity ``mu / M``.
    strategic_capacity_share:
        ``gamma_I`` — the strategic ISP's share of the total capacity; the
        opponent holds the remainder (the paper's experiments use 1/2).
    mechanism:
        Rate-allocation mechanism inside every service class.
    migration_tolerance:
        Surplus-equalisation tolerance of the share bisection.  Resolution
        order: explicit value, then ``config.migration_tolerance``, then
        :data:`DUOPOLY_MIGRATION_TOLERANCE` (1e-4).
    config:
        Solver configuration threaded into every layer below.
    """

    def __init__(self, population: Population, total_nu: float,
                 strategic_capacity_share: float = 0.5,
                 mechanism: Optional[RateAllocationMechanism] = None,
                 *, migration_tolerance: Optional[float] = None,
                 migration_iterations: int = 40,
                 config: Optional[SolverConfig] = None) -> None:
        if not math.isfinite(total_nu) or total_nu < 0.0:
            raise ModelValidationError(
                f"total_nu must be non-negative, got {total_nu!r}")
        if not 0.0 < strategic_capacity_share < 1.0:
            raise ModelValidationError(
                "strategic_capacity_share must lie strictly between 0 and 1, "
                f"got {strategic_capacity_share!r}"
            )
        self.population = population
        self.total_nu = float(total_nu)
        self.strategic_capacity_share = float(strategic_capacity_share)
        self.mechanism = mechanism
        self.config = resolve_config(config)
        if migration_tolerance is None:
            migration_tolerance = (
                self.config.migration_tolerance
                if self.config.migration_tolerance is not None
                else DUOPOLY_MIGRATION_TOLERANCE)
        self.migration_tolerance = migration_tolerance
        self.migration_iterations = migration_iterations

    # ------------------------------------------------------------------ #
    def outcome(self, strategy: ISPStrategy,
                opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY
                ) -> DuopolyOutcome:
        """Migration equilibrium when the strategic ISP plays ``strategy``.

        Every per-ISP second-stage solve inside the migration bisection runs
        on the batched equilibrium engine's shared memoisation, so repeated
        queries (within one sweep or across sweeps) reuse partition outcomes
        — e.g. the Public Option opponent's surplus curve is solved once for
        an entire price grid.
        """
        isps = (
            IspConfig(STRATEGIC_ISP, strategy, self.strategic_capacity_share),
            IspConfig(PUBLIC_OPTION_ISP, opponent_strategy,
                      1.0 - self.strategic_capacity_share),
        )
        split = solve_market_split(
            self.population, self.total_nu, isps, self.mechanism,
            tolerance=self.migration_tolerance,
            max_iterations=self.migration_iterations,
            config=self.config,
        )
        return DuopolyOutcome(strategy_strategic=strategy,
                              strategy_other=opponent_strategy,
                              split=split, total_nu=self.total_nu)

    # ------------------------------------------------------------------ #
    # Sweeps used by the Figure 7/8/11/12 reproductions
    # ------------------------------------------------------------------ #
    def price_sweep(self, prices: Iterable[float], kappa: float = 1.0,
                    opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY
                    ) -> List[DuopolyOutcome]:
        """Outcomes over a grid of premium prices at fixed ``kappa`` (Figure 7)."""
        return [self.outcome(ISPStrategy(kappa, float(price)), opponent_strategy)
                for price in prices]

    def _warm_capacity_axis(self, strategy: ISPStrategy,
                            nus: Sequence[float],
                            opponent_strategy: ISPStrategy) -> None:
        """Batch the capacity axis' deterministic migration probes.

        The share bisection inside :func:`solve_market_split` always opens
        with the two bracket probes ``share in {min_share, 1 - min_share}``,
        and every all-ordinary side (``kappa = 0`` — the Public Option in
        all the paper's experiments) resolves such a probe with the
        *full-population* rate equilibrium at ``nu_isp = gamma nu / share``.
        Those capacities are known for the whole grid up front, so one
        vectorised multi-target bisection (:func:`solve_rate_equilibria`
        via :func:`warm_equilibrium_cache`) seeds the equilibrium cache and
        turns the per-point bracket solves into lookups.
        """
        # Imported lazily: ``repro.simulation`` imports the sweep layer,
        # which imports this module — a top-level import would be circular.
        from repro.simulation.batch import warm_equilibrium_cache

        capacities = set()
        for side_strategy, gamma in (
                (strategy, self.strategic_capacity_share),
                (opponent_strategy, 1.0 - self.strategic_capacity_share)):
            if side_strategy.kappa != 0.0:
                continue
            for nu in nus:
                for share in (DEFAULT_MIN_SHARE, 1.0 - DEFAULT_MIN_SHARE):
                    capacities.add(gamma * float(nu) / share)
        if capacities:
            warm_equilibrium_cache(self.population, sorted(capacities),
                                   self.mechanism, config=self.config)

    def capacity_sweep(self, strategy: ISPStrategy, nus: Iterable[float],
                       opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY
                       ) -> List[DuopolyOutcome]:
        """Outcomes of a fixed strategy pair across total capacities (Figure 8)."""
        nus = tuple(float(nu) for nu in nus)
        self._warm_capacity_axis(strategy, nus, opponent_strategy)
        outcomes = []
        for nu in nus:
            game = DuopolyGame(self.population, float(nu),
                               self.strategic_capacity_share, self.mechanism,
                               migration_tolerance=self.migration_tolerance,
                               migration_iterations=self.migration_iterations,
                               config=self.config)
            outcomes.append(game.outcome(strategy, opponent_strategy))
        return outcomes

    # ------------------------------------------------------------------ #
    # Best responses (Theorem 5)
    # ------------------------------------------------------------------ #
    def best_response(self, strategies: Sequence[ISPStrategy],
                      objective: str = "market_share",
                      opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY
                      ) -> DuopolyOutcome:
        """Best strategy of the strategic ISP over a grid.

        ``objective`` is ``"market_share"`` (the ISP's own incentive,
        Theorem 5's premise) or ``"consumer_surplus"`` (the welfare
        benchmark).  Ties are broken in favour of the other objective, then
        towards smaller ``kappa``.
        """
        if objective not in ("market_share", "consumer_surplus"):
            raise ModelValidationError(
                "objective must be 'market_share' or 'consumer_surplus', "
                f"got {objective!r}"
            )
        if not strategies:
            raise ModelValidationError("strategy grid must not be empty")
        outcomes = [self.outcome(strategy, opponent_strategy)
                    for strategy in strategies]
        if objective == "market_share":
            return max(outcomes, key=lambda o: (o.market_share, o.consumer_surplus,
                                                -o.strategy_strategic.kappa))
        return max(outcomes, key=lambda o: (o.consumer_surplus, o.market_share,
                                            -o.strategy_strategic.kappa))

    def alignment_report(self, strategies: Sequence[ISPStrategy],
                         opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY
                         ) -> Dict[str, Any]:
        """Theorem 5 check: compare the market-share and surplus optima.

        Returns the two best responses and the consumer-surplus shortfall of
        the market-share-optimal strategy relative to the surplus-optimal
        one (zero, up to solver tolerance, when Theorem 5 holds).
        """
        outcomes = [self.outcome(strategy, opponent_strategy)
                    for strategy in strategies]
        by_share = max(outcomes, key=lambda o: o.market_share)
        by_surplus = max(outcomes, key=lambda o: o.consumer_surplus)
        shortfall = by_surplus.consumer_surplus - by_share.consumer_surplus
        return {
            "market_share_optimum": by_share,
            "surplus_optimum": by_surplus,
            "surplus_shortfall": shortfall,
            "outcomes": outcomes,
        }
