"""ISP strategies ``s_I = (kappa, c)`` and strategy grids (Section III-A).

An ISP's strategy has two components:

* ``kappa`` — the fraction of its capacity devoted to the charged premium
  service class (the remaining ``1 - kappa`` forms the free ordinary class);
* ``price`` — the per-unit-traffic charge ``c`` levied on content providers
  that join the premium class.

The *Public Option* ISP of Definition 5 always plays the fixed strategy
``(0, 0)``: no premium class and no CP-side charges.  A *network-neutral*
ISP is modelled the same way — neutrality here means "no paid
prioritisation", which is exactly ``kappa = 0`` (or, equivalently for every
outcome in the model, ``c = 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ModelValidationError
from repro.network.link import BottleneckLink, TwoClassLink

__all__ = [
    "ISPStrategy",
    "PUBLIC_OPTION_STRATEGY",
    "NEUTRAL_STRATEGY",
    "strategy_grid",
]


@dataclass(frozen=True, order=True)
class ISPStrategy:
    """A first-stage ISP strategy ``(kappa, c)``.

    ``kappa`` is the premium capacity share in ``[0, 1]`` and ``price`` the
    per-unit-traffic premium charge ``c >= 0``.
    """

    kappa: float
    price: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.kappa <= 1.0:
            raise ModelValidationError(
                f"kappa must lie in [0, 1], got {self.kappa!r}"
            )
        if not math.isfinite(self.price) or self.price < 0.0:
            raise ModelValidationError(
                f"price must be non-negative and finite, got {self.price!r}"
            )

    @property
    def is_neutral(self) -> bool:
        """True when the strategy involves no paid prioritisation.

        Either no capacity is set aside for the premium class or the premium
        class is free; both produce the single-class neutral outcome.
        """
        return self.kappa == 0.0 or self.price == 0.0

    @property
    def is_public_option(self) -> bool:
        """True for the exact Public Option strategy ``(0, 0)``."""
        return self.kappa == 0.0 and self.price == 0.0

    @property
    def ordinary_share(self) -> float:
        """Capacity share of the free ordinary class, ``1 - kappa``."""
        return 1.0 - self.kappa

    def two_class_link(self, capacity: float) -> TwoClassLink:
        """Materialise this strategy as a two-class split of a link."""
        return TwoClassLink(BottleneckLink(capacity), self.kappa, self.price)

    def describe(self) -> str:
        """Short human-readable description used in tables and reports."""
        if self.is_public_option:
            return "public option (kappa=0, c=0)"
        return f"kappa={self.kappa:g}, c={self.price:g}"


#: The Public Option ISP's fixed strategy (Definition 5).
PUBLIC_OPTION_STRATEGY = ISPStrategy(kappa=0.0, price=0.0)

#: The strategy imposed by strict network-neutral regulation: a single free
#: class.  Identical to the Public Option strategy; kept as a separate name
#: because the two play very different roles in the paper's argument.
NEUTRAL_STRATEGY = ISPStrategy(kappa=0.0, price=0.0)


def strategy_grid(kappas: Iterable[float], prices: Iterable[float],
                  include_public_option: bool = False) -> List[ISPStrategy]:
    """Cartesian grid of strategies used for best-response searches.

    Parameters
    ----------
    kappas, prices:
        Values of the premium capacity share and the premium price.
    include_public_option:
        When true, the Public Option strategy ``(0, 0)`` is appended if the
        grid does not already contain it.

    Returns
    -------
    list of ISPStrategy
        Strategies in row-major (kappa-major) order, de-duplicated.
    """
    kappa_values: Sequence[float] = [float(k) for k in kappas]
    price_values: Sequence[float] = [float(c) for c in prices]
    if not kappa_values or not price_values:
        raise ModelValidationError("strategy grid needs at least one kappa and one price")
    seen = set()
    grid: List[ISPStrategy] = []
    for kappa in kappa_values:
        for price in price_values:
            strategy = ISPStrategy(kappa, price)
            key = (strategy.kappa, strategy.price)
            if key not in seen:
                seen.add(key)
                grid.append(strategy)
    if include_public_option and (0.0, 0.0) not in seen:
        grid.append(PUBLIC_OPTION_STRATEGY)
    return grid
