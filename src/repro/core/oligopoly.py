"""Oligopolistic ISP competition (Section IV-B).

All ISPs choose non-neutral strategies simultaneously; consumers migrate
until per-capita consumer surplus equalises; CPs pick a service class at
each ISP.  The paper shows:

* **Lemma 4** — if every ISP uses the same strategy, market shares equal to
  the capacity shares (``m_I = gamma_I``) form an equilibrium, so ISPs gain
  market share by investing in capacity;
* **Theorem 6 / Corollary 1** — an ISP's best response for market share is
  an ``epsilon``-best response for consumer surplus (and vice versa), where
  ``epsilon`` is the small surplus discontinuity of Equation (9): under
  competition, selfish strategies are closely aligned with consumer welfare
  and neutrality regulation is unnecessary.

:class:`OligopolyGame` evaluates strategy profiles, finds best responses
over a strategy grid and iterates them to a (grid-restricted) Nash
equilibrium in market shares or in consumer surplus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.backends.config import SolverConfig, resolve_config
from repro.errors import ModelValidationError
from repro.core.migration import IspConfig, MarketSplit, solve_market_split
from repro.core.strategy import ISPStrategy
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population

__all__ = ["OligopolyOutcome", "OligopolyGame",
           "OLIGOPOLY_MIGRATION_TOLERANCE"]

#: The oligopoly's documented migration-tolerance default: the multi-ISP
#: tatonnement converges on the small surplus discontinuities of
#: Equation (9), so it runs at a looser tolerance than the duopoly's exact
#: share bisection (``DUOPOLY_MIGRATION_TOLERANCE`` = 1e-4).
OLIGOPOLY_MIGRATION_TOLERANCE = 1e-3

#: Slack allowed when checking that capacity shares sum to one.
_SHARE_SUM_TOLERANCE = 1e-9

#: Floor of the relative-surplus scale in the imposed-shares diagnostic.
_SURPLUS_SCALE_FLOOR = 1e-12


@dataclass(frozen=True)
class OligopolyOutcome:
    """Equilibrium outcome of the oligopoly for one strategy profile."""

    strategies: Dict[str, ISPStrategy]
    capacity_shares: Dict[str, float]
    split: MarketSplit
    total_nu: float

    @property
    def market_shares(self) -> Dict[str, float]:
        """Market share ``m_I`` of every ISP."""
        return dict(self.split.shares)

    @property
    def consumer_surplus(self) -> float:
        """System-wide per-capita consumer surplus."""
        return self.split.consumer_surplus

    def isp_surplus(self, name: str) -> float:
        """Whole-market per-capita premium revenue of one ISP."""
        return self.split.isp_surplus(name)

    def market_share(self, name: str) -> float:
        return self.split.share(name)

    @property
    def share_capacity_gap(self) -> float:
        """Largest ``|m_I - gamma_I|`` across ISPs (zero under Lemma 4)."""
        return max(abs(self.split.share(name) - self.capacity_shares[name])
                   for name in self.capacity_shares)

    @property
    def converged(self) -> bool:
        return self.split.converged


class OligopolyGame:
    """Multi-ISP competition game ``(M, mu, N, I)``.

    Parameters
    ----------
    population:
        The content providers ``N``.
    total_nu:
        System-wide per-capita capacity.
    capacity_shares:
        Mapping from ISP name to its capacity share ``gamma_I``; the shares
        must sum to 1.
    migration_tolerance:
        Surplus-equalisation tolerance of the migration tatonnement.
        Resolution order: explicit value, then
        ``config.migration_tolerance``, then
        :data:`OLIGOPOLY_MIGRATION_TOLERANCE` (1e-3).
    config:
        Solver configuration threaded into every layer below.
    """

    def __init__(self, population: Population, total_nu: float,
                 capacity_shares: Mapping[str, float],
                 mechanism: Optional[RateAllocationMechanism] = None,
                 *, migration_tolerance: Optional[float] = None,
                 migration_iterations: int = 80,
                 config: Optional[SolverConfig] = None) -> None:
        if not math.isfinite(total_nu) or total_nu < 0.0:
            raise ModelValidationError(
                f"total_nu must be non-negative, got {total_nu!r}")
        if not capacity_shares:
            raise ModelValidationError("at least one ISP is required")
        total = sum(capacity_shares.values())
        if abs(total - 1.0) > _SHARE_SUM_TOLERANCE:
            raise ModelValidationError(
                f"capacity shares must sum to 1, got {total!r}")
        for name, share in capacity_shares.items():
            if share <= 0.0:
                raise ModelValidationError(
                    f"capacity share of {name!r} must be positive")
        self.population = population
        self.total_nu = float(total_nu)
        self.capacity_shares = dict(capacity_shares)
        self.mechanism = mechanism
        self.config = resolve_config(config)
        if migration_tolerance is None:
            migration_tolerance = (
                self.config.migration_tolerance
                if self.config.migration_tolerance is not None
                else OLIGOPOLY_MIGRATION_TOLERANCE)
        self.migration_tolerance = migration_tolerance
        self.migration_iterations = migration_iterations

    # ------------------------------------------------------------------ #
    def outcome(self, strategies: Mapping[str, ISPStrategy]) -> OligopolyOutcome:
        """Migration + class-selection equilibrium for a strategy profile."""
        missing = set(self.capacity_shares) - set(strategies)
        if missing:
            raise ModelValidationError(f"missing strategies for ISPs: {sorted(missing)}")
        isps = tuple(
            IspConfig(name, strategies[name], self.capacity_shares[name])
            for name in self.capacity_shares
        )
        split = solve_market_split(
            self.population, self.total_nu, isps, self.mechanism,
            tolerance=self.migration_tolerance,
            max_iterations=self.migration_iterations,
            config=self.config,
        )
        return OligopolyOutcome(strategies=dict(strategies),
                                capacity_shares=dict(self.capacity_shares),
                                split=split, total_nu=self.total_nu)

    def homogeneous_outcome(self, strategy: ISPStrategy) -> OligopolyOutcome:
        """Outcome when every ISP plays the same strategy (Lemma 4's setting)."""
        return self.outcome({name: strategy for name in self.capacity_shares})

    # ------------------------------------------------------------------ #
    # Best responses and grid-restricted Nash equilibria
    # ------------------------------------------------------------------ #
    def _score(self, outcome: OligopolyOutcome, isp_name: str,
               objective: str) -> Tuple[float, float]:
        if objective == "market_share":
            return (outcome.market_share(isp_name), outcome.consumer_surplus)
        return (outcome.consumer_surplus, outcome.market_share(isp_name))

    def best_response(self, isp_name: str,
                      strategies: Mapping[str, ISPStrategy],
                      candidates: Sequence[ISPStrategy],
                      objective: str = "market_share"
                      ) -> Tuple[ISPStrategy, OligopolyOutcome, List[OligopolyOutcome]]:
        """Best response of one ISP against a fixed profile of the others.

        Returns the best candidate strategy, its outcome, and the outcomes of
        every candidate (useful for the Theorem-6 alignment benchmarks).
        """
        if objective not in ("market_share", "consumer_surplus"):
            raise ModelValidationError(
                "objective must be 'market_share' or 'consumer_surplus', "
                f"got {objective!r}")
        if isp_name not in self.capacity_shares:
            raise ModelValidationError(f"unknown ISP {isp_name!r}")
        if not candidates:
            raise ModelValidationError("candidate strategy list must not be empty")
        outcomes: List[OligopolyOutcome] = []
        for candidate in candidates:
            profile = dict(strategies)
            profile[isp_name] = candidate
            outcomes.append(self.outcome(profile))
        best = max(outcomes, key=lambda o: self._score(o, isp_name, objective))
        return best.strategies[isp_name], best, outcomes

    def find_nash_equilibrium(self, candidates: Sequence[ISPStrategy],
                              objective: str = "market_share",
                              initial: Optional[Mapping[str, ISPStrategy]] = None,
                              max_rounds: int = 5
                              ) -> Tuple[Dict[str, ISPStrategy], OligopolyOutcome, bool]:
        """Iterated best response over a finite strategy grid.

        Returns the final profile, its outcome and whether the profile is a
        fixed point of the best-response map (i.e. a grid-restricted Nash
        equilibrium in the chosen objective) within ``max_rounds`` rounds.
        """
        if not candidates:
            raise ModelValidationError("candidate strategy list must not be empty")
        profile: Dict[str, ISPStrategy] = (
            dict(initial) if initial is not None
            else {name: candidates[0] for name in self.capacity_shares}
        )
        converged = False
        for _ in range(max_rounds):
            changed = False
            for name in self.capacity_shares:
                best, _, _ = self.best_response(name, profile, candidates, objective)
                if best != profile[name]:
                    profile[name] = best
                    changed = True
            if not changed:
                converged = True
                break
        return profile, self.outcome(profile), converged

    # ------------------------------------------------------------------ #
    # Lemma 4 verification
    # ------------------------------------------------------------------ #
    def verify_proportional_shares(self, strategy: ISPStrategy,
                                   tolerance: float = 5e-3) -> Dict[str, Any]:
        """Check Lemma 4: ``m_I = gamma_I`` is an equilibrium under homogeneous
        strategies.

        Lemma 4 states that the capacity-proportional split *is* an
        equilibrium (it need not be unique: when capacity is abundant the
        surplus curve flattens and a continuum of splits equalises surplus).
        The check therefore imposes ``m_I = gamma_I`` and verifies the
        equilibrium condition of Definition 4 — every ISP delivers the same
        per-capita consumer surplus, within ``tolerance`` (relative).  The
        migration solver's own equilibrium is reported alongside for
        reference.
        """
        from repro.core.migration import isp_outcome_at_share

        outcomes = {}
        for name, gamma in self.capacity_shares.items():
            isp = IspConfig(name, strategy, gamma)
            outcomes[name] = isp_outcome_at_share(
                self.population, self.total_nu, isp, gamma, self.mechanism,
                config=self.config)
        surpluses = {name: outcome.consumer_surplus
                     for name, outcome in outcomes.items()}
        values = list(surpluses.values())
        scale = max(max(abs(v) for v in values), _SURPLUS_SCALE_FLOOR)
        gap = (max(values) - min(values)) / scale
        solver_outcome = self.homogeneous_outcome(strategy)
        return {
            "strategy": strategy,
            "capacity_shares": dict(self.capacity_shares),
            "imposed_surpluses": surpluses,
            "max_gap": gap,
            "holds": gap <= tolerance,
            "market_shares": solver_outcome.market_shares,
            "outcome": solver_outcome,
        }
