"""Discontinuity and alignment metrics (Equation 9, Theorem 6).

The per-capita consumer surplus ``Phi(nu, N, s_I)`` is non-decreasing in the
per-capita capacity for a *fixed* CP partition, but when ``nu`` varies the
CPs re-partition and ``Phi`` can exhibit small downward jumps.  The paper
quantifies this with

    epsilon_{s_I} = sup { Phi(nu_1) - Phi(nu_2) : nu_1 < nu_2 },

the largest downward gap of the surplus curve, and the dual quantity
``delta_{s_I}`` for market shares.  Theorem 6 bounds the gap between an
ISP's market-share best response and its consumer-surplus best response by
these quantities.  This module computes both metrics from sampled curves
and provides a helper that samples the monopoly surplus curve over a
capacity grid for a given strategy.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import ModelValidationError
from repro.core.cp_game import CPPartitionGame
from repro.core.strategy import ISPStrategy
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population

__all__ = [
    "surplus_discontinuity",
    "market_share_discontinuity",
    "capacity_surplus_profile",
]


def surplus_discontinuity(surpluses: Sequence[float]) -> float:
    """Largest downward gap ``epsilon_{s_I}`` of a surplus curve (Equation 9).

    ``surpluses`` must be ordered by increasing capacity ``nu``.  The result
    is ``max(0, sup {Phi(nu_1) - Phi(nu_2) : nu_1 < nu_2})`` evaluated on the
    sampled grid — i.e. the largest amount by which the curve ever falls
    below a previously attained value.
    """
    if len(surpluses) == 0:
        raise ModelValidationError("surplus curve must contain at least one sample")
    running_max = float("-inf")
    largest_gap = 0.0
    for value in surpluses:
        value = float(value)
        if running_max > value:
            largest_gap = max(largest_gap, running_max - value)
        running_max = max(running_max, value)
    return largest_gap


def market_share_discontinuity(shares: Sequence[float],
                               surpluses: Sequence[float]) -> float:
    """The paper's ``delta_{s_I}``: ``sup { m_1 - m_2 : Phi_1 <= Phi_2 }``.

    ``shares`` and ``surpluses`` are paired samples (e.g. across a capacity
    sweep): the metric is the largest market-share advantage ever held by a
    sample whose consumer surplus is no better than another sample's.
    """
    if len(shares) != len(surpluses):
        raise ModelValidationError("shares and surpluses must have equal length")
    if len(shares) == 0:
        raise ModelValidationError("need at least one (share, surplus) sample")
    pairs: list[Tuple[float, float]] = sorted(
        zip((float(p) for p in surpluses), (float(m) for m in shares)),
        key=lambda pair: pair[0],
    )
    # For each sample j, the relevant competitor is any sample i with
    # Phi_i <= Phi_j; the largest m_i among them gives the supremum.
    largest_gap = 0.0
    running_max_share = float("-inf")
    index = 0
    for phi_j, share_j in pairs:
        while index < len(pairs) and pairs[index][0] <= phi_j:
            running_max_share = max(running_max_share, pairs[index][1])
            index += 1
        largest_gap = max(largest_gap, running_max_share - share_j)
    return max(0.0, largest_gap)


def capacity_surplus_profile(population: Population, strategy: ISPStrategy,
                             nus: Iterable[float],
                             mechanism: Optional[RateAllocationMechanism] = None,
                             ) -> Tuple[list, list]:
    """Sample ``Phi(nu, N, s_I)`` over a capacity grid for one strategy.

    Returns the (sorted) capacity grid and the corresponding per-capita
    consumer surplus values; feeding the latter to
    :func:`surplus_discontinuity` yields ``epsilon_{s_I}``.
    """
    nu_values = sorted(float(nu) for nu in nus)
    if not nu_values:
        raise ModelValidationError("capacity grid must not be empty")
    surpluses = []
    for nu in nu_values:
        outcome = CPPartitionGame(population, nu, strategy,
                                  mechanism).competitive_equilibrium()
        surpluses.append(outcome.consumer_surplus)
    return nu_values, surpluses
