"""Consumer migration across ISPs (Assumption 5, Definition 4).

When several ISPs serve the same region, consumers subscribe to the ISP
offering the higher per-capita consumer surplus; they keep moving until the
per-capita surplus is equalised across all ISPs with a positive market
share.  Because an ISP's per-capita capacity is ``nu_I = gamma_I * nu / m_I``
(capacity share over market share) and per-capita surplus is non-decreasing
in capacity (Theorem 2), each ISP's surplus is a (weakly) decreasing
function of its own market share — which makes the migration equilibrium a
one-dimensional root-finding problem for two ISPs and a monotone
fixed-point problem in general.

This module provides:

* :class:`IspConfig` — an ISP's name, strategy and capacity share;
* :class:`MarketSplit` — the migration equilibrium (market shares, per-ISP
  second-stage outcomes, the common surplus level and the residual);
* :func:`solve_market_split` — the solver (exact bisection for two ISPs,
  a tatonnement for three or more).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.backends.config import SolverConfig, resolve_config
from repro.errors import ModelValidationError
from repro.core.cp_game import CPPartitionGame, PartitionOutcome
from repro.core.strategy import ISPStrategy
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population

__all__ = ["IspConfig", "MarketSplit", "solve_market_split",
           "isp_outcome_at_share", "DEFAULT_MIGRATION_TOLERANCE"]

#: Smallest market share considered; avoids the singular ``nu_I = inf`` and
#: models the paper's observation that an ISP is never literally empty.
DEFAULT_MIN_SHARE = 1e-4

#: Default relative tolerance on the surplus equalisation (overridable per
#: call or via ``SolverConfig.migration_tolerance``).
DEFAULT_MIGRATION_TOLERANCE = 1e-4

#: Share-bracket width at which the duopoly bisection stops even when the
#: surplus gap has not hit tolerance (the gap has O(1/N) discontinuities).
_DUOPOLY_SHARE_WIDTH = 1e-5

#: Floor of the relative-surplus scale, guarding the all-zero-surplus case.
_SURPLUS_SCALE_FLOOR = 1e-12

#: Slack allowed when checking that capacity shares sum to one.
_SHARE_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class IspConfig:
    """An ISP participating in the migration game.

    Attributes
    ----------
    name:
        Unique identifier.
    strategy:
        The ISP's first-stage strategy ``(kappa, c)``.
    capacity_share:
        ``gamma_I = mu_I / mu`` — the ISP's share of the total capacity.
    """

    name: str
    strategy: ISPStrategy
    capacity_share: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelValidationError("ISP needs a non-empty name")
        if not 0.0 < self.capacity_share <= 1.0:
            raise ModelValidationError(
                f"capacity_share must lie in (0, 1], got {self.capacity_share!r}"
            )


@dataclass(frozen=True)
class MarketSplit:
    """Migration equilibrium of the second-stage multi-ISP game.

    ``shares`` are the market shares ``m_I`` (summing to 1), ``surpluses``
    the per-capita consumer surplus achieved at each ISP, and ``outcomes``
    the per-ISP second-stage partition outcomes.  ``residual`` is the
    largest deviation of any positive-share ISP's surplus from the common
    level; exactly zero residual is generally unattainable because the
    surplus functions have the small discontinuities quantified by
    Equation (9).
    """

    shares: Dict[str, float]
    surpluses: Dict[str, float]
    outcomes: Dict[str, PartitionOutcome]
    common_surplus: float
    residual: float
    converged: bool
    iterations: int = 0

    @property
    def consumer_surplus(self) -> float:
        """System-wide per-capita consumer surplus ``sum_I m_I Phi_I``."""
        return sum(self.shares[name] * self.surpluses[name] for name in self.shares)

    def isp_surplus(self, name: str) -> float:
        """Per-capita (over the whole market) ISP revenue ``c lambda_P / M``.

        The partition outcome's ``isp_surplus`` is per *subscriber* of that
        ISP; multiplying by the market share converts to the paper's
        market-wide per-capita quantity plotted in Figures 7/8.
        """
        return self.shares[name] * self.outcomes[name].isp_surplus

    def share(self, name: str) -> float:
        return self.shares[name]


def isp_outcome_at_share(population: Population, total_nu: float, isp: IspConfig,
                         share: float,
                         mechanism: Optional[RateAllocationMechanism] = None,
                         min_share: float = DEFAULT_MIN_SHARE,
                         initial_premium: Optional[Iterable[int]] = None,
                         config: Optional[SolverConfig] = None
                         ) -> PartitionOutcome:
    """Second-stage outcome at ISP ``isp`` when it holds market share ``share``.

    The ISP's per-capita capacity is ``nu_I = gamma_I * total_nu / m_I``; the
    CPs then play the class-selection game at that ISP.  ``initial_premium``
    warm-starts the class-selection solver from a nearby equilibrium.
    """
    if total_nu < 0.0 or not math.isfinite(total_nu):
        raise ModelValidationError(f"total_nu must be non-negative, got {total_nu!r}")
    effective_share = max(float(share), min_share)
    nu_isp = isp.capacity_share * total_nu / effective_share
    game = CPPartitionGame(population, nu_isp, isp.strategy, mechanism,
                           config=config)
    return game.competitive_equilibrium(initial_premium=initial_premium)


def _surplus_at_share(population: Population, total_nu: float, isp: IspConfig,
                      share: float,
                      mechanism: Optional[RateAllocationMechanism],
                      min_share: float,
                      config: Optional[SolverConfig] = None) -> float:
    """Consumer surplus at an ISP holding ``share`` of the consumers.

    Relies on the batched equilibrium engine's shared memoisation: the
    partition outcome at a given ``(population, nu_I, strategy, mechanism)``
    is cached across *all* migration solves (this generalises the per-solve
    dict cache the solver used to carry), so e.g. the Public Option ISP's
    surplus curve is computed once for an entire price sweep.
    """
    outcome = isp_outcome_at_share(population, total_nu, isp, share,
                                   mechanism, min_share, config=config)
    return outcome.consumer_surplus


def _build_split(population: Population, total_nu: float,
                 isps: Sequence[IspConfig], shares: Dict[str, float],
                 mechanism: Optional[RateAllocationMechanism],
                 min_share: float, converged: bool,
                 iterations: int,
                 config: Optional[SolverConfig] = None) -> MarketSplit:
    outcomes = {
        isp.name: isp_outcome_at_share(population, total_nu, isp,
                                       shares[isp.name], mechanism, min_share,
                                       config=config)
        for isp in isps
    }
    surpluses = {name: outcome.consumer_surplus for name, outcome in outcomes.items()}
    # The common level is the share-weighted mean over ISPs that actually
    # hold consumers; ISPs driven to (numerically) zero share are excluded
    # from the residual because consumers cannot be forced to stay there.
    active = [isp.name for isp in isps if shares[isp.name] > 2.0 * min_share]
    if not active:
        active = [isp.name for isp in isps]
    total_active = sum(shares[name] for name in active)
    common = (sum(shares[name] * surpluses[name] for name in active) / total_active
              if total_active > 0 else 0.0)
    residual = max(abs(surpluses[name] - common) for name in active)
    return MarketSplit(shares=dict(shares), surpluses=surpluses, outcomes=outcomes,
                       common_surplus=common, residual=residual,
                       converged=converged, iterations=iterations)


def _solve_duopoly(population: Population, total_nu: float,
                   first: IspConfig, second: IspConfig,
                   mechanism: Optional[RateAllocationMechanism],
                   min_share: float, tolerance: float,
                   max_iterations: int,
                   config: Optional[SolverConfig] = None) -> MarketSplit:
    """Bisection on the first ISP's market share for the two-ISP case."""
    surplus_scale = 1.0

    def gap(share_first: float) -> float:
        nonlocal surplus_scale
        phi_first = _surplus_at_share(population, total_nu, first, share_first,
                                      mechanism, min_share, config)
        phi_second = _surplus_at_share(population, total_nu, second,
                                       1.0 - share_first, mechanism, min_share,
                                       config)
        surplus_scale = max(surplus_scale, abs(phi_first), abs(phi_second))
        return phi_first - phi_second

    low, high = min_share, 1.0 - min_share
    gap_low, gap_high = gap(low), gap(high)
    if gap_low <= 0.0:
        # Even with a vanishing share, the first ISP cannot match the second:
        # all consumers go to the second ISP.
        shares = {first.name: 0.0, second.name: 1.0}
        return _build_split(population, total_nu, (first, second), shares,
                            mechanism, min_share, True, 1, config)
    if gap_high >= 0.0:
        shares = {first.name: 1.0, second.name: 0.0}
        return _build_split(population, total_nu, (first, second), shares,
                            mechanism, min_share, True, 1, config)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        mid = 0.5 * (low + high)
        value = gap(mid)
        if abs(value) <= tolerance * surplus_scale:
            low = high = mid
            break
        if value > 0.0:
            low = mid
        else:
            high = mid
        if high - low <= _DUOPOLY_SHARE_WIDTH:
            break
    share_first = 0.5 * (low + high)
    shares = {first.name: share_first, second.name: 1.0 - share_first}
    split = _build_split(population, total_nu, (first, second), shares,
                         mechanism, min_share, True, iterations, config)
    return split


def _solve_multi(population: Population, total_nu: float,
                 isps: Sequence[IspConfig],
                 mechanism: Optional[RateAllocationMechanism],
                 min_share: float,
                 tolerance: float, max_iterations: int,
                 config: Optional[SolverConfig] = None) -> MarketSplit:
    """Tatonnement on market shares for three or more ISPs.

    ISPs whose per-capita surplus is above the market average attract
    consumers; shares are renormalised each round.  The step size shrinks
    when the update overshoots, which makes the iteration robust to the
    small discontinuities of the surplus functions.
    """
    shares = {isp.name: isp.capacity_share for isp in isps}
    total = sum(shares.values())
    shares = {name: value / total for name, value in shares.items()}
    step = 0.5
    previous_residual = math.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        surpluses = {
            isp.name: _surplus_at_share(population, total_nu, isp,
                                        shares[isp.name], mechanism, min_share,
                                        config)
            for isp in isps
        }
        mean = sum(shares[name] * surpluses[name] for name in shares)
        scale = max(mean, max(surpluses.values()), _SURPLUS_SCALE_FLOOR)
        residual = max(abs(surpluses[isp.name] - mean) for isp in isps
                       if shares[isp.name] > 2.0 * min_share) \
            if any(shares[isp.name] > 2.0 * min_share for isp in isps) else 0.0
        if residual <= tolerance * scale:
            return _build_split(population, total_nu, isps, shares, mechanism,
                                min_share, True, iterations, config)
        if residual > previous_residual:
            step = max(step * 0.5, 0.05)
        previous_residual = residual
        updated = {}
        for isp in isps:
            relative = (surpluses[isp.name] - mean) / scale
            updated[isp.name] = max(min_share,
                                    shares[isp.name] * (1.0 + step * relative))
        total = sum(updated.values())
        shares = {name: value / total for name, value in updated.items()}
    return _build_split(population, total_nu, isps, shares, mechanism,
                        min_share, False, iterations, config)


def solve_market_split(population: Population, total_nu: float,
                       isps: Sequence[IspConfig],
                       mechanism: Optional[RateAllocationMechanism] = None,
                       *, min_share: float = DEFAULT_MIN_SHARE,
                       tolerance: Optional[float] = None,
                       max_iterations: int = 60,
                       config: Optional[SolverConfig] = None) -> MarketSplit:
    """Find the consumer-migration equilibrium among the given ISPs.

    Parameters
    ----------
    population:
        Content providers (shared across all ISPs).
    total_nu:
        Per-capita capacity of the whole system (``mu / M``).
    isps:
        Participating ISPs; their capacity shares must sum to 1.
    tolerance:
        Relative tolerance on the surplus equalisation.  An explicit value
        wins over ``config.migration_tolerance``; when both are ``None`` the
        default is :data:`DEFAULT_MIGRATION_TOLERANCE`.
    config:
        Solver configuration threaded into every per-ISP partition game.
    """
    config = resolve_config(config)
    if tolerance is None:
        tolerance = (config.migration_tolerance
                     if config.migration_tolerance is not None
                     else DEFAULT_MIGRATION_TOLERANCE)
    if not isps:
        raise ModelValidationError("at least one ISP is required")
    names = [isp.name for isp in isps]
    if len(set(names)) != len(names):
        raise ModelValidationError("ISP names must be unique")
    total_share = sum(isp.capacity_share for isp in isps)
    if abs(total_share - 1.0) > _SHARE_SUM_TOLERANCE:
        raise ModelValidationError(
            f"capacity shares must sum to 1, got {total_share!r}"
        )
    if len(isps) == 1:
        shares = {isps[0].name: 1.0}
        return _build_split(population, total_nu, isps, shares, mechanism,
                            min_share, True, 0, config)
    if len(isps) == 2:
        return _solve_duopoly(population, total_nu, isps[0], isps[1], mechanism,
                              min_share, tolerance, max_iterations, config)
    return _solve_multi(population, total_nu, isps, mechanism, min_share,
                        tolerance, max_iterations, config)
