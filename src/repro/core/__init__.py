"""The paper's game-theoretic contribution.

This subpackage implements Sections III and IV of the paper on top of the
rate-allocation substrate of :mod:`repro.network`:

* :mod:`repro.core.strategy` — ISP strategies ``(kappa, c)`` and the Public
  Option strategy ``(0, 0)``;
* :mod:`repro.core.cp_game` — the second-stage simultaneous-move game in
  which content providers choose a service class (Nash and competitive
  equilibria, Definitions 2-3);
* :mod:`repro.core.monopoly` — the two-stage monopoly game of Section III
  (Theorem 4 and Figures 4-5);
* :mod:`repro.core.migration` — consumer migration across ISPs until
  per-capita consumer surplus equalises (Assumption 5, Definition 4);
* :mod:`repro.core.duopoly` — the non-neutral ISP versus the Public Option
  (Theorem 5, Figures 7-8);
* :mod:`repro.core.oligopoly` — multi-ISP market-share competition
  (Lemma 4, Theorem 6, Corollary 1);
* :mod:`repro.core.alignment` — the discontinuity metrics of Equation (9);
* :mod:`repro.core.regulation` — comparison of regulatory regimes;
* :mod:`repro.core.surplus` — welfare accounting helpers.
"""

from repro.core.strategy import (
    NEUTRAL_STRATEGY,
    PUBLIC_OPTION_STRATEGY,
    ISPStrategy,
    strategy_grid,
)
from repro.core.cp_game import (
    CPPartitionGame,
    PartitionOutcome,
    competitive_equilibrium,
    nash_equilibrium,
)
from repro.core.surplus import SurplusBreakdown, welfare_report
from repro.core.monopoly import MonopolyGame, MonopolyOutcome
from repro.core.migration import IspConfig, MarketSplit, solve_market_split
from repro.core.duopoly import DuopolyGame, DuopolyOutcome
from repro.core.oligopoly import OligopolyGame, OligopolyOutcome
from repro.core.alignment import (
    market_share_discontinuity,
    surplus_discontinuity,
)
from repro.core.regulation import RegimeComparison, compare_regimes

__all__ = [
    "ISPStrategy",
    "PUBLIC_OPTION_STRATEGY",
    "NEUTRAL_STRATEGY",
    "strategy_grid",
    "CPPartitionGame",
    "PartitionOutcome",
    "competitive_equilibrium",
    "nash_equilibrium",
    "SurplusBreakdown",
    "welfare_report",
    "MonopolyGame",
    "MonopolyOutcome",
    "IspConfig",
    "MarketSplit",
    "solve_market_split",
    "DuopolyGame",
    "DuopolyOutcome",
    "OligopolyGame",
    "OligopolyOutcome",
    "surplus_discontinuity",
    "market_share_discontinuity",
    "RegimeComparison",
    "compare_regimes",
]
