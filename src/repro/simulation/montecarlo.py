"""Monte-Carlo replication of experiments across population seeds.

The paper's numerical results are computed on a single random draw of the
1000-CP population.  To distinguish draw-specific artefacts from robust
qualitative conclusions, this module replicates an arbitrary experiment
function across seeds and summarises scalar metrics with mean / standard
deviation / extremes.  The regulation benchmark uses it to confirm that the
regime ordering is not an artefact of one particular draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping

import numpy as np

from repro.errors import ModelValidationError

__all__ = ["MonteCarloSummary", "monte_carlo", "summarise_metrics"]


@dataclass(frozen=True)
class MetricSummary:
    """Summary statistics of one scalar metric across replications."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


@dataclass
class MonteCarloSummary:
    """Replication results: per-seed metric values plus summary statistics."""

    seeds: List[int] = field(default_factory=list)
    samples: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, seed: int, metrics: Mapping[str, float]) -> None:
        self.seeds.append(seed)
        for name, value in metrics.items():
            self.samples.setdefault(name, []).append(float(value))

    def summary(self, name: str) -> MetricSummary:
        values = self.samples.get(name)
        if not values:
            raise KeyError(name)
        # One numpy pass over the sample vector instead of separate
        # Python-level traversals for mean, variance and extremes.
        array = np.asarray(values, dtype=float)
        count = len(array)
        mean = float(array.mean())
        std = float(array.std()) if count > 1 else 0.0
        return MetricSummary(name=name, mean=mean, std=std,
                             minimum=float(array.min()),
                             maximum=float(array.max()), count=count)

    def summaries(self) -> Dict[str, MetricSummary]:
        return {name: self.summary(name) for name in self.samples}

    def fraction_true(self, name: str) -> float:
        """Fraction of replications in which a boolean metric was truthy."""
        values = self.samples.get(name)
        if not values:
            raise KeyError(name)
        return sum(1.0 for v in values if v) / len(values)

    def to_table(self) -> str:
        header = f"{'metric':<44} {'mean':>10} {'std':>10} {'min':>10} {'max':>10}"
        lines = [header, "-" * len(header)]
        for name in sorted(self.samples):
            s = self.summary(name)
            lines.append(f"{name:<44} {s.mean:>10.4f} {s.std:>10.4f} "
                         f"{s.minimum:>10.4f} {s.maximum:>10.4f}")
        return "\n".join(lines)


def monte_carlo(experiment: Callable[[int], Mapping[str, float]],
                seeds: Iterable[int]) -> MonteCarloSummary:
    """Run ``experiment(seed)`` for every seed and collect scalar metrics.

    ``experiment`` must return a mapping from metric name to a numeric value
    (booleans are coerced to 0/1).  Non-numeric values are skipped.
    """
    seeds = list(seeds)
    if not seeds:
        raise ModelValidationError("at least one seed is required")
    summary = MonteCarloSummary()
    for seed in seeds:
        metrics = experiment(int(seed))
        numeric = {}
        for name, value in metrics.items():
            if isinstance(value, bool):
                numeric[name] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)) and math.isfinite(float(value)):
                numeric[name] = float(value)
        summary.add(int(seed), numeric)
    return summary


def summarise_metrics(findings: Mapping[str, object]) -> Dict[str, float]:
    """Extract the numeric / boolean findings of an experiment result.

    Convenience adapter so ``ExperimentResult.findings`` can be fed straight
    into :func:`monte_carlo`.
    """
    metrics: Dict[str, float] = {}
    for name, value in findings.items():
        if isinstance(value, bool):
            metrics[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)) and math.isfinite(float(value)):
            metrics[name] = float(value)
    return metrics
