"""Experiment harness: sweeps, result containers and figure reproductions.

* :mod:`repro.simulation.batch` — the batched equilibrium engine: whole
  capacity grids solved in one vectorised multi-target bisection, plus the
  shared equilibrium/partition memoisation the game layer runs on;
* :mod:`repro.simulation.results` — light containers for series and sweep
  results, with plain-text table rendering (no plotting dependency);
* :mod:`repro.simulation.sweep` — price/capacity/strategy sweeps over the
  monopoly and duopoly games;
* :mod:`repro.simulation.experiments` — one entry point per paper figure
  (and per analytic claim), used by the benchmark suite and the CLI;
* :mod:`repro.simulation.montecarlo` — replication of experiments across
  population seeds.
"""

from repro.simulation.batch import (
    BatchRateEquilibrium,
    clear_equilibrium_caches,
    solve_rate_equilibria,
    warm_equilibrium_cache,
)
from repro.simulation.results import Series, SweepResult, ExperimentResult
from repro.simulation.sweep import (
    duopoly_capacity_sweep,
    duopoly_price_sweep,
    monopoly_capacity_sweep,
    monopoly_price_sweep,
)
from repro.simulation import experiments
from repro.simulation.montecarlo import MonteCarloSummary, monte_carlo

__all__ = [
    "BatchRateEquilibrium",
    "solve_rate_equilibria",
    "warm_equilibrium_cache",
    "clear_equilibrium_caches",
    "Series",
    "SweepResult",
    "ExperimentResult",
    "monopoly_price_sweep",
    "monopoly_capacity_sweep",
    "duopoly_price_sweep",
    "duopoly_capacity_sweep",
    "experiments",
    "monte_carlo",
    "MonteCarloSummary",
]
