"""Parameter sweeps over the monopoly and duopoly games.

Each sweep returns a :class:`~repro.simulation.results.SweepResult` with the
per-capita ISP surplus ``Psi``, consumer surplus ``Phi`` and (for the
duopoly) the strategic ISP's market share ``m_I`` as named series — exactly
the quantities plotted in the paper's Figures 4, 5, 7 and 8.

All four sweeps run on the batched equilibrium engine
(:mod:`repro.simulation.batch`): the full-population rate equilibria at
every service-class capacity in the grid are solved in one vectorised
multi-target bisection up front, and the per-point second-stage games then
draw their class equilibria, class caps and partition outcomes from the
engine's shared memoisation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.backends.config import SolverConfig
from repro.core.duopoly import DuopolyGame
from repro.core.monopoly import MonopolyGame
from repro.core.strategy import ISPStrategy, PUBLIC_OPTION_STRATEGY
from repro.network.allocation import RateAllocationMechanism
from repro.network.provider import Population
from repro.simulation.batch import warm_equilibrium_cache
from repro.simulation.results import Series, SweepResult

__all__ = [
    "monopoly_price_sweep",
    "monopoly_capacity_sweep",
    "duopoly_price_sweep",
    "duopoly_capacity_sweep",
]


def _class_capacities(nus: Sequence[float],
                      kappas: Iterable[float]) -> tuple[float, ...]:
    """Every service-class capacity a sweep grid will need, de-duplicated."""
    capacities = set()
    for nu in nus:
        for kappa in kappas:
            capacities.add(kappa * float(nu))
            capacities.add((1.0 - kappa) * float(nu))
    return tuple(sorted(capacities))


def monopoly_price_sweep(population: Population, nus: Iterable[float],
                         prices: Sequence[float], kappa: float = 1.0,
                         mechanism: Optional[RateAllocationMechanism] = None,
                         config: Optional[SolverConfig] = None,
                         ) -> tuple[SweepResult, SweepResult]:
    """ISP surplus and consumer surplus versus premium price (Figure 4).

    Returns two panels (``Psi`` and ``Phi``), each with one series per
    per-capita capacity value in ``nus``.
    """
    price_grid = tuple(float(p) for p in prices)
    nus = tuple(float(nu) for nu in nus)
    # One vectorised pass solves the full-population equilibrium at every
    # class capacity the grid can produce (all-ordinary / all-premium
    # partitions); the per-point games below then start from cache hits.
    warm_equilibrium_cache(population, _class_capacities(nus, (kappa,)),
                           mechanism, config=config)
    psi_panel = SweepResult(title=f"Per capita ISP surplus Psi vs price (kappa={kappa})",
                            parameters={"kappa": kappa})
    phi_panel = SweepResult(title=f"Per capita consumer surplus Phi vs price (kappa={kappa})",
                            parameters={"kappa": kappa})
    for nu in nus:
        game = MonopolyGame(population, float(nu), mechanism, config=config)
        outcomes = game.price_sweep(price_grid, kappa=kappa)
        psi_panel.add(Series(name=f"nu={float(nu):g}", x=price_grid,
                             y=tuple(o.isp_surplus for o in outcomes),
                             x_label="price c", y_label="Psi"))
        phi_panel.add(Series(name=f"nu={float(nu):g}", x=price_grid,
                             y=tuple(o.consumer_surplus for o in outcomes),
                             x_label="price c", y_label="Phi"))
    return psi_panel, phi_panel


def monopoly_capacity_sweep(population: Population,
                            strategies: Sequence[ISPStrategy],
                            nus: Sequence[float],
                            mechanism: Optional[RateAllocationMechanism] = None,
                            config: Optional[SolverConfig] = None,
                            ) -> tuple[SweepResult, SweepResult]:
    """ISP surplus and consumer surplus versus capacity (Figure 5).

    Returns two panels (``Psi`` and ``Phi``), each with one series per
    strategy in ``strategies``.
    """
    nu_grid = tuple(float(nu) for nu in nus)
    warm_equilibrium_cache(
        population,
        _class_capacities(nu_grid, {s.kappa for s in strategies}),
        mechanism, config=config)
    grid_parameters = {"strategies": [s.describe() for s in strategies]}
    psi_panel = SweepResult(title="Per capita ISP surplus Psi vs capacity nu",
                            parameters=dict(grid_parameters))
    phi_panel = SweepResult(title="Per capita consumer surplus Phi vs capacity nu",
                            parameters=dict(grid_parameters))
    for strategy in strategies:
        outcomes = MonopolyGame(population, nu_grid[0], mechanism,
                                config=config).capacity_sweep(strategy, nu_grid)
        label = f"kappa={strategy.kappa:g},c={strategy.price:g}"
        psi_panel.add(Series(name=label, x=nu_grid,
                             y=tuple(o.isp_surplus for o in outcomes),
                             x_label="nu", y_label="Psi"))
        phi_panel.add(Series(name=label, x=nu_grid,
                             y=tuple(o.consumer_surplus for o in outcomes),
                             x_label="nu", y_label="Phi"))
    return psi_panel, phi_panel


def duopoly_price_sweep(population: Population, nus: Iterable[float],
                        prices: Sequence[float], kappa: float = 1.0,
                        strategic_capacity_share: float = 0.5,
                        opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY,
                        mechanism: Optional[RateAllocationMechanism] = None,
                        config: Optional[SolverConfig] = None,
                        ) -> tuple[SweepResult, SweepResult, SweepResult]:
    """Market share, ISP surplus and consumer surplus vs price (Figure 7).

    The duopoly's class capacities depend on the migration equilibrium's
    market shares, so they cannot be pre-batched; instead the sweep relies
    on the engine's shared memoisation, under which e.g. the Public Option
    ISP's surplus curve — identical across all price points — is solved once.
    """
    price_grid = tuple(float(p) for p in prices)
    grid_parameters = {
        "kappa": kappa,
        "strategic_capacity_share": strategic_capacity_share,
        "opponent_strategy": opponent_strategy.describe(),
    }
    share_panel = SweepResult(title=f"Market share m_I vs price (kappa={kappa})",
                              parameters=dict(grid_parameters))
    psi_panel = SweepResult(title=f"Per capita ISP surplus Psi_I vs price (kappa={kappa})",
                            parameters=dict(grid_parameters))
    phi_panel = SweepResult(title=f"Per capita consumer surplus Phi vs price (kappa={kappa})",
                            parameters=dict(grid_parameters))
    for nu in nus:
        game = DuopolyGame(population, float(nu), strategic_capacity_share,
                           mechanism, config=config)
        outcomes = game.price_sweep(price_grid, kappa=kappa,
                                    opponent_strategy=opponent_strategy)
        label = f"nu={float(nu):g}"
        share_panel.add(Series(name=label, x=price_grid,
                               y=tuple(o.market_share for o in outcomes),
                               x_label="price c_I", y_label="m_I"))
        psi_panel.add(Series(name=label, x=price_grid,
                             y=tuple(o.isp_surplus for o in outcomes),
                             x_label="price c_I", y_label="Psi_I"))
        phi_panel.add(Series(name=label, x=price_grid,
                             y=tuple(o.consumer_surplus for o in outcomes),
                             x_label="price c_I", y_label="Phi"))
    return share_panel, psi_panel, phi_panel


def duopoly_capacity_sweep(population: Population,
                           strategies: Sequence[ISPStrategy],
                           nus: Sequence[float],
                           strategic_capacity_share: float = 0.5,
                           opponent_strategy: ISPStrategy = PUBLIC_OPTION_STRATEGY,
                           mechanism: Optional[RateAllocationMechanism] = None,
                           config: Optional[SolverConfig] = None,
                           ) -> tuple[SweepResult, SweepResult, SweepResult]:
    """Market share, ISP surplus and consumer surplus vs capacity (Figure 8)."""
    nu_grid = tuple(float(nu) for nu in nus)
    grid_parameters = {
        "strategies": [s.describe() for s in strategies],
        "strategic_capacity_share": strategic_capacity_share,
        "opponent_strategy": opponent_strategy.describe(),
    }
    share_panel = SweepResult(title="Market share m_I vs capacity nu",
                              parameters=dict(grid_parameters))
    psi_panel = SweepResult(title="Per capita ISP surplus Psi_I vs capacity nu",
                            parameters=dict(grid_parameters))
    phi_panel = SweepResult(title="Per capita consumer surplus Phi vs capacity nu",
                            parameters=dict(grid_parameters))
    for strategy in strategies:
        game = DuopolyGame(population, nu_grid[0], strategic_capacity_share,
                           mechanism, config=config)
        outcomes = game.capacity_sweep(strategy, nu_grid,
                                       opponent_strategy=opponent_strategy)
        label = f"kappa={strategy.kappa:g},c={strategy.price:g}"
        share_panel.add(Series(name=label, x=nu_grid,
                               y=tuple(o.market_share for o in outcomes),
                               x_label="nu", y_label="m_I"))
        psi_panel.add(Series(name=label, x=nu_grid,
                             y=tuple(o.isp_surplus for o in outcomes),
                             x_label="nu", y_label="Psi_I"))
        phi_panel.add(Series(name=label, x=nu_grid,
                             y=tuple(o.consumer_surplus for o in outcomes),
                             x_label="nu", y_label="Phi"))
    return share_panel, psi_panel, phi_panel
