"""Reproductions of every figure and analytic claim in the paper.

Each ``figure*`` function regenerates the data behind one figure of the
paper (the paper's evaluation has no numbered tables); the ``theorem*`` /
``lemma*`` functions check the analytic claims numerically.  All functions
return an :class:`~repro.simulation.results.ExperimentResult` whose panels
hold the plotted series and whose ``findings`` record the qualitative
"shape" checks that the experiment registry
(:mod:`repro.runner.registry`) declares and the golden-artifact
regression tests pin (see ``ARTIFACTS.md``).

The default parameters use the paper's workload (1000 random CPs, seeded)
but moderately sized grids so the full benchmark suite completes in
minutes; every grid can be widened through the function arguments, and the
random workload's size and seed are tunable via ``count`` / ``seed`` on
every experiment that draws one (``FIG2`` and ``FIG3`` are analytic and
take neither).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.alignment import (
    capacity_surplus_profile,
    market_share_discontinuity,
    surplus_discontinuity,
)
from repro.core.duopoly import DuopolyGame
from repro.core.monopoly import MonopolyGame
from repro.core.oligopoly import OligopolyGame
from repro.core.regulation import compare_regimes
from repro.core.strategy import ISPStrategy, strategy_grid
from repro.network.allocation import MaxMinFairAllocation
from repro.network.demand import ExponentialSensitivityDemand, sample_demand_curve
from repro.network.provider import Population
from repro.simulation.batch import solve_rate_equilibria
from repro.simulation.results import ExperimentResult, Series, SweepResult
from repro.simulation.sweep import (
    duopoly_capacity_sweep,
    duopoly_price_sweep,
    monopoly_capacity_sweep,
    monopoly_price_sweep,
)
from repro.workloads.archetypes import archetype_population
from repro.workloads.populations import DEFAULT_SEED, paper_population

__all__ = [
    "figure2_demand_curves",
    "figure3_maxmin_throughput",
    "figure4_monopoly_price",
    "figure5_monopoly_capacity",
    "figure7_duopoly_price",
    "figure8_duopoly_capacity",
    "figure9_appendix_monopoly_price",
    "figure10_appendix_monopoly_capacity",
    "figure11_appendix_duopoly_price",
    "figure12_appendix_duopoly_capacity",
    "theorem4_kappa_dominance",
    "theorem5_public_option_alignment",
    "lemma4_proportional_shares",
    "theorem6_alignment",
    "regulation_regimes",
]

_DEFAULT_PRICES = tuple(np.round(np.linspace(0.0, 1.0, 21), 6))
_DEFAULT_NUS_PRICE_SWEEP = (20.0, 50.0, 100.0, 150.0, 200.0)
_DEFAULT_CAPACITY_GRID = tuple(np.round(np.linspace(20.0, 500.0, 13), 6))
_DEFAULT_STRATEGY_KAPPAS = (0.3, 0.6, 0.9)
_DEFAULT_STRATEGY_PRICES = (0.2, 0.5, 0.8)


def _population(population: Optional[Population], utility_model: str,
                count: int, seed: int) -> Population:
    if population is not None:
        return population
    return paper_population(count=count, utility_model=utility_model,
                            seed=seed)


# --------------------------------------------------------------------------- #
# Figure 2 — demand as a function of throughput sensitivity
# --------------------------------------------------------------------------- #
def figure2_demand_curves(betas: Sequence[float] = (0.1, 0.5, 1.0, 3.0, 5.0, 10.0),
                          points: int = 101) -> ExperimentResult:
    """Figure 2: demand ``d_i(omega_i)`` for a range of sensitivities ``beta``."""
    panel = SweepResult(title="Demand d(omega) for throughput sensitivities beta")
    omegas = tuple(k / (points - 1) for k in range(points))
    for beta in betas:
        demand = ExponentialSensitivityDemand(theta_hat=1.0, beta=float(beta))
        samples = sample_demand_curve(demand, points=points)
        panel.add(Series(name=f"beta={float(beta):g}", x=omegas,
                         y=tuple(s.demand for s in samples),
                         x_label="omega", y_label="demand"))
    result = ExperimentResult(
        experiment_id="FIG2",
        description="Demand function d_i(omega_i) of Equation (3)",
        parameters={"betas": tuple(float(b) for b in betas), "points": points},
    )
    result.add_panel(panel)
    # Paper shape check: with beta = 5, a 10% throughput drop roughly halves
    # the demand; with beta = 0.1 demand stays close to 1.
    sharp = panel.get("beta=5").value_at(0.9)
    flat = panel.get("beta=0.1").value_at(0.9)
    result.findings["beta5_demand_at_90pct_throughput"] = sharp
    result.findings["beta5_halved_by_10pct_drop"] = bool(0.4 <= sharp <= 0.7)
    result.findings["beta0.1_demand_at_90pct_throughput"] = flat
    result.findings["low_beta_insensitive"] = bool(flat > 0.95)
    return result


# --------------------------------------------------------------------------- #
# Figure 3 — throughput under the max-min fair mechanism
# --------------------------------------------------------------------------- #
def figure3_maxmin_throughput(capacities: Optional[Sequence[float]] = None,
                              consumers: float = 1000.0) -> ExperimentResult:
    """Figure 3: rates and demands of the three archetype CPs vs capacity.

    The paper sweeps the capacity from 0 to 6000 for a region whose consumer
    size makes the saturation point (every CP unconstrained) land at
    ``mu = 5500``; we use ``M = 1000`` consumers so the per-capita capacity
    spans 0 to 6.
    """
    population = archetype_population()
    if capacities is None:
        capacities = tuple(np.linspace(0.0, 6000.0, 61))
    nu_grid = tuple(float(c) / consumers for c in capacities)
    mechanism = MaxMinFairAllocation()
    throughput_panel = SweepResult(title="Per-user throughput theta_i vs capacity")
    demand_panel = SweepResult(title="Demand d_i vs capacity")
    rate_panel = SweepResult(title="Per capita rate alpha_i d_i theta_i vs capacity")
    # The whole capacity grid is one vectorised multi-target solve.
    batch = solve_rate_equilibria(population, nu_grid, mechanism)
    per_capita_rates = batch.per_capita_rates
    capacity_axis = tuple(float(c) for c in capacities)
    for index, name in enumerate(population.names):
        throughput_panel.add(Series(name=name, x=capacity_axis,
                                    y=tuple(batch.thetas[:, index]),
                                    x_label="capacity mu", y_label="theta"))
        demand_panel.add(Series(name=name, x=capacity_axis,
                                y=tuple(batch.demands[:, index]),
                                x_label="capacity mu", y_label="demand"))
        rate_panel.add(Series(name=name, x=capacity_axis,
                              y=tuple(per_capita_rates[:, index]),
                              x_label="capacity mu", y_label="rate"))
    result = ExperimentResult(
        experiment_id="FIG3",
        description="Throughput and demand of Google/Netflix/Skype-type CPs "
                    "under max-min fairness",
        parameters={"consumers": consumers,
                    "max_capacity": capacity_axis[-1] if capacity_axis else 0.0},
    )
    for panel in (throughput_panel, demand_panel, rate_panel):
        result.add_panel(panel)

    def capacity_where_demand_reaches(name: str, level: float) -> float:
        series = demand_panel.get(name)
        for x, y in zip(series.x, series.y):
            if y >= level:
                return x
        return float("inf")

    google_at = capacity_where_demand_reaches("google", 0.9)
    skype_at = capacity_where_demand_reaches("skype", 0.9)
    netflix_at = capacity_where_demand_reaches("netflix", 0.9)
    result.findings["capacity_for_90pct_demand"] = {
        "google": google_at, "skype": skype_at, "netflix": netflix_at,
    }
    result.findings["google_saturates_before_skype_before_netflix"] = bool(
        google_at <= skype_at <= netflix_at)
    return result


# --------------------------------------------------------------------------- #
# Figures 4/9 — monopoly price sweep
# --------------------------------------------------------------------------- #
def _monopoly_price_experiment(experiment_id: str, utility_model: str,
                               population: Optional[Population],
                               nus: Sequence[float], prices: Sequence[float],
                               kappa: float, count: int,
                               seed: int) -> ExperimentResult:
    population = _population(population, utility_model, count, seed)
    psi_panel, phi_panel = monopoly_price_sweep(population, nus, prices, kappa)
    result = ExperimentResult(
        experiment_id=experiment_id,
        description=f"Monopoly per-capita surplus vs premium price (kappa={kappa}, "
                    f"phi model: {utility_model})",
        parameters={"nus": tuple(float(n) for n in nus),
                    "prices": (float(prices[0]), float(prices[-1]), len(prices)),
                    "kappa": kappa, "utility_model": utility_model,
                    "providers": len(population), "seed": seed},
    )
    result.add_panel(psi_panel)
    result.add_panel(phi_panel)

    # Shape checks from the paper's three pricing regimes.
    findings = {}
    smallest_nu = f"nu={float(min(nus)):g}"
    largest_nu = f"nu={float(max(nus)):g}"
    psi_small = psi_panel.get(smallest_nu)
    low_price = [p for p in psi_small.x if p > 0.0][0]
    findings["psi_linear_small_c"] = bool(
        abs(psi_small.value_at(low_price) - low_price * float(min(nus)))
        <= 0.05 * max(1.0, low_price * float(min(nus))))
    psi_large = psi_panel.get(largest_nu)
    phi_large = phi_panel.get(largest_nu)
    optimal_price = psi_large.argmax_x()
    findings["revenue_optimal_price_largest_nu"] = optimal_price
    findings["phi_at_optimal_price"] = phi_large.value_at(optimal_price)
    findings["phi_maximum"] = phi_large.y_max
    findings["monopoly_misaligned_when_capacity_abundant"] = bool(
        phi_large.value_at(optimal_price) < phi_large.y_max * (1.0 - 1e-6))
    findings["psi_collapses_at_high_c"] = bool(
        psi_large.y[-1] <= 0.25 * psi_large.y_max + 1e-12)
    result.findings.update(findings)
    return result


def figure4_monopoly_price(population: Optional[Population] = None,
                           nus: Sequence[float] = _DEFAULT_NUS_PRICE_SWEEP,
                           prices: Sequence[float] = _DEFAULT_PRICES,
                           kappa: float = 1.0, count: int = 1000,
                           seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 4: ``Psi`` and ``Phi`` vs price under ``kappa = 1``."""
    return _monopoly_price_experiment("FIG4", "beta_correlated", population,
                                      nus, prices, kappa, count, seed)


def figure9_appendix_monopoly_price(population: Optional[Population] = None,
                                    nus: Sequence[float] = _DEFAULT_NUS_PRICE_SWEEP,
                                    prices: Sequence[float] = _DEFAULT_PRICES,
                                    kappa: float = 1.0, count: int = 1000,
                                    seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 9 (appendix): Figure 4 with ``phi`` independent of ``beta``."""
    return _monopoly_price_experiment("FIG9", "independent", population,
                                      nus, prices, kappa, count, seed)


# --------------------------------------------------------------------------- #
# Figures 5/10 — monopoly capacity sweep over a strategy grid
# --------------------------------------------------------------------------- #
def _monopoly_capacity_experiment(experiment_id: str, utility_model: str,
                                  population: Optional[Population],
                                  kappas: Sequence[float],
                                  prices: Sequence[float],
                                  nus: Sequence[float],
                                  count: int, seed: int) -> ExperimentResult:
    population = _population(population, utility_model, count, seed)
    strategies = strategy_grid(kappas, prices)
    psi_panel, phi_panel = monopoly_capacity_sweep(population, strategies, nus)
    result = ExperimentResult(
        experiment_id=experiment_id,
        description="Monopoly per-capita surplus vs capacity for a strategy grid "
                    f"(phi model: {utility_model})",
        parameters={"kappas": tuple(float(k) for k in kappas),
                    "prices": tuple(float(c) for c in prices),
                    "nus": (float(nus[0]), float(nus[-1]), len(nus)),
                    "utility_model": utility_model,
                    "providers": len(population), "seed": seed},
    )
    result.add_panel(psi_panel)
    result.add_panel(phi_panel)

    # Shape checks: at the largest capacity, higher kappa yields (weakly)
    # higher ISP revenue but (weakly) lower consumer surplus; small-kappa
    # strategies see Psi fall to ~0 when capacity is abundant.
    largest_nu = float(nus[-1])
    price_ref = float(prices[len(prices) // 2])
    low_kappa = f"kappa={float(min(kappas)):g},c={price_ref:g}"
    high_kappa = f"kappa={float(max(kappas)):g},c={price_ref:g}"
    psi_low = psi_panel.get(low_kappa).value_at(largest_nu)
    psi_high = psi_panel.get(high_kappa).value_at(largest_nu)
    phi_low = phi_panel.get(low_kappa).value_at(largest_nu)
    phi_high = phi_panel.get(high_kappa).value_at(largest_nu)
    result.findings["psi_high_kappa_geq_low_kappa_at_large_nu"] = bool(
        psi_high >= psi_low - 1e-9)
    result.findings["phi_low_kappa_geq_high_kappa_at_large_nu"] = bool(
        phi_low >= phi_high - 1e-9)
    result.findings["psi_low_kappa_vanishes_at_large_nu"] = bool(
        psi_low <= 0.05 * max(psi_panel.get(low_kappa).y_max, 1e-12))
    epsilon = {name: surplus_discontinuity(phi_panel.get(name).y)
               for name in phi_panel.names}
    result.findings["epsilon_discontinuity_by_strategy"] = epsilon
    result.findings["max_epsilon"] = max(epsilon.values())
    return result


def figure5_monopoly_capacity(population: Optional[Population] = None,
                              kappas: Sequence[float] = _DEFAULT_STRATEGY_KAPPAS,
                              prices: Sequence[float] = _DEFAULT_STRATEGY_PRICES,
                              nus: Sequence[float] = _DEFAULT_CAPACITY_GRID,
                              count: int = 1000,
                              seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 5: ``Psi`` and ``Phi`` vs capacity under a ``(kappa, c)`` grid."""
    return _monopoly_capacity_experiment("FIG5", "beta_correlated", population,
                                         kappas, prices, nus, count, seed)


def figure10_appendix_monopoly_capacity(population: Optional[Population] = None,
                                        kappas: Sequence[float] = _DEFAULT_STRATEGY_KAPPAS,
                                        prices: Sequence[float] = _DEFAULT_STRATEGY_PRICES,
                                        nus: Sequence[float] = _DEFAULT_CAPACITY_GRID,
                                        count: int = 1000,
                                        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 10 (appendix): Figure 5 with ``phi`` independent of ``beta``."""
    return _monopoly_capacity_experiment("FIG10", "independent", population,
                                         kappas, prices, nus, count, seed)


# --------------------------------------------------------------------------- #
# Figures 7/11 — duopoly (vs Public Option) price sweep
# --------------------------------------------------------------------------- #
def _duopoly_price_experiment(experiment_id: str, utility_model: str,
                              population: Optional[Population],
                              nus: Sequence[float], prices: Sequence[float],
                              kappa: float, count: int,
                              seed: int) -> ExperimentResult:
    population = _population(population, utility_model, count, seed)
    share_panel, psi_panel, phi_panel = duopoly_price_sweep(
        population, nus, prices, kappa=kappa)
    result = ExperimentResult(
        experiment_id=experiment_id,
        description="Duopoly against a Public Option: market share and surplus "
                    f"vs price (kappa={kappa}, phi model: {utility_model})",
        parameters={"nus": tuple(float(n) for n in nus),
                    "prices": (float(prices[0]), float(prices[-1]), len(prices)),
                    "kappa": kappa, "utility_model": utility_model,
                    "providers": len(population), "seed": seed},
    )
    for panel in (share_panel, psi_panel, phi_panel):
        result.add_panel(panel)

    largest_nu = f"nu={float(max(nus)):g}"
    share = share_panel.get(largest_nu)
    phi = phi_panel.get(largest_nu)
    psi = psi_panel.get(largest_nu)
    peak_share_price = share.argmax_x()
    result.findings["market_share_peak_price_largest_nu"] = peak_share_price
    result.findings["market_share_peak_value"] = share.y_max
    result.findings["share_collapses_after_peak"] = bool(
        share.y[-1] <= 0.5 * share.y_max + 1e-9)
    result.findings["phi_stays_positive_at_c1"] = bool(phi.y[-1] > 0.0)
    result.findings["psi_drops_to_zero_at_c1"] = bool(
        psi.y[-1] <= 0.05 * max(psi.y_max, 1e-12))
    # The paper observes the maximum Psi_I can be lower at nu=200 than nu=150
    # (capacity expansion reduces CP-side revenue under kappa=1).
    if len(nus) >= 2:
        second_largest = f"nu={float(sorted(nus)[-2]):g}"
        result.findings["max_psi_largest_nu"] = psi.y_max
        result.findings["max_psi_second_largest_nu"] = psi_panel.get(second_largest).y_max
    return result


def figure7_duopoly_price(population: Optional[Population] = None,
                          nus: Sequence[float] = _DEFAULT_NUS_PRICE_SWEEP,
                          prices: Sequence[float] = _DEFAULT_PRICES,
                          kappa: float = 1.0, count: int = 1000,
                          seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 7: duopoly market share / surplus vs the strategic ISP's price."""
    return _duopoly_price_experiment("FIG7", "beta_correlated", population,
                                     nus, prices, kappa, count, seed)


def figure11_appendix_duopoly_price(population: Optional[Population] = None,
                                    nus: Sequence[float] = _DEFAULT_NUS_PRICE_SWEEP,
                                    prices: Sequence[float] = _DEFAULT_PRICES,
                                    kappa: float = 1.0, count: int = 1000,
                                    seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 11 (appendix): Figure 7 with ``phi`` independent of ``beta``."""
    return _duopoly_price_experiment("FIG11", "independent", population,
                                     nus, prices, kappa, count, seed)


# --------------------------------------------------------------------------- #
# Figures 8/12 — duopoly capacity sweep over a strategy grid
# --------------------------------------------------------------------------- #
def _duopoly_capacity_experiment(experiment_id: str, utility_model: str,
                                 population: Optional[Population],
                                 kappas: Sequence[float],
                                 prices: Sequence[float],
                                 nus: Sequence[float],
                                 count: int, seed: int) -> ExperimentResult:
    population = _population(population, utility_model, count, seed)
    strategies = strategy_grid(kappas, prices)
    share_panel, psi_panel, phi_panel = duopoly_capacity_sweep(
        population, strategies, nus)
    result = ExperimentResult(
        experiment_id=experiment_id,
        description="Duopoly against a Public Option: market share and surplus "
                    f"vs capacity (phi model: {utility_model})",
        parameters={"kappas": tuple(float(k) for k in kappas),
                    "prices": tuple(float(c) for c in prices),
                    "nus": (float(nus[0]), float(nus[-1]), len(nus)),
                    "utility_model": utility_model,
                    "providers": len(population), "seed": seed},
    )
    for panel in (share_panel, psi_panel, phi_panel):
        result.add_panel(panel)

    largest_nu = float(nus[-1])
    shares_at_large_nu = {name: share_panel.get(name).value_at(largest_nu)
                          for name in share_panel.names}
    result.findings["market_share_at_largest_nu"] = shares_at_large_nu
    result.findings["strategic_isp_capped_near_half_at_large_nu"] = bool(
        all(value <= 0.60 for value in shares_at_large_nu.values()))
    # Consumer surplus should be insensitive to the strategic ISP's strategy.
    phi_at_large_nu = [phi_panel.get(name).value_at(largest_nu)
                       for name in phi_panel.names]
    spread = (max(phi_at_large_nu) - min(phi_at_large_nu)) / max(max(phi_at_large_nu), 1e-12)
    result.findings["phi_relative_spread_across_strategies_at_large_nu"] = spread
    result.findings["phi_insensitive_to_strategy"] = bool(spread <= 0.15)
    delta = {name: market_share_discontinuity(share_panel.get(name).y,
                                              phi_panel.get(name).y)
             for name in share_panel.names}
    result.findings["delta_discontinuity_by_strategy"] = delta
    return result


def figure8_duopoly_capacity(population: Optional[Population] = None,
                             kappas: Sequence[float] = _DEFAULT_STRATEGY_KAPPAS,
                             prices: Sequence[float] = _DEFAULT_STRATEGY_PRICES,
                             nus: Sequence[float] = _DEFAULT_CAPACITY_GRID,
                             count: int = 1000,
                             seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 8: duopoly market share / surplus vs capacity for a strategy grid."""
    return _duopoly_capacity_experiment("FIG8", "beta_correlated", population,
                                        kappas, prices, nus, count, seed)


def figure12_appendix_duopoly_capacity(population: Optional[Population] = None,
                                       kappas: Sequence[float] = _DEFAULT_STRATEGY_KAPPAS,
                                       prices: Sequence[float] = _DEFAULT_STRATEGY_PRICES,
                                       nus: Sequence[float] = _DEFAULT_CAPACITY_GRID,
                                       count: int = 1000,
                                       seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Figure 12 (appendix): Figure 8 with ``phi`` independent of ``beta``."""
    return _duopoly_capacity_experiment("FIG12", "independent", population,
                                        kappas, prices, nus, count, seed)


# --------------------------------------------------------------------------- #
# Theorem 4 — kappa dominance for the monopolist
# --------------------------------------------------------------------------- #
def theorem4_kappa_dominance(population: Optional[Population] = None,
                             nus: Sequence[float] = (50.0, 150.0, 300.0),
                             prices: Sequence[float] = (0.2, 0.5, 0.8),
                             kappas: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
                             count: int = 1000,
                             seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Theorem 4: at any price, ``kappa = 1`` maximises the monopolist's revenue."""
    population = _population(population, "beta_correlated", count, seed)
    result = ExperimentResult(
        experiment_id="THM4",
        description="kappa = 1 (weakly) dominates smaller premium capacity shares",
        parameters={"nus": tuple(float(n) for n in nus),
                    "prices": tuple(float(c) for c in prices),
                    "kappas": tuple(float(k) for k in kappas),
                    "providers": len(population), "seed": seed},
    )
    all_hold = True
    for nu in nus:
        game = MonopolyGame(population, float(nu))
        panel = SweepResult(title=f"Psi vs kappa at nu={float(nu):g}")
        for price in prices:
            report = game.verify_kappa_dominance(float(price), kappas)
            all_hold = all_hold and report["holds"]
            kappa_axis = tuple(sorted(report["revenues"]))
            panel.add(Series(name=f"c={float(price):g}", x=kappa_axis,
                             y=tuple(report["revenues"][k] for k in kappa_axis),
                             x_label="kappa", y_label="Psi"))
        result.add_panel(panel)
    result.findings["kappa_one_dominates_everywhere"] = bool(all_hold)
    return result


# --------------------------------------------------------------------------- #
# Theorem 5 — Public Option aligns market share with consumer surplus
# --------------------------------------------------------------------------- #
def theorem5_public_option_alignment(population: Optional[Population] = None,
                                     nu: float = 150.0,
                                     kappas: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
                                     prices: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
                                     strategic_capacity_share: float = 0.5,
                                     count: int = 1000,
                                     seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Theorem 5: against a Public Option, maximising market share maximises Phi."""
    population = _population(population, "beta_correlated", count, seed)
    duopoly = DuopolyGame(population, nu, strategic_capacity_share)
    strategies = strategy_grid(kappas, prices, include_public_option=True)
    report = duopoly.alignment_report(strategies)
    panel = SweepResult(title=f"Duopoly outcomes over the strategy grid (nu={nu:g})")
    index_axis = tuple(range(len(report["outcomes"])))
    panel.add(Series(name="market_share", x=index_axis,
                     y=tuple(o.market_share for o in report["outcomes"]),
                     x_label="strategy index", y_label="m_I"))
    panel.add(Series(name="consumer_surplus", x=index_axis,
                     y=tuple(o.consumer_surplus for o in report["outcomes"]),
                     x_label="strategy index", y_label="Phi"))
    result = ExperimentResult(
        experiment_id="THM5",
        description="Market-share-optimal strategy against a Public Option also "
                    "maximises consumer surplus",
        parameters={"nu": nu, "strategies": len(strategies),
                    "strategic_capacity_share": strategic_capacity_share,
                    "providers": len(population), "seed": seed},
    )
    result.add_panel(panel)
    by_share = report["market_share_optimum"]
    by_surplus = report["surplus_optimum"]
    scale = max(abs(by_surplus.consumer_surplus), 1e-12)
    result.findings["market_share_optimal_strategy"] = by_share.strategy_strategic.describe()
    result.findings["surplus_optimal_strategy"] = by_surplus.strategy_strategic.describe()
    result.findings["surplus_shortfall"] = report["surplus_shortfall"]
    result.findings["relative_shortfall"] = report["surplus_shortfall"] / scale
    result.findings["theorem5_holds_within_tolerance"] = bool(
        report["surplus_shortfall"] <= 0.02 * scale)
    return result


# --------------------------------------------------------------------------- #
# Lemma 4 — proportional market shares under homogeneous strategies
# --------------------------------------------------------------------------- #
def lemma4_proportional_shares(population: Optional[Population] = None,
                               nu: float = 150.0,
                               capacity_shares: Optional[Dict[str, float]] = None,
                               strategy: ISPStrategy = ISPStrategy(0.6, 0.4),
                               count: int = 300,
                               seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Lemma 4: homogeneous strategies give market shares equal to capacity shares."""
    population = _population(population, "beta_correlated", count, seed)
    if capacity_shares is None:
        capacity_shares = {"ISP-A": 0.5, "ISP-B": 0.3, "ISP-C": 0.2}
    game = OligopolyGame(population, nu, capacity_shares,
                         migration_iterations=150)
    # The tolerance absorbs the migration solver's equalisation resolution.
    report = game.verify_proportional_shares(strategy, tolerance=0.02)
    panel = SweepResult(title=f"Market share vs capacity share (nu={nu:g})")
    names = sorted(capacity_shares)
    panel.add(Series(name="capacity_share", x=tuple(range(len(names))),
                     y=tuple(capacity_shares[name] for name in names),
                     x_label="ISP index", y_label="gamma_I"))
    panel.add(Series(name="market_share", x=tuple(range(len(names))),
                     y=tuple(report["market_shares"][name] for name in names),
                     x_label="ISP index", y_label="m_I"))
    result = ExperimentResult(
        experiment_id="LEM4",
        description="Homogeneous-strategy oligopoly equilibrium has m_I = gamma_I",
        parameters={"nu": nu, "strategy": strategy.describe(),
                    "capacity_shares": dict(capacity_shares),
                    "providers": len(population), "seed": seed},
    )
    result.add_panel(panel)
    result.findings["max_share_gap"] = report["max_gap"]
    result.findings["lemma4_holds"] = bool(report["holds"])
    return result


# --------------------------------------------------------------------------- #
# Theorem 6 / Corollary 1 — alignment under oligopolistic competition
# --------------------------------------------------------------------------- #
def theorem6_alignment(population: Optional[Population] = None,
                       nu: float = 150.0,
                       capacity_shares: Optional[Dict[str, float]] = None,
                       kappas: Sequence[float] = (0.5, 1.0),
                       prices: Sequence[float] = (0.2, 0.5, 0.8),
                       count: int = 300,
                       seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Theorem 6: market-share best responses are epsilon-best for consumer surplus."""
    population = _population(population, "beta_correlated", count, seed)
    if capacity_shares is None:
        capacity_shares = {"ISP-A": 0.5, "ISP-B": 0.5}
    game = OligopolyGame(population, nu, capacity_shares)
    candidates = strategy_grid(kappas, prices, include_public_option=True)
    baseline = {name: candidates[len(candidates) // 2] for name in capacity_shares}
    target = sorted(capacity_shares)[0]
    best_share, share_outcome, share_outcomes = game.best_response(
        target, baseline, candidates, objective="market_share")
    best_phi, phi_outcome, _ = game.best_response(
        target, baseline, candidates, objective="consumer_surplus")

    # epsilon_{s_-I}: the surplus discontinuity of the *other* ISPs' strategies.
    other = [name for name in capacity_shares if name != target]
    nu_grid = tuple(np.linspace(max(nu * 0.2, 1.0), nu * 2.0, 9))
    epsilon_values = []
    for name in other:
        _, profile = capacity_surplus_profile(population, baseline[name], nu_grid)
        epsilon_values.append(surplus_discontinuity(profile))
    epsilon = max(epsilon_values) if epsilon_values else 0.0

    panel = SweepResult(title=f"Best-response candidates for {target} (nu={nu:g})")
    index_axis = tuple(range(len(share_outcomes)))
    panel.add(Series(name="market_share", x=index_axis,
                     y=tuple(o.market_share(target) for o in share_outcomes),
                     x_label="candidate index", y_label="m_I"))
    panel.add(Series(name="consumer_surplus", x=index_axis,
                     y=tuple(o.consumer_surplus for o in share_outcomes),
                     x_label="candidate index", y_label="Phi"))
    result = ExperimentResult(
        experiment_id="THM6",
        description="Market-share and consumer-surplus best responses are aligned "
                    "under oligopolistic competition",
        parameters={"nu": nu, "capacity_shares": dict(capacity_shares),
                    "candidates": len(candidates), "providers": len(population),
                    "seed": seed},
    )
    result.add_panel(panel)
    shortfall = phi_outcome.consumer_surplus - share_outcome.consumer_surplus
    result.findings["market_share_best_response"] = best_share.describe()
    result.findings["surplus_best_response"] = best_phi.describe()
    result.findings["surplus_shortfall"] = shortfall
    result.findings["epsilon_bound"] = epsilon
    result.findings["theorem6_bound_holds"] = bool(
        shortfall <= epsilon + 0.02 * max(abs(phi_outcome.consumer_surplus), 1e-12))
    return result


# --------------------------------------------------------------------------- #
# Regulatory-regime comparison (the paper's headline ordering)
# --------------------------------------------------------------------------- #
def regulation_regimes(population: Optional[Population] = None,
                       nu: float = 200.0,
                       kappas: Sequence[float] = (0.5, 1.0),
                       prices: Sequence[float] = (0.2, 0.45, 0.7),
                       count: int = 1000,
                       seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Consumer surplus under the four regimes discussed by the paper."""
    population = _population(population, "beta_correlated", count, seed)
    strategies = strategy_grid(kappas, prices)
    comparison = compare_regimes(population, nu, strategies)
    panel = SweepResult(title=f"Consumer and ISP surplus by regime (nu={nu:g})")
    ranked = comparison.ranking()
    panel.add(Series(name="consumer_surplus", x=tuple(range(len(ranked))),
                     y=tuple(r.consumer_surplus for r in ranked),
                     x_label="regime rank", y_label="Phi"))
    panel.add(Series(name="isp_surplus", x=tuple(range(len(ranked))),
                     y=tuple(r.isp_surplus for r in ranked),
                     x_label="regime rank", y_label="Psi"))
    result = ExperimentResult(
        experiment_id="REG",
        description="Regulatory-regime comparison: unregulated monopoly vs "
                    "neutral regulation vs Public Option vs competition",
        parameters={"nu": nu, "strategies": len(strategies),
                    "providers": len(population), "seed": seed},
    )
    result.add_panel(panel)
    result.findings["ranking"] = [r.regime for r in ranked]
    result.findings["surplus_by_regime"] = {
        r.regime: r.consumer_surplus for r in ranked}
    result.findings["paper_ordering_holds"] = bool(comparison.paper_ordering_holds())
    result.findings["summary"] = comparison.summary_table()
    return result
