"""Batched equilibrium engine: whole sweep grids in one vectorised pass.

The paper's headline figures are parameter sweeps — price × capacity × kappa
grids over the 1000-CP workload — and each grid point needs the rate
equilibrium of Theorem 1 at some per-capita capacity.  Solving the points
one by one costs a full scalar bisection each; this module instead:

* solves *all* capacities of a grid at once with the vectorised multi-target
  bisection of :func:`repro.network.equilibrium.solve_common_caps`
  (:func:`solve_rate_equilibria`, returning a :class:`BatchRateEquilibrium`
  with array-shaped throughput/demand/surplus accessors);
* memoises (class, capacity) equilibria in shared LRU caches
  (:func:`repro.network.equilibrium.cached_subset_equilibrium` /
  :func:`cached_class_cap`) so the monopoly, duopoly and CP-partition games
  stop re-solving identical sub-problems during best-response passes;
* pre-seeds those caches for an upcoming sweep grid
  (:func:`warm_equilibrium_cache`), turning the per-point solves of the
  sweep layer into lookups.

The scalar path (:func:`repro.network.equilibrium.solve_rate_equilibrium`)
is retained and delegates to the same kernel, so batch and scalar results
are bit-for-bit identical — a property the test suite asserts across
mechanisms and demand families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.backends.config import SolverConfig, resolve_config
from repro.cache import LRUCache
from repro.errors import ModelValidationError
from repro.network.allocation import (
    CommonCapAllocation,
    MaxMinFairAllocation,
    RateAllocationMechanism,
)
from repro.network.equilibrium import (
    RateEquilibrium,
    cached_class_cap,
    cached_subset_equilibrium,
    clear_equilibrium_caches,
    default_equilibrium_cache,
    equilibrium_cache_stats,
    frozen_equilibrium,
    mechanism_cache_key,
    solve_common_caps,
    solve_rate_equilibrium,
)
from repro.network.provider import Population

__all__ = [
    "BatchRateEquilibrium",
    "solve_rate_equilibria",
    "warm_equilibrium_cache",
    "cached_subset_equilibrium",
    "cached_class_cap",
    "equilibrium_cache_stats",
    "clear_equilibrium_caches",
]


@dataclass(frozen=True)
class BatchRateEquilibrium:
    """Rate equilibria of one population at a whole grid of capacities.

    The arrays are stacked along the grid axis: ``thetas[g, i]`` is provider
    ``i``'s equilibrium throughput at per-capita capacity ``nus[g]``.  Rows
    are bit-identical to the scalar solver's output at the same ``nu``;
    :meth:`equilibrium_at` materialises one row as a scalar
    :class:`~repro.network.equilibrium.RateEquilibrium`.
    """

    population: Population
    nus: np.ndarray
    thetas: np.ndarray
    demands: np.ndarray
    common_caps: np.ndarray
    mechanism_name: str = "MaxMinFairAllocation"

    def __len__(self) -> int:
        return len(self.nus)

    def __iter__(self) -> Iterator[RateEquilibrium]:
        for index in range(len(self.nus)):
            yield self.equilibrium_at(index)

    # ---------------------------------------------------------------- #
    # Array-shaped derived quantities (grid axis first).
    # ---------------------------------------------------------------- #
    @property
    def rhos(self) -> np.ndarray:
        """Per-user-base throughput ``d_i theta_i``, shape ``(G, n)``."""
        return self.demands * self.thetas

    @property
    def per_capita_rates(self) -> np.ndarray:
        """Per-consumer rates ``alpha_i d_i theta_i``, shape ``(G, n)``."""
        return self.population.alphas[np.newaxis, :] * self.rhos

    @property
    def aggregate_rates(self) -> np.ndarray:
        """Per-capita aggregate carried rate at each grid point, ``(G,)``."""
        return np.sum(self.per_capita_rates, axis=-1)

    @property
    def utilizations(self) -> np.ndarray:
        """Fraction of each capacity actually carried, ``(G,)``."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = self.aggregate_rates / self.nus
        return np.where(self.nus > 0.0, np.minimum(1.0, ratio), 0.0)

    def consumer_surpluses(self) -> np.ndarray:
        """Per-capita consumer surplus ``Phi`` at each grid point, ``(G,)``."""
        utility_rates = self.population.utility_rates[np.newaxis, :]
        return np.sum(utility_rates * self.per_capita_rates, axis=-1)

    def premium_revenues(self, price: float) -> np.ndarray:
        """Per-capita ISP revenue at each grid point if all paid ``price``."""
        if price < 0.0:
            raise ModelValidationError("price must be non-negative")
        return price * self.aggregate_rates

    def equilibrium_at(self, index: int) -> RateEquilibrium:
        """One grid row as a scalar :class:`RateEquilibrium`."""
        return RateEquilibrium(
            population=self.population,
            nu=float(self.nus[index]),
            thetas=self.thetas[index],
            demands=self.demands[index],
            mechanism_name=self.mechanism_name,
            common_cap=float(self.common_caps[index]),
        )


def solve_rate_equilibria(population: Population, nus: Sequence[float],
                          mechanism: Optional[RateAllocationMechanism] = None,
                          config: Optional[SolverConfig] = None,
                          ) -> BatchRateEquilibrium:
    """Rate equilibria of ``population`` at every capacity in ``nus`` at once.

    The batched counterpart of
    :func:`~repro.network.equilibrium.solve_rate_equilibrium`.  For
    cap-parameterised mechanisms (the paper's max-min fair mechanism
    included) all grid points share one vectorised multi-target bisection;
    other mechanisms fall back to per-point scalar solves but still return
    the batched container.  Degenerate grid points (``nu = 0``, uncongested
    capacities, empty populations) are handled exactly like the scalar path.
    """
    nus_arr = np.asarray([float(nu) for nu in nus], dtype=float)
    if nus_arr.ndim != 1:
        raise ModelValidationError("nus must be a 1-D sequence of capacities")
    if np.any(~np.isfinite(nus_arr)) or np.any(nus_arr < 0.0):
        raise ModelValidationError(
            "per-capita capacities must all be finite and >= 0")
    if mechanism is None:
        mechanism = MaxMinFairAllocation()
    if isinstance(mechanism, CommonCapAllocation):
        caps, thetas, demands = solve_common_caps(population, nus_arr, mechanism,
                                                  config)
        return BatchRateEquilibrium(
            population=population, nus=nus_arr, thetas=thetas, demands=demands,
            common_caps=caps, mechanism_name=type(mechanism).__name__)
    # Scalar fallback for arbitrary mechanisms (fixed-point iteration): no
    # batched kernel exists, so solve per point and stack.
    size = len(population)
    thetas = np.empty((len(nus_arr), size))
    demands = np.empty((len(nus_arr), size))
    caps = np.empty(len(nus_arr))
    for index, nu in enumerate(nus_arr):
        equilibrium = solve_rate_equilibrium(population, float(nu), mechanism,
                                             config)
        thetas[index] = equilibrium.thetas
        demands[index] = equilibrium.demands
        caps[index] = equilibrium.common_cap
    return BatchRateEquilibrium(
        population=population, nus=nus_arr, thetas=thetas, demands=demands,
        common_caps=caps, mechanism_name=type(mechanism).__name__)


def warm_equilibrium_cache(population: Population, nus: Sequence[float],
                           mechanism: Optional[RateAllocationMechanism] = None,
                           cache: Optional[LRUCache] = None,
                           config: Optional[SolverConfig] = None
                           ) -> BatchRateEquilibrium:
    """Solve a capacity grid in one pass and seed the equilibrium cache.

    After this call, ``cached_subset_equilibrium(population, None, nu, ...)``
    (and therefore the game layer's full-population solves) is a lookup for
    every ``nu`` in the grid.  Only grid points not already cached are
    solved, so re-warming the same grid (e.g. repeated sweeps over one
    population) costs a handful of dictionary lookups.  Returns the batch,
    so callers can also read the grid directly.  The cache keys mirror
    :func:`cached_subset_equilibrium` exactly (including the config's
    ``cache_key()``); a ``bypass`` cache policy skips seeding entirely.
    """
    config = resolve_config(config)
    if config.cache_policy == "bypass":
        return solve_rate_equilibria(population, nus, mechanism, config)
    cache = default_equilibrium_cache() if cache is None else cache
    mechanism_key = mechanism_cache_key(mechanism)
    config_key = config.cache_key()
    nus_arr = np.asarray([float(nu) for nu in nus], dtype=float)
    keys = [(population, None, float(nu), mechanism_key, config_key)
            for nu in nus_arr]
    # Read hits up front and keep local references: the seeding puts below
    # may LRU-evict earlier grid keys, so the cache must not be re-read
    # during assembly.
    rows: dict[int, RateEquilibrium] = {}
    missing = []
    for index, key in enumerate(keys):
        equilibrium = cache.get(key)
        if equilibrium is None:
            missing.append(index)
        else:
            rows[index] = equilibrium
    if missing:
        solved = solve_rate_equilibria(population, nus_arr[missing], mechanism,
                                       config)
        for batch_index, grid_index in enumerate(missing):
            # Frozen copies: cache entries must not alias the writable
            # (G, n) grid matrices (mutation and memory-pinning hazards).
            equilibrium = frozen_equilibrium(solved.equilibrium_at(batch_index))
            cache.put(keys[grid_index], equilibrium)
            rows[grid_index] = equilibrium
        if len(missing) == len(nus_arr):
            return solved
    size = len(population)
    thetas = np.empty((len(nus_arr), size))
    demands = np.empty((len(nus_arr), size))
    caps = np.empty(len(nus_arr))
    mechanism_name = (type(mechanism).__name__ if mechanism is not None
                      else "MaxMinFairAllocation")
    for index in range(len(nus_arr)):
        equilibrium = rows[index]
        thetas[index] = equilibrium.thetas
        demands[index] = equilibrium.demands
        caps[index] = equilibrium.common_cap
    return BatchRateEquilibrium(
        population=population, nus=nus_arr, thetas=thetas, demands=demands,
        common_caps=caps, mechanism_name=mechanism_name)
