"""Result containers for sweeps and figure reproductions.

The library deliberately produces *data*, not plots: every experiment
returns named series (x/y arrays plus metadata) that can be printed as
plain-text tables (the benchmarks do exactly this), post-processed, or fed
to any plotting front-end by the user.

Every container also round-trips through plain JSON-compatible dictionaries
(:meth:`ExperimentResult.to_dict` / :meth:`ExperimentResult.from_dict`)
under the versioned schema documented in ``ARTIFACTS.md``; the runner
(:mod:`repro.runner`) serialises these dictionaries as canonical JSON
artifacts that the golden-regression tests pin.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ModelValidationError

__all__ = ["Series", "SweepResult", "ExperimentResult",
           "RESULT_SCHEMA_VERSION"]

#: Version of the ``to_dict`` / ``from_dict`` artifact schema.  Bump this
#: whenever the dictionary layout changes shape (adding optional keys is
#: backwards compatible and does not require a bump).
RESULT_SCHEMA_VERSION = 1

#: ``kind`` marker embedded in serialised experiment results so artifact
#: files are self-describing.
RESULT_KIND = "repro-netneutrality/experiment-result"


def _canonical_value(value: object, context: str) -> Any:
    """``value`` converted to JSON-compatible built-ins, recursively.

    Tuples become lists, numpy scalars become Python scalars, and mapping
    keys are coerced to strings (numeric keys via ``repr`` so they stay
    unambiguous).  Anything that cannot be represented in JSON raises
    :class:`ModelValidationError` at serialisation time rather than
    producing an artifact that cannot be reloaded.
    """
    if isinstance(value, (str, type(None), bool)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, Mapping):
        converted: Dict[str, Any] = {}
        for key, item in value.items():
            if isinstance(key, (bool, np.bool_)):
                key = repr(bool(key))
            elif isinstance(key, numbers.Integral):
                key = repr(int(key))
            elif isinstance(key, numbers.Real):
                key = repr(float(key))
            elif not isinstance(key, str):
                raise ModelValidationError(
                    f"{context}: mapping key {key!r} is not JSON-representable")
            if key in converted:
                raise ModelValidationError(
                    f"{context}: duplicate mapping key {key!r} after "
                    "string coercion")
            converted[key] = _canonical_value(item, context)
        return converted
    if isinstance(value, (list, tuple, set, frozenset, np.ndarray)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_canonical_value(item, context) for item in items]
    raise ModelValidationError(
        f"{context}: value {value!r} of type {type(value).__name__} is not "
        "JSON-representable")


@dataclass(frozen=True)
class Series:
    """A named series of ``(x, y)`` samples (one curve of a figure)."""

    name: str
    x: tuple
    y: tuple
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ModelValidationError(
                f"series {self.name!r}: x and y must have equal length "
                f"({len(self.x)} != {len(self.y)})"
            )
        object.__setattr__(self, "x", tuple(float(v) for v in self.x))
        object.__setattr__(self, "y", tuple(float(v) for v in self.y))

    def __len__(self) -> int:
        return len(self.x)

    @property
    def y_max(self) -> float:
        return max(self.y) if self.y else float("nan")

    @property
    def y_min(self) -> float:
        return min(self.y) if self.y else float("nan")

    def argmax_x(self) -> float:
        """The x value at which the series peaks."""
        if not self.y:
            raise ModelValidationError(f"series {self.name!r} is empty")
        index = max(range(len(self.y)), key=lambda i: self.y[i])
        return self.x[index]

    def value_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y value at a sampled x (exact match within tolerance)."""
        for sample_x, sample_y in zip(self.x, self.y):
            if abs(sample_x - x) <= tolerance:
                return sample_y
        raise KeyError(f"x={x} not sampled in series {self.name!r}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (see ``ARTIFACTS.md``)."""
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": [float(v) for v in self.x],
            "y": [float(v) for v in self.y],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Series":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(name=payload["name"], x=tuple(payload["x"]),
                       y=tuple(payload["y"]),
                       x_label=payload.get("x_label", "x"),
                       y_label=payload.get("y_label", "y"))
        except (KeyError, TypeError) as error:
            raise ModelValidationError(
                f"malformed series payload: {error!r}") from error


@dataclass
class SweepResult:
    """A collection of series sharing the same x axis (one figure panel)."""

    title: str
    series: List[Series] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)

    def add(self, series: Series) -> None:
        self.series.append(series)

    def get(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    @property
    def names(self) -> List[str]:
        return [series.name for series in self.series]

    def to_table(self, max_rows: Optional[int] = None,
                 float_format: str = "{:>12.4f}") -> str:
        """Plain-text table: one row per x sample, one column per series."""
        if not self.series:
            return f"{self.title}\n(empty)"
        x_values = self.series[0].x
        for series in self.series:
            if series.x != x_values:
                raise ModelValidationError(
                    "all series in a sweep must share the same x grid to tabulate"
                )
        header = f"{self.series[0].x_label:>12} " + " ".join(
            f"{series.name:>12}" for series in self.series
        )
        lines = [self.title, header, "-" * len(header)]
        rows = range(len(x_values)) if max_rows is None else range(
            0, len(x_values), max(1, len(x_values) // max_rows))
        for i in rows:
            row = float_format.format(x_values[i]) + " " + " ".join(
                float_format.format(series.y[i]) for series in self.series
            )
            lines.append(row)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (see ``ARTIFACTS.md``)."""
        return {
            "title": self.title,
            "parameters": _canonical_value(self.parameters,
                                           f"panel {self.title!r} parameters"),
            "series": [series.to_dict() for series in self.series],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        try:
            panel = cls(title=payload["title"],
                        parameters=dict(payload.get("parameters", {})))
            for series_payload in payload.get("series", []):
                panel.add(Series.from_dict(series_payload))
        except (KeyError, TypeError) as error:
            raise ModelValidationError(
                f"malformed panel payload: {error!r}") from error
        return panel


@dataclass
class ExperimentResult:
    """Top-level result of one paper-figure reproduction.

    ``panels`` holds one :class:`SweepResult` per sub-figure; ``findings``
    records the qualitative checks (the "shape" claims of the paper) as
    name -> bool/number pairs, which the benchmark harness prints alongside
    the tables and the golden-artifact regression tests pin (the experiment
    registry in :mod:`repro.runner.registry` declares which findings each
    experiment is expected to satisfy).
    """

    experiment_id: str
    description: str
    panels: List[SweepResult] = field(default_factory=list)
    findings: Dict[str, object] = field(default_factory=dict)
    parameters: Dict[str, object] = field(default_factory=dict)

    def panel(self, title: str) -> SweepResult:
        for panel in self.panels:
            if panel.title == title:
                return panel
        raise KeyError(title)

    def add_panel(self, panel: SweepResult) -> None:
        self.panels.append(panel)

    def report(self, max_rows: Optional[int] = 12) -> str:
        """Human-readable report: tables for each panel plus the findings."""
        sections = [f"== {self.experiment_id}: {self.description} =="]
        if self.parameters:
            sections.append("parameters: " + ", ".join(
                f"{key}={value}" for key, value in sorted(self.parameters.items())))
        for panel in self.panels:
            sections.append(panel.to_table(max_rows=max_rows))
        if self.findings:
            sections.append("findings:")
            for key, value in self.findings.items():
                sections.append(f"  - {key}: {value}")
        return "\n\n".join(sections)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation under the versioned schema.

        The payload is self-describing (``schema`` + ``kind`` markers) and
        contains only JSON built-ins: tuples are canonicalised to lists and
        numpy scalars to Python scalars.  Non-finite floats are legal here;
        the artifact writer (:mod:`repro.runner.artifacts`) encodes them
        portably before producing JSON text.
        """
        context = f"experiment {self.experiment_id}"
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": RESULT_KIND,
            "experiment_id": self.experiment_id,
            "description": self.description,
            "parameters": _canonical_value(self.parameters,
                                           f"{context} parameters"),
            "panels": [panel.to_dict() for panel in self.panels],
            "findings": _canonical_value(self.findings,
                                         f"{context} findings"),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ModelValidationError(
                f"unsupported experiment-result schema {schema!r} "
                f"(this library reads version {RESULT_SCHEMA_VERSION})")
        kind = payload.get("kind", RESULT_KIND)
        if kind != RESULT_KIND:
            raise ModelValidationError(
                f"payload kind {kind!r} is not an experiment result")
        try:
            result = cls(experiment_id=payload["experiment_id"],
                         description=payload["description"],
                         findings=dict(payload.get("findings", {})),
                         parameters=dict(payload.get("parameters", {})))
            for panel_payload in payload.get("panels", []):
                result.add_panel(SweepResult.from_dict(panel_payload))
        except (KeyError, TypeError) as error:
            raise ModelValidationError(
                f"malformed experiment payload: {error!r}") from error
        return result
