"""Result containers for sweeps and figure reproductions.

The library deliberately produces *data*, not plots: every experiment
returns named series (x/y arrays plus metadata) that can be printed as
plain-text tables (the benchmarks do exactly this), post-processed, or fed
to any plotting front-end by the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ModelValidationError

__all__ = ["Series", "SweepResult", "ExperimentResult"]


@dataclass(frozen=True)
class Series:
    """A named series of ``(x, y)`` samples (one curve of a figure)."""

    name: str
    x: tuple
    y: tuple
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ModelValidationError(
                f"series {self.name!r}: x and y must have equal length "
                f"({len(self.x)} != {len(self.y)})"
            )
        object.__setattr__(self, "x", tuple(float(v) for v in self.x))
        object.__setattr__(self, "y", tuple(float(v) for v in self.y))

    def __len__(self) -> int:
        return len(self.x)

    @property
    def y_max(self) -> float:
        return max(self.y) if self.y else float("nan")

    @property
    def y_min(self) -> float:
        return min(self.y) if self.y else float("nan")

    def argmax_x(self) -> float:
        """The x value at which the series peaks."""
        if not self.y:
            raise ModelValidationError(f"series {self.name!r} is empty")
        index = max(range(len(self.y)), key=lambda i: self.y[i])
        return self.x[index]

    def value_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y value at a sampled x (exact match within tolerance)."""
        for sample_x, sample_y in zip(self.x, self.y):
            if abs(sample_x - x) <= tolerance:
                return sample_y
        raise KeyError(f"x={x} not sampled in series {self.name!r}")


@dataclass
class SweepResult:
    """A collection of series sharing the same x axis (one figure panel)."""

    title: str
    series: List[Series] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)

    def add(self, series: Series) -> None:
        self.series.append(series)

    def get(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    @property
    def names(self) -> List[str]:
        return [series.name for series in self.series]

    def to_table(self, max_rows: Optional[int] = None,
                 float_format: str = "{:>12.4f}") -> str:
        """Plain-text table: one row per x sample, one column per series."""
        if not self.series:
            return f"{self.title}\n(empty)"
        x_values = self.series[0].x
        for series in self.series:
            if series.x != x_values:
                raise ModelValidationError(
                    "all series in a sweep must share the same x grid to tabulate"
                )
        header = f"{self.series[0].x_label:>12} " + " ".join(
            f"{series.name:>12}" for series in self.series
        )
        lines = [self.title, header, "-" * len(header)]
        rows = range(len(x_values)) if max_rows is None else range(
            0, len(x_values), max(1, len(x_values) // max_rows))
        for i in rows:
            row = float_format.format(x_values[i]) + " " + " ".join(
                float_format.format(series.y[i]) for series in self.series
            )
            lines.append(row)
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Top-level result of one paper-figure reproduction.

    ``panels`` holds one :class:`SweepResult` per sub-figure; ``findings``
    records the qualitative checks (the "shape" claims of the paper) as
    name -> bool/number pairs, which the benchmark harness prints alongside
    the tables and EXPERIMENTS.md summarises.
    """

    experiment_id: str
    description: str
    panels: List[SweepResult] = field(default_factory=list)
    findings: Dict[str, object] = field(default_factory=dict)
    parameters: Dict[str, object] = field(default_factory=dict)

    def panel(self, title: str) -> SweepResult:
        for panel in self.panels:
            if panel.title == title:
                return panel
        raise KeyError(title)

    def add_panel(self, panel: SweepResult) -> None:
        self.panels.append(panel)

    def report(self, max_rows: Optional[int] = 12) -> str:
        """Human-readable report: tables for each panel plus the findings."""
        sections = [f"== {self.experiment_id}: {self.description} =="]
        if self.parameters:
            sections.append("parameters: " + ", ".join(
                f"{key}={value}" for key, value in sorted(self.parameters.items())))
        for panel in self.panels:
            sections.append(panel.to_table(max_rows=max_rows))
        if self.findings:
            sections.append("findings:")
            for key, value in self.findings.items():
                sections.append(f"  - {key}: {value}")
        return "\n\n".join(sections)
