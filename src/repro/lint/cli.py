"""Argument parsing and entry point shared by ``python -m repro.lint``
and the ``repro-netneutrality lint`` subcommand."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.analyzer import LintError, lint_paths
from repro.lint.reporting import render_json, render_rule_list, render_text

__all__ = ["build_parser", "main", "run"]


def _split_codes(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--select``/``--ignore`` values."""
    if not values:
        return None
    codes = []
    for value in values:
        codes.extend(token.strip().upper()
                     for token in value.split(",") if token.strip())
    return codes


def build_parser(prog: str = "repro-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Solver-invariant static analysis for the "
                    "repro-netneutrality codebase (rules RL001-RL006)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", action="append", metavar="CODES",
                        default=None,
                        help="run only these rule codes (comma list, "
                             "repeatable)")
    parser.add_argument("--ignore", action="append", metavar="CODES",
                        default=None,
                        help="skip these rule codes (comma list, repeatable)")
    parser.add_argument("--format", dest="output_format", default="text",
                        choices=("text", "json"),
                        help="report format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute one parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(render_rule_list())
        return 0
    try:
        findings = lint_paths(args.paths,
                              select=_split_codes(args.select),
                              ignore=_split_codes(args.ignore))
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    return run(parser.parse_args(argv))
