"""The repo-specific lint rules (RL001-RL006) and their registry.

Each rule protects one of the solver invariants the test suite can only
catch indirectly (and expensively) through golden regressions:

* **RL001 cache-key completeness** — call sites of a registered
  :class:`repro.cache.LRUCache` must build keys that thread a
  ``cache_key()`` value (directly, through a same-module helper whose body
  contains one, or through a local name assigned from either), so
  reference/numba entries can never alias.
* **RL002 column immutability** — no attribute or subscript stores into
  :class:`~repro.network.provider.Population` column views (or any object
  obtained from ``.alphas`` / ``.theta_hats`` / ...), and no
  ``setflags(write=True)``: value-based ``fingerprint()`` cache identity is
  only sound while columns stay frozen.
* **RL003 nondeterminism ban** (``runner/`` + ``simulation/``) — no wall
  clocks (``time.time``), no module-level ``random`` state, no legacy
  ``np.random.*`` globals (seeded ``default_rng`` generators are fine), no
  direct iteration over sets, and no ``json.dumps`` without
  ``sort_keys=True``: artifact bytes must be identical across processes
  and worker counts.
* **RL004 njit purity** (``numba_backend.py``) — kernel functions may not
  close over module globals (``math``/``numpy`` excepted), take
  ``**kwargs``, or call Python-object helpers: they must stay compilable
  in numba's nopython mode and bit-identical to the reference path.
* **RL005 float-equality ban** (``core/`` + ``network/``) — no ``==`` /
  ``!=`` against non-zero float literals in solver paths; bracket and
  convergence logic must compare against tolerances.  Comparisons against
  exactly ``0.0`` are exempt: zero is an exact sentinel (``kappa == 0.0``,
  ``price == 0.0``) that short-circuits degenerate cases bit-exactly.
* **RL006 tolerance literals** (``core/`` + ``network/``) — numeric
  tolerance constants (``|x| < 1e-2``) may not appear inline inside
  function bodies; they must come from :class:`SolverConfig`, a named
  module-level constant, or a keyword default in the function signature,
  so every tolerance is discoverable and overridable.

The checks are deliberately heuristic AST passes, tuned to this codebase's
idioms; each rule's fixture corpus (``tests/lint/fixtures/``) pins the
exact behaviour.  False positives are suppressed inline with
``# repro-lint: disable=RL###`` plus a justification (see
``CONTRIBUTING.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePath
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

__all__ = ["Finding", "Rule", "RULES", "rule_codes", "get_rule"]

#: ``(line, column, message)`` triples produced by a rule's check function.
RawFinding = Tuple[int, int, str]

CheckFunction = Callable[[ast.Module, PurePath], Iterator[RawFinding]]


@dataclass(frozen=True)
class Finding:
    """One lint violation, pinned to a source location."""

    path: str
    line: int
    column: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (see the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the JSON round-trip tests)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[call-overload]
            column=int(payload["column"]),  # type: ignore[call-overload]
            code=str(payload["code"]),
            message=str(payload["message"]),
        )

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: CODE message``."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.code} {self.message}")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``path_components`` scopes the rule to files with at least one matching
    path component (empty = every file); ``filenames`` scopes it to exact
    file names (empty = every file name).  Both scopes must match.
    """

    code: str
    name: str
    summary: str
    check: CheckFunction
    path_components: Tuple[str, ...] = ()
    filenames: Tuple[str, ...] = ()

    def applies_to(self, path: PurePath) -> bool:
        parts = set(path.parts)
        if self.path_components and not parts.intersection(self.path_components):
            return False
        if self.filenames and path.name not in self.filenames:
            return False
        return True


RULES: Dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    RULES[rule.code] = rule
    return rule


def rule_codes() -> Tuple[str, ...]:
    """Every registered rule code, sorted."""
    return tuple(sorted(RULES))


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``; raises ``KeyError`` if unknown."""
    return RULES[code]


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #
FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _functions(module: ast.Module) -> Iterator[FunctionNode]:
    for node in ast.walk(module):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _callee_name(call: ast.Call) -> Optional[str]:
    """The unqualified name a call targets (``f(...)`` or ``x.f(...)``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _local_assignments(func: FunctionNode) -> Dict[str, ast.expr]:
    """Last value expression assigned to each simple local name."""
    assigns: Dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
        elif (isinstance(node, ast.AnnAssign)
              and isinstance(node.target, ast.Name)
              and node.value is not None):
            assigns[node.target.id] = node.value
    return assigns


# --------------------------------------------------------------------------- #
# RL001 — cache-key completeness
# --------------------------------------------------------------------------- #
_CACHE_FACTORY = "LRUCache"
_CACHE_METHODS = frozenset({"get_or_compute", "get", "put"})


def _registered_cache_names(module: ast.Module) -> FrozenSet[str]:
    """Module-level names bound to ``LRUCache(...)`` instances."""
    names = set()
    for node in module.body:
        value = getattr(node, "value", None)
        if not (isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(value, ast.Call)
                and _callee_name(value) == _CACHE_FACTORY):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _cache_key_helpers(module: ast.Module) -> FrozenSet[str]:
    """Functions/methods whose body references a ``cache_key`` attribute."""
    helpers = set()
    for func in _functions(module):
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and node.attr == "cache_key":
                helpers.add(func.name)
                break
    return frozenset(helpers)


def _derives_cache_key(expr: ast.expr, helpers: AbstractSet[str],
                       assigns: Mapping[str, ast.expr],
                       seen: FrozenSet[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "cache_key":
            return True
        if isinstance(node, ast.Call) and _callee_name(node) in helpers:
            return True
    for node in ast.walk(expr):
        if (isinstance(node, ast.Name) and node.id in assigns
                and node.id not in seen):
            if _derives_cache_key(assigns[node.id], helpers, assigns,
                                  seen | {node.id}):
                return True
    return False


def _check_rl001(module: ast.Module, path: PurePath) -> Iterator[RawFinding]:
    caches = _registered_cache_names(module)
    if not caches:
        return
    helpers = _cache_key_helpers(module)
    module_assigns: Dict[str, ast.expr] = {}
    for node in module.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_assigns[target.id] = node.value
    scopes: list[tuple[ast.AST, Mapping[str, ast.expr]]] = [
        (func, _local_assignments(func)) for func in _functions(module)
    ]
    seen_calls: set[int] = set()
    scopes.append((module, module_assigns))
    for scope, assigns in scopes:
        for node in ast.walk(scope):
            if id(node) in seen_calls:
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CACHE_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in caches
                    and node.args):
                continue
            seen_calls.add(id(node))
            key_expr = node.args[0]
            if not _derives_cache_key(key_expr, helpers, assigns, frozenset()):
                yield (node.lineno, node.col_offset,
                       f"cache key passed to {node.func.value.id}."
                       f"{node.func.attr}() does not thread a cache_key() "
                       "value; keys of registered caches must include "
                       "SolverConfig.cache_key() (directly or via a helper) "
                       "so backend/tolerance variants never alias")


_register(Rule(
    code="RL001",
    name="cache-key-completeness",
    summary="registered-cache call sites must thread config.cache_key()",
    check=_check_rl001,
))


# --------------------------------------------------------------------------- #
# RL002 — column immutability
# --------------------------------------------------------------------------- #
#: The columnar Population's backing columns plus the frozen equilibrium
#: views derived from them.
_COLUMN_ATTRS = frozenset({
    "alphas", "theta_hats", "betas", "revenue_rates", "utility_rates",
    "thetas", "demands", "common_caps",
})
#: Columns tracked through local-name aliases (the strict Population set).
_ALIAS_COLUMN_ATTRS = frozenset({
    "alphas", "theta_hats", "betas", "revenue_rates", "utility_rates",
})


def _derives_from_column(expr: ast.expr, assigns: Mapping[str, ast.expr],
                         seen: FrozenSet[str]) -> bool:
    if isinstance(expr, ast.Attribute):
        return expr.attr in _ALIAS_COLUMN_ATTRS
    if isinstance(expr, ast.Subscript):
        return _derives_from_column(expr.value, assigns, seen)
    if (isinstance(expr, ast.Name) and expr.id in assigns
            and expr.id not in seen):
        return _derives_from_column(assigns[expr.id], assigns,
                                    seen | {expr.id})
    return False


def _is_write_enable(call: ast.Call) -> bool:
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr == "setflags"):
        return False
    for keyword in call.keywords:
        if (keyword.arg == "write" and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True):
            return True
    if call.args and isinstance(call.args[0], ast.Constant):
        return call.args[0].value is True
    return False


def _check_rl002(module: ast.Module, path: PurePath) -> Iterator[RawFinding]:
    for node in ast.walk(module):
        if isinstance(node, ast.Call) and _is_write_enable(node):
            yield (node.lineno, node.col_offset,
                   "setflags(write=True) re-enables writes on a frozen "
                   "array; Population columns and cached equilibria must "
                   "stay immutable for fingerprint()-based caching")
    for func in _functions(module):
        assigns = _local_assignments(func)
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr in _COLUMN_ATTRS
                        and not (isinstance(target.value, ast.Name)
                                 and target.value.id == "self")):
                    yield (target.lineno, target.col_offset,
                           f"assignment to .{target.attr} rebinds a "
                           "Population/equilibrium column from outside the "
                           "owning object; columns are immutable views")
                elif (isinstance(target, ast.Subscript)
                      and _derives_from_column(target.value, assigns,
                                               frozenset())):
                    yield (target.lineno, target.col_offset,
                           "subscript store into a Population column view "
                           "(or a local alias of one); copy the column "
                           "before mutating")


_register(Rule(
    code="RL002",
    name="column-immutability",
    summary="no stores into Population column views; no setflags(write=True)",
    check=_check_rl002,
))


# --------------------------------------------------------------------------- #
# RL003 — nondeterminism ban in runner/ + simulation/
# --------------------------------------------------------------------------- #
_WALL_CLOCKS = frozenset({"time", "time_ns"})
_NP_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence"})
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _is_setish(expr: ast.expr, assigns: Mapping[str, ast.expr],
               seen: FrozenSet[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")):
        return True
    if (isinstance(expr, ast.Name) and expr.id in assigns
            and expr.id not in seen):
        return _is_setish(assigns[expr.id], assigns, seen | {expr.id})
    return False


def _check_rl003(module: ast.Module, path: PurePath) -> Iterator[RawFinding]:
    for node in ast.walk(module):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCKS:
                        yield (node.lineno, node.col_offset,
                               f"wall clock time.{alias.name} is "
                               "nondeterministic; use time.perf_counter for "
                               "durations and keep wall times out of "
                               "artifacts")
            elif node.module == "random":
                yield (node.lineno, node.col_offset,
                       "module-level random state is nondeterministic "
                       "across processes; use an explicit seeded "
                       "np.random.default_rng(seed) generator")
        elif isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                    and node.attr in _WALL_CLOCKS):
                yield (node.lineno, node.col_offset,
                       f"wall clock time.{node.attr} is nondeterministic; "
                       "use time.perf_counter for durations and keep wall "
                       "times out of artifacts")
            elif (isinstance(node.value, ast.Name)
                  and node.value.id == "random"):
                yield (node.lineno, node.col_offset,
                       f"random.{node.attr} uses the global random state; "
                       "use an explicit seeded np.random.default_rng(seed) "
                       "generator")
            elif (isinstance(node.value, ast.Attribute)
                  and node.value.attr == "random"
                  and isinstance(node.value.value, ast.Name)
                  and node.value.value.id in _NUMPY_NAMES
                  and node.attr not in _NP_RANDOM_ALLOWED):
                yield (node.lineno, node.col_offset,
                       f"legacy np.random.{node.attr} draws from the global "
                       "numpy state; use an explicit seeded "
                       "np.random.default_rng(seed) generator")
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "dumps"
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == "json"):
            sort_keys = [keyword for keyword in node.keywords
                         if keyword.arg == "sort_keys"]
            is_sorted = bool(sort_keys) and all(
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True for keyword in sort_keys)
            if not is_sorted:
                yield (node.lineno, node.col_offset,
                       "json.dumps without sort_keys=True is sensitive to "
                       "dict insertion order; artifact/manifest bytes must "
                       "be canonical")
    for func in _functions(module):
        assigns = _local_assignments(func)
        iters: list[ast.expr] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            if _is_setish(expr, assigns, frozenset()):
                yield (expr.lineno, expr.col_offset,
                       "iterating a set has no deterministic order; wrap it "
                       "in sorted(...) before it can feed artifact or "
                       "manifest emission")


_register(Rule(
    code="RL003",
    name="nondeterminism-ban",
    summary="no wall clocks, global RNG state, set iteration or unsorted "
            "JSON in runner/ + simulation/ + service/",
    check=_check_rl003,
    path_components=("runner", "simulation", "service"),
))


# --------------------------------------------------------------------------- #
# RL004 — njit kernel purity
# --------------------------------------------------------------------------- #
_KERNEL_PREFIX = "_kernel_"
_KERNEL_GLOBAL_WHITELIST = frozenset({
    "math", "np", "numpy",
    "range", "len", "float", "int", "bool", "abs", "min", "max",
    "enumerate", "zip", "divmod", "round",
})


def _kernel_names(module: ast.Module) -> FrozenSet[str]:
    names = set()
    for node in ast.walk(module):
        if isinstance(node, ast.Call) and _callee_name(node) == "njit":
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    names.add(arg.id)
        elif isinstance(node, ast.FunctionDef):
            if node.name.startswith(_KERNEL_PREFIX):
                names.add(node.name)
            for decorator in node.decorator_list:
                target = (decorator.func if isinstance(decorator, ast.Call)
                          else decorator)
                decorator_name = (
                    target.id if isinstance(target, ast.Name)
                    else target.attr if isinstance(target, ast.Attribute)
                    else None)
                if decorator_name == "njit":
                    names.add(node.name)
    return frozenset(names)


def _bound_names(func: ast.FunctionDef) -> FrozenSet[str]:
    bound = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        bound.add(arg.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                     (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return frozenset(bound)


def _check_rl004(module: ast.Module, path: PurePath) -> Iterator[RawFinding]:
    kernels = _kernel_names(module)
    if not kernels:
        return
    for node in module.body:
        if not (isinstance(node, ast.FunctionDef) and node.name in kernels):
            continue
        if node.args.kwarg is not None:
            yield (node.lineno, node.col_offset,
                   f"kernel {node.name} takes **{node.args.kwarg.arg}; "
                   "nopython mode cannot compile **kwargs")
        bound = _bound_names(node)
        reported: set[str] = set()
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)):
                continue
            name = sub.id
            if (name in bound or name in _KERNEL_GLOBAL_WHITELIST
                    or name in reported):
                continue
            reported.add(name)
            yield (sub.lineno, sub.col_offset,
                   f"kernel {node.name} closes over module global "
                   f"{name!r}; kernels must only touch their arguments, "
                   "locals, math and numpy (globals are frozen at compile "
                   "time and break the reference-path equivalence)")


_register(Rule(
    code="RL004",
    name="njit-purity",
    summary="numba kernels: no module-global closures, no **kwargs, no "
            "Python-object helpers",
    check=_check_rl004,
    filenames=("numba_backend.py",),
))


# --------------------------------------------------------------------------- #
# RL005 — float-equality ban in core/ + network/
# --------------------------------------------------------------------------- #
def _nonzero_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and node.value != 0.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        return _nonzero_float_literal(node.operand)
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_nonzero_float_literal(element) for element in node.elts)
    return False


def _check_rl005(module: ast.Module, path: PurePath) -> Iterator[RawFinding]:
    for node in ast.walk(module):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if (_nonzero_float_literal(operands[index])
                    or _nonzero_float_literal(operands[index + 1])):
                yield (node.lineno, node.col_offset,
                       "exact ==/!= against a non-zero float literal in a "
                       "solver path; compare against a tolerance (exact "
                       "0.0 sentinels are exempt)")


_register(Rule(
    code="RL005",
    name="float-equality-ban",
    summary="no ==/!= against non-zero float literals in core/ + network/",
    check=_check_rl005,
    path_components=("core", "network"),
))


# --------------------------------------------------------------------------- #
# RL006 — tolerance literals must be named
# --------------------------------------------------------------------------- #
#: Literals smaller than this (in magnitude) inside a function body are
#: treated as inline tolerance/guard constants.
_TOLERANCE_THRESHOLD = 1e-2


def _default_value_nodes(module: ast.Module) -> FrozenSet[int]:
    """Node ids of every expression inside a function signature default."""
    ids = set()
    for func in _functions(module):
        defaults = list(func.args.defaults)
        defaults.extend(d for d in func.args.kw_defaults if d is not None)
        for default in defaults:
            for node in ast.walk(default):
                ids.add(id(node))
    return frozenset(ids)


def _check_rl006(module: ast.Module, path: PurePath) -> Iterator[RawFinding]:
    exempt = _default_value_nodes(module)
    flagged: set[int] = set()
    for func in _functions(module):
        for statement in func.body:
            for node in ast.walk(statement):
                if id(node) in flagged or id(node) in exempt:
                    continue
                if not (isinstance(node, ast.Constant)
                        and isinstance(node.value, float)):
                    continue
                magnitude = abs(node.value)
                if 0.0 < magnitude < _TOLERANCE_THRESHOLD:
                    flagged.add(id(node))
                    yield (node.lineno, node.col_offset,
                           f"inline tolerance literal {node.value!r}; hoist "
                           "it to a named module-level constant or take it "
                           "from SolverConfig so tolerances are "
                           "discoverable and overridable")


_register(Rule(
    code="RL006",
    name="named-tolerances",
    summary="tolerance literals in core/ + network/ must be named "
            "constants or SolverConfig fields",
    check=_check_rl006,
    path_components=("core", "network"),
))
