"""Lint driver: file discovery, suppression parsing and rule dispatch.

The analyzer parses each file once, runs every applicable rule over the
AST (rules scope themselves by path, see :mod:`repro.lint.rules`), and
filters the findings through line-level suppressions and the caller's
``--select`` / ``--ignore`` sets.

Suppressions are trailing comments of the form::

    risky_line()  # repro-lint: disable=RL001
    other_line()  # repro-lint: disable=RL002,RL005   (comma list)

and silence only the named codes on that physical line.  The policy
(justify every suppression) is documented in ``CONTRIBUTING.md``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path, PurePath
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.lint.rules import RULES, Finding, rule_codes

__all__ = ["LintError", "lint_source", "lint_paths", "resolve_codes",
           "suppressed_codes"]

_SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


class LintError(Exception):
    """A usage error (unknown rule code, unreadable path, syntax error)."""


def resolve_codes(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> FrozenSet[str]:
    """The set of active rule codes implied by ``--select`` / ``--ignore``."""
    known = set(rule_codes())
    for label, values in (("--select", select), ("--ignore", ignore)):
        unknown = set(values or ()) - known
        if unknown:
            raise LintError(
                f"unknown rule code(s) for {label}: {', '.join(sorted(unknown))}; "
                f"known codes: {', '.join(sorted(known))}")
    active = set(select) if select else known
    active -= set(ignore or ())
    return frozenset(active)


def suppressed_codes(source: str) -> Dict[int, Set[str]]:
    """Per-line suppressed rule codes (1-based line numbers)."""
    suppressions: Dict[int, Set[str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if match is None:
            continue
        codes = {token.strip().upper()
                 for token in match.group(1).split(",") if token.strip()}
        if codes:
            suppressions[line_number] = codes
    return suppressions


def lint_source(source: str, path: PurePath,
                codes: Optional[FrozenSet[str]] = None) -> List[Finding]:
    """Lint one file's source text; returns findings sorted by location."""
    active = codes if codes is not None else frozenset(rule_codes())
    try:
        module = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    suppressions = suppressed_codes(source)
    findings = []
    for code in sorted(active):
        rule = RULES[code]
        if not rule.applies_to(path):
            continue
        for line, column, message in rule.check(module, path):
            if code in suppressions.get(line, set()):
                continue
            findings.append(Finding(path=str(path), line=line, column=column,
                                    code=code, message=message))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings


def _python_files(target: Path) -> Iterable[Path]:
    if target.is_dir():
        return sorted(p for p in target.rglob("*.py") if p.is_file())
    return [target]


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint files and directories (recursively); returns sorted findings.

    Raises :class:`LintError` on unknown rule codes, missing paths, or
    files that do not parse.
    """
    codes = resolve_codes(select, ignore)
    findings: List[Finding] = []
    for raw in paths:
        target = Path(raw)
        if not target.exists():
            raise LintError(f"no such file or directory: {raw}")
        for file_path in _python_files(target):
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                raise LintError(f"cannot read {file_path}: {error}") from error
            findings.extend(lint_source(source, file_path, codes))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings
