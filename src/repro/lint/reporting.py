"""Text and JSON reporters for lint findings.

The text form is the familiar ``path:line:col: CODE message`` layout; the
JSON form is a versioned document that round-trips through
:meth:`repro.lint.rules.Finding.from_dict` (the lint tests assert this),
so CI annotations and editor integrations can consume it directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.rules import RULES, Finding

__all__ = ["REPORT_SCHEMA_VERSION", "render_text", "render_json",
           "parse_json_report", "render_rule_list"]

#: Version of the JSON report layout.
REPORT_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a trailing summary count."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The findings as a canonical (sorted-keys) JSON document."""
    payload: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json_report(text: str) -> List[Finding]:
    """Findings reloaded from :func:`render_json` output."""
    payload = json.loads(text)
    if payload.get("schema") != REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report schema {payload.get('schema')!r}")
    return [Finding.from_dict(entry) for entry in payload["findings"]]


def render_rule_list() -> str:
    """A table of every registered rule (``--list-rules``)."""
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        scope_parts = []
        if rule.path_components:
            scope_parts.append("/".join(sorted(rule.path_components)))
        if rule.filenames:
            scope_parts.append(", ".join(rule.filenames))
        scope = " [" + "; ".join(scope_parts) + "]" if scope_parts else ""
        lines.append(f"{code} {rule.name}{scope}: {rule.summary}")
    return "\n".join(lines)
