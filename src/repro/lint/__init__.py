"""Solver-invariant static analysis (``repro-lint``).

An AST-based lint pass with six repo-specific rules (RL001-RL006) that
protect the invariants the golden-regression suite can only catch late:
cache-key completeness, Population column immutability, artifact
determinism, njit kernel purity, tolerance discipline.  Run it as::

    python -m repro.lint src/
    repro-netneutrality lint --select RL001,RL006 --format json src/

See ``CONTRIBUTING.md`` for each rule's invariant and the suppression
policy (``# repro-lint: disable=RL###`` with a justification).
"""

from repro.lint.analyzer import (
    LintError,
    lint_paths,
    lint_source,
    resolve_codes,
    suppressed_codes,
)
from repro.lint.cli import main
from repro.lint.reporting import (
    REPORT_SCHEMA_VERSION,
    parse_json_report,
    render_json,
    render_rule_list,
    render_text,
)
from repro.lint.rules import RULES, Finding, Rule, get_rule, rule_codes

__all__ = [
    "LintError",
    "Finding",
    "Rule",
    "RULES",
    "REPORT_SCHEMA_VERSION",
    "get_rule",
    "rule_codes",
    "lint_paths",
    "lint_source",
    "resolve_codes",
    "suppressed_codes",
    "parse_json_report",
    "render_json",
    "render_rule_list",
    "render_text",
    "main",
]
