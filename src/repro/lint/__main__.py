"""``python -m repro.lint`` — run the solver-invariant lint pass.

Exit codes: 0 (clean), 1 (findings), 2 (usage error: unknown rule code,
missing path, unparseable file).
"""

from __future__ import annotations

import sys

from repro.lint.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
